//! Empirical check of Theorem 1's *completeness*: if two models differ at
//! all, they differ on the template suite.
//!
//! We enumerate a bounded naive universe of litmus tests (2 threads, up to
//! 2 accesses each, 2 locations — thousands of tests) and verify that any
//! pair of digit models distinguished by *some* naive test is also
//! distinguished by the template suite. Theorem 1 proves this for the
//! unbounded universe; the bounded check catches implementation bugs in
//! either the suite or the semantics.

use litmus_mcm::axiomatic::ExplicitChecker;
use litmus_mcm::explore::paper::comparison_tests;
use litmus_mcm::explore::Exploration;
use litmus_mcm::gen::naive::{enumerate_tests, NaiveBounds};
use litmus_mcm::models::DigitModel;

#[test]
fn naive_distinctions_are_covered_by_the_template_suite() {
    let bounds = NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
    };
    let naive_tests = enumerate_tests(&bounds, usize::MAX);
    assert!(
        naive_tests.len() > 500,
        "universe too small to be meaningful: {}",
        naive_tests.len()
    );

    // A representative slice of the digit space (full 90×90 over the naive
    // universe would be slow in CI; these cover every digit position).
    let names = [
        "M1010", "M1110", "M4010", "M1044", "M4044", "M4144", "M4444", "M1032", "M1030",
        "M4441", "M1411", "M4034",
    ];
    let models: Vec<_> = names
        .iter()
        .map(|n| n.parse::<DigitModel>().unwrap().to_model())
        .collect();

    let checker = ExplicitChecker::new();
    let naive_expl = Exploration::run(models.clone(), naive_tests, &checker);
    let template_expl = Exploration::run(models, comparison_tests(true), &checker);

    for i in 0..naive_expl.models.len() {
        for j in (i + 1)..naive_expl.models.len() {
            let naive_distinguishes = !naive_expl.distinguishing_tests(i, j).is_empty();
            let template_distinguishes = !template_expl.distinguishing_tests(i, j).is_empty();
            if naive_distinguishes {
                assert!(
                    template_distinguishes,
                    "{} vs {}: naive universe distinguishes them but the template suite does not \
                     — the suite is incomplete",
                    naive_expl.models[i].name(),
                    naive_expl.models[j].name()
                );
            }
        }
    }
}

#[test]
fn template_distinctions_on_equivalent_pairs_never_happen() {
    // Dual direction on the paper's equivalent pairs: the naive universe
    // must not distinguish models the template suite says are equivalent.
    let bounds = NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
    };
    let naive_tests = enumerate_tests(&bounds, usize::MAX);
    let pairs = [("M1010", "M1110"), ("M4040", "M4140"), ("M4031", "M4131")];
    let checker = ExplicitChecker::new();
    for (a, b) in pairs {
        let models = vec![
            a.parse::<DigitModel>().unwrap().to_model(),
            b.parse::<DigitModel>().unwrap().to_model(),
        ];
        let expl = Exploration::run(models, naive_tests.clone(), &checker);
        assert!(
            expl.distinguishing_tests(0, 1).is_empty(),
            "{a} vs {b} should be equivalent but a bounded naive test separates them"
        );
    }
}

/// Digit-wise monotonicity: making any single choice stricter (digit-wise
/// stronger in the order 0 < 1 < 3 < 4, 0 < 2 < 3, with 1 and 2
/// incomparable) can only shrink the allowed set.
#[test]
fn digitwise_stronger_models_allow_subsets() {
    fn choice_leq(a: u8, b: u8) -> bool {
        // a ≤ b: b's must-not-reorder condition implies a's (b stronger).
        match (a, b) {
            (x, y) if x == y => true,
            (0, _) => true,
            (_, 4) => true,
            (1, 3) | (2, 3) => true,
            _ => false,
        }
    }
    let digits = |m: &DigitModel| [m.ww.digit(), m.wr.digit(), m.rw.digit(), m.rr.digit()];
    let all = DigitModel::all();
    let tests = comparison_tests(true);
    let models: Vec<_> = all.iter().map(DigitModel::to_model).collect();
    let expl = Exploration::run(models, tests, &ExplicitChecker::new());

    let mut checked = 0usize;
    for i in 0..all.len() {
        for j in 0..all.len() {
            if i == j {
                continue;
            }
            let di = digits(&all[i]);
            let dj = digits(&all[j]);
            // i digit-wise weaker-or-equal than j => model j ⊆ model i.
            if di.iter().zip(&dj).all(|(a, b)| choice_leq(*a, *b)) {
                assert!(
                    expl.verdicts[j].subset_of(&expl.verdicts[i]),
                    "{} should allow a subset of {}",
                    all[j].name(),
                    all[i].name()
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 500, "only {checked} comparable pairs checked");
}
