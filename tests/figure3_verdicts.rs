//! Pins the verdicts of Figure 1's Test A and Figure 3's L1–L9 against the
//! named models, as derived by hand from the paper's §4.2 discussion:
//!
//! * L1 probes write-write reordering (allowed iff `ww = 1`);
//! * L2 probes same-address read-read reordering (`rr ∈ {0, 2}`);
//! * L3 probes independent read-read reordering (`rr ≠ 4`);
//! * L4 probes *dependent* read-read reordering (`rr ∈ {0, 1}`);
//! * L5 probes independent read-write reordering (`rw ∈ {1, 3}`);
//! * L6 probes *dependent* read-write reordering (`rw = 1`);
//! * L7 probes write-read reordering to different addresses (`wr ≠ 4`);
//! * L8 probes write-read-same-address given ordered reads
//!   (allowed iff `wr = 0 ∨ rr ∈ {0, 1}`);
//! * L9 probes write-read-same-address given ordered read-writes
//!   (allowed iff `rw = 1 ∨ (wr = 0 ∧ ww = 1)`).
//!
//! Every checker must produce the same table.

use litmus_mcm::axiomatic::{all_checkers, Checker};
use litmus_mcm::core::{LitmusTest, MemoryModel};
use litmus_mcm::models::{catalog, named};

/// (test, [SC, TSO, PSO, IBM370, RMO-nodep, RMO, Alpha] verdicts).
fn expected_table() -> Vec<(LitmusTest, [bool; 7])> {
    vec![
        // name                     SC     TSO    PSO    IBM    M1010  RMO    Alpha
        // Test A probes write-read forwarding to the same address: IBM370
        // orders `W Y; R Y` (its F keeps same-address write-read pairs) so
        // it forbids the outcome; TSO's load forwarding allows it.
        (catalog::test_a(), [false, true, true, false, true, true, true]),
        (catalog::l1(), [false, false, true, false, true, true, true]),
        (catalog::l2(), [false, false, false, false, true, true, true]),
        (catalog::l3(), [false, false, false, false, true, true, true]),
        (catalog::l4(), [false, false, false, false, true, false, true]),
        (catalog::l5(), [false, false, false, false, true, true, true]),
        (catalog::l6(), [false, false, false, false, true, false, false]),
        (catalog::l7(), [false, true, true, true, true, true, true]),
        (catalog::l8(), [false, true, true, false, true, true, true]),
        (catalog::l9(), [false, false, true, false, true, true, true]),
    ]
}

fn models() -> Vec<MemoryModel> {
    vec![
        named::sc(),
        named::tso(),
        named::pso(),
        named::ibm370(),
        named::rmo_without_dependencies(),
        named::rmo(),
        named::alpha(),
    ]
}

#[test]
fn nine_tests_verdicts_match_the_paper() {
    let models = models();
    for checker in all_checkers() {
        for (test, expected) in expected_table() {
            for (model, &want) in models.iter().zip(expected.iter()) {
                let got = checker.is_allowed(model, &test);
                assert_eq!(
                    got,
                    want,
                    "checker `{}`: test {} under {} — expected {}, got {}",
                    checker.name(),
                    test.name(),
                    model.name(),
                    if want { "allowed" } else { "forbidden" },
                    if got { "allowed" } else { "forbidden" },
                );
            }
        }
    }
}

#[test]
fn classics_behave_as_folklore_says() {
    let checker = litmus_mcm::axiomatic::ExplicitChecker::new();
    // SB allowed on TSO, forbidden on SC.
    assert!(checker.is_allowed(&named::tso(), &catalog::sb()));
    assert!(!checker.is_allowed(&named::sc(), &catalog::sb()));
    // MP forbidden on TSO (no write-write or read-read reordering).
    assert!(!checker.is_allowed(&named::tso(), &catalog::mp()));
    // MP allowed on PSO (writes reorder) and RMO (reads reorder too).
    assert!(checker.is_allowed(&named::pso(), &catalog::mp()));
    assert!(checker.is_allowed(&named::rmo(), &catalog::mp()));
    // LB forbidden on TSO, allowed on RMO.
    assert!(!checker.is_allowed(&named::tso(), &catalog::lb()));
    assert!(checker.is_allowed(&named::rmo(), &catalog::lb()));
    // CoRR forbidden on TSO and even IBM370.
    assert!(!checker.is_allowed(&named::tso(), &catalog::corr()));
    assert!(!checker.is_allowed(&named::ibm370(), &catalog::corr()));
    // IRIW with fenced readers is forbidden across the whole digit space —
    // the class is store-atomic (§2.2 excludes PowerPC-style models), so
    // once the reader threads keep their reads ordered no model lets the
    // two readers disagree about the write order. (A pathological `F =
    // False` model ignores even fences, so the weakest *digit* model — RMO
    // without dependencies, which honours fences — is the right probe.)
    assert!(!checker.is_allowed(
        &named::rmo_without_dependencies(),
        &catalog::iriw_fenced()
    ));
}

#[test]
fn digit_counterparts_agree_on_the_nine_tests() {
    // TSO ≡ M4044, PSO ≡ M1044, IBM370 ≡ M4144, SC ≡ M4444 — verdict-for-
    // verdict on the catalog (full equivalence is established by the
    // exploration suite).
    use litmus_mcm::models::DigitModel;
    let pairs: Vec<(MemoryModel, &str)> = vec![
        (named::sc(), "M4444"),
        (named::tso(), "M4044"),
        (named::pso(), "M1044"),
        (named::ibm370(), "M4144"),
        (named::rmo_without_dependencies(), "M1010"),
        (named::rmo(), "M1032"),
        (named::alpha(), "M1030"),
    ];
    let checker = litmus_mcm::axiomatic::ExplicitChecker::new();
    for (model, digits) in pairs {
        let digit_model = digits.parse::<DigitModel>().unwrap().to_model();
        for test in catalog::all_tests() {
            assert_eq!(
                checker.is_allowed(&model, &test),
                checker.is_allowed(&digit_model, &test),
                "{} vs {} disagree on {}",
                model.name(),
                digits,
                test.name()
            );
        }
    }
}
