//! Pins every quantitative claim of the paper's §4.2 against the
//! exploration pipeline (experiment ids E5–E8 in DESIGN.md).

use litmus_mcm::explore::{distinguish, paper};
use litmus_mcm::gen::count;
use litmus_mcm::models::DigitModel;

/// §4.2: "there are two available choices for write-write, three choices
/// for write-read and read-write and all five choices are available for
/// read-read, which result in 90 possible memory models."
#[test]
fn ninety_models_in_the_space() {
    assert_eq!(DigitModel::all().len(), 90);
    assert_eq!(DigitModel::all_without_dependencies().len(), 36);
}

/// §3.4 / Corollary 1: 230 tests with `DataDep`, 124 without.
#[test]
fn corollary1_bounds() {
    assert_eq!(count::paper_bound(true), 230);
    assert_eq!(count::paper_bound(false), 124);
}

/// §4.2: "Out of the 90 different models, eight pairs of models are
/// equivalent. All equivalent pairs of models are models that differ only
/// with the choice of whether to allow reordering of writes with later
/// reads to the same address."
#[test]
fn eight_equivalent_pairs_differing_only_in_wr_same_addr() {
    let report = paper::explore_digit_space(true);
    assert_eq!(report.equivalent_pairs.len(), 8, "expected 8 equivalent pairs");

    for (a, b) in &report.equivalent_pairs {
        let da: DigitModel = a.split_whitespace().next().unwrap().parse().unwrap();
        let db: DigitModel = b.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(da.ww, db.ww, "{a} vs {b}: ww must match");
        assert_eq!(da.rw, db.rw, "{a} vs {b}: rw must match");
        assert_eq!(da.rr, db.rr, "{a} vs {b}: rr must match");
        assert_ne!(da.wr, db.wr, "{a} vs {b}: wr must differ");
        // The differing choice is specifically 0 (always) vs 1 (different
        // addresses) — i.e. whether a write may reorder with a later read
        // of the same address.
        let mut wr = [da.wr.digit(), db.wr.digit()];
        wr.sort_unstable();
        assert_eq!(wr, [0, 1], "{a} vs {b}");
    }

    // §4.2's analysis, made precise: the pairs are exactly those where
    // neither the L8 shape (needs rr ∈ {2,3,4}) nor the L9 shape (needs
    // rw ∈ {3,4} and ww = 1, or any rw with ww = 4 blocked) can witness
    // the write-read-same-address reordering: rr ∈ {0,1} and
    // (rw = 1 or ww = 4).
    let expected = [
        ("M1010", "M1110"),
        ("M1011", "M1111"),
        ("M4010", "M4110"),
        ("M4011", "M4111"),
        ("M4030", "M4130"),
        ("M4031", "M4131"),
        ("M4040", "M4140"),
        ("M4041", "M4141"),
    ];
    for (a, b) in expected {
        assert!(
            report.equivalent_pairs.iter().any(|(x, y)| {
                let x = x.split_whitespace().next().unwrap();
                let y = y.split_whitespace().next().unwrap();
                (x == a && y == b) || (x == b && y == a)
            }),
            "missing expected pair ({a}, {b})"
        );
    }
}

/// §4.2: "a set of nine different litmus tests is sufficient to contrast
/// any two non-equivalent memory models in this space" — and, beyond the
/// paper, nine is *minimum* (SAT certificate).
#[test]
fn nine_tests_suffice_and_are_minimum() {
    let report = paper::explore_digit_space(true);
    assert!(
        report.nine_tests_sufficient,
        "L1–L9 must distinguish all non-equivalent models"
    );
    assert_eq!(report.nine_test_indices.len(), 9);
    assert_eq!(
        report.minimal_set.tests.len(),
        9,
        "minimum distinguishing set size"
    );
    assert!(report.minimal_set.proved_minimum);
    // Cross-check the certificate boundary directly.
    assert!(!distinguish::cover_of_size_exists(&report.exploration, 8));
    assert!(distinguish::cover_of_size_exists(&report.exploration, 9));
}

/// The exploration is deterministic and the parallel path agrees with the
/// sequential one (spot-checked on the dependency-free space).
#[test]
fn parallel_and_sequential_agree_on_the_nodep_space() {
    use litmus_mcm::axiomatic::ExplicitChecker;
    use litmus_mcm::explore::Exploration;
    let models = paper::digit_space_models(false);
    let tests = paper::comparison_tests(false);
    let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
    let par = Exploration::run_parallel(models, tests);
    assert_eq!(seq.verdicts, par.verdicts);
}
