//! Pins the structure of Figure 4: the dependency-free model space, its
//! merged nodes, the position of the named models, and the edge labels.

use litmus_mcm::explore::paper;
use litmus_mcm::explore::dot::{render_dot, DotOptions};

#[test]
fn thirty_six_models_collapse_to_thirty_nodes() {
    let report = paper::explore_digit_space(false);
    assert_eq!(report.exploration.models.len(), 36);
    assert_eq!(report.lattice.classes.len(), 30, "Figure 4 node count");
    assert_eq!(report.equivalent_pairs.len(), 6);
    // The six merged nodes of Figure 4 (adjacent labels in the figure).
    let expected = [
        ("M1010", "M1110"),
        ("M1011", "M1111"),
        ("M4010", "M4110"),
        ("M4011", "M4111"),
        ("M4040", "M4140"),
        ("M4041", "M4141"),
    ];
    for (a, b) in expected {
        assert!(
            report.equivalent_pairs.iter().any(|(x, y)| {
                let x = x.split_whitespace().next().unwrap();
                let y = y.split_whitespace().next().unwrap();
                (x == a && y == b) || (x == b && y == a)
            }),
            "Figure 4 merges {a} and {b}"
        );
    }
}

#[test]
fn named_models_sit_where_figure4_puts_them() {
    let report = paper::explore_digit_space(false);
    let lattice = &report.lattice;
    let expl = &report.exploration;
    let class_of = |name: &str| {
        lattice
            .classes
            .iter()
            .position(|c| {
                c.members
                    .iter()
                    .any(|&m| expl.models[m].name().starts_with(name))
            })
            .unwrap_or_else(|| panic!("{name} not found"))
    };

    // SC (M4444) is the unique strongest model.
    let maximal = lattice.maximal_classes();
    assert_eq!(maximal, vec![class_of("M4444")], "SC tops the lattice");

    // RMO-without-deps (M1010, merged with M1110) is the unique weakest.
    let minimal = lattice.minimal_classes();
    assert_eq!(minimal, vec![class_of("M1010")], "RMO bottoms the lattice");

    // TSO/x86 = M4044 is strictly weaker than SC and strictly stronger
    // than PSO = M1044; IBM370 = M4144 is strictly stronger than TSO.
    use litmus_mcm::explore::Relation;
    let idx = |name: &str| {
        expl.models
            .iter()
            .position(|m| m.name().starts_with(name))
            .unwrap()
    };
    assert_eq!(
        expl.relation(idx("M4044"), idx("M4444")),
        Relation::StrictlyWeaker,
        "TSO ⊋ SC"
    );
    assert_eq!(
        expl.relation(idx("M1044"), idx("M4044")),
        Relation::StrictlyWeaker,
        "PSO ⊋ TSO"
    );
    assert_eq!(
        expl.relation(idx("M4044"), idx("M4144")),
        Relation::StrictlyWeaker,
        "TSO ⊋ IBM370"
    );
}

#[test]
fn every_covering_edge_is_labelled_by_one_of_the_nine_tests() {
    let report = paper::explore_digit_space(false);
    for edge in &report.lattice.edges {
        let has_l_label = edge
            .distinguishing
            .iter()
            .any(|t| report.nine_test_indices.contains(t));
        assert!(
            has_l_label,
            "edge {} -> {} lacks an L1–L9 label (tests {:?})",
            edge.weaker, edge.stronger, edge.distinguishing
        );
    }
}

#[test]
fn figure4_edges_never_use_dependency_tests() {
    // Figure 4 omits L4 and L6 (their dependency idioms are inert without
    // the DataDep predicate): no covering edge in the dependency-free
    // space should *need* them, i.e. each edge has a non-dep label.
    let report = paper::explore_digit_space(false);
    let dep_tests: Vec<usize> = ["L4", "L6"]
        .iter()
        .filter_map(|n| report.exploration.tests.iter().position(|t| t.name() == *n))
        .collect();
    for edge in &report.lattice.edges {
        let only_dep_labels = edge
            .distinguishing
            .iter()
            .filter(|t| report.nine_test_indices.contains(t))
            .all(|t| dep_tests.contains(t));
        assert!(
            !only_dep_labels,
            "edge {} -> {} could only be labelled with a dependency test",
            edge.weaker, edge.stronger
        );
    }
}

#[test]
fn dot_rendering_contains_the_named_nodes() {
    let report = paper::explore_digit_space(false);
    let dot = render_dot(
        &report.exploration,
        &report.lattice,
        &DotOptions {
            name: "figure4".to_string(),
            preferred_tests: report.nine_test_indices.clone(),
            ..DotOptions::default()
        },
    );
    for needle in ["M4444 (SC)", "M4044 (TSO/x86)", "M1044 (PSO)", "M4144 (IBM370)"] {
        assert!(dot.contains(needle), "DOT output missing {needle}");
    }
    // Edge labels draw from the nine tests.
    assert!(dot.contains("label=\"L"));
}
