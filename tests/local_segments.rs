//! E11 (§3.3): the number of non-memory instructions in a contrasting
//! litmus test depends on the predicate set. The special-fence family
//! `F1 = SameAddr ∨ special(x,y)` vs `F2 = SameAddr` requires a local
//! segment of `n + 2` instructions (`Read X, f1, …, fn, Write Y`): the
//! full chain distinguishes the models, and *every* incomplete chain fails
//! to.

use litmus_mcm::axiomatic::{all_checkers, Checker};
use litmus_mcm::gen::local;

#[test]
fn full_chain_contrasts_the_models() {
    for n in 1..=4u8 {
        let (f1, f2) = local::special_chain_models(n);
        let test = local::special_chain_contrast_test(n);
        for checker in all_checkers() {
            assert!(
                checker.is_allowed(&f2, &test),
                "n={n}: F2 (SameAddr only) must allow the outcome ({})",
                checker.name()
            );
            assert!(
                !checker.is_allowed(&f1, &test),
                "n={n}: F1 (with the fence chain) must forbid it ({})",
                checker.name()
            );
        }
    }
}

#[test]
fn any_incomplete_chain_fails_to_contrast() {
    let checker = litmus_mcm::axiomatic::ExplicitChecker::new();
    for n in 2..=4u8 {
        let (f1, f2) = local::special_chain_models(n);
        // Drop each flavour in turn: the broken chain no longer creates
        // the transitive order, so both models allow the outcome.
        for omit in 1..=n {
            let flavours: Vec<u8> = (1..=n).filter(|&f| f != omit).collect();
            let test = local::special_chain_test(n, &flavours);
            assert!(
                checker.is_allowed(&f1, &test),
                "n={n}, omitting f{omit}: F1 should allow"
            );
            assert!(
                checker.is_allowed(&f2, &test),
                "n={n}, omitting f{omit}: F2 should allow"
            );
        }
        // The empty chain certainly fails to contrast.
        let bare = local::special_chain_test(n, &[]);
        assert_eq!(
            checker.is_allowed(&f1, &bare),
            checker.is_allowed(&f2, &bare)
        );
    }
}

#[test]
fn segment_length_matches_the_equivalence_class_bound() {
    for n in 1..=4u8 {
        let (f1, _) = local::special_chain_models(n);
        let bound = local::local_segment_bound(f1.formula());
        let test = local::special_chain_contrast_test(n);
        let longest_thread = test
            .program()
            .threads
            .iter()
            .map(|t| t.instructions.len())
            .max()
            .unwrap();
        assert!(
            longest_thread <= bound,
            "n={n}: witness segment length {longest_thread} exceeds bound {bound}"
        );
        assert_eq!(longest_thread, usize::from(n) + 2);
    }
}

#[test]
fn reordering_the_chain_fails_to_contrast() {
    // The predicate chains f1→f2→…→fn in order; a permuted chain breaks
    // the links, so the models agree again.
    let checker = litmus_mcm::axiomatic::ExplicitChecker::new();
    let n = 3u8;
    let (f1, f2) = local::special_chain_models(n);
    let test = local::special_chain_test(n, &[2, 1, 3]);
    assert_eq!(checker.is_allowed(&f1, &test), checker.is_allowed(&f2, &test));
}
