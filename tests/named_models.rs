//! E10: the named hardware models of §2.4 coincide with their digit-model
//! counterparts — established with the comparison tool itself over the
//! full template suite (which, by Theorem 1, decides equivalence for this
//! class exactly).

use litmus_mcm::axiomatic::ExplicitChecker;
use litmus_mcm::explore::{Exploration, Relation};
use litmus_mcm::explore::paper::comparison_tests;
use litmus_mcm::models::{named, DigitModel};

fn relation(a: litmus_mcm::core::MemoryModel, b: litmus_mcm::core::MemoryModel) -> Relation {
    let expl = Exploration::run(
        vec![a, b],
        comparison_tests(true),
        &ExplicitChecker::new(),
    );
    expl.relation(0, 1)
}

fn digit(name: &str) -> litmus_mcm::core::MemoryModel {
    name.parse::<DigitModel>().unwrap().to_model()
}

#[test]
fn sc_is_m4444() {
    assert_eq!(relation(named::sc(), digit("M4444")), Relation::Equivalent);
}

#[test]
fn tso_is_m4044() {
    assert_eq!(relation(named::tso(), digit("M4044")), Relation::Equivalent);
}

#[test]
fn x86_is_m4044() {
    assert_eq!(relation(named::x86(), digit("M4044")), Relation::Equivalent);
}

#[test]
fn pso_is_m1044() {
    assert_eq!(relation(named::pso(), digit("M1044")), Relation::Equivalent);
}

#[test]
fn ibm370_is_m4144() {
    assert_eq!(relation(named::ibm370(), digit("M4144")), Relation::Equivalent);
}

#[test]
fn rmo_without_ctrl_deps_is_m1032() {
    assert_eq!(relation(named::rmo(), digit("M1032")), Relation::Equivalent);
}

#[test]
fn rmo_nodep_is_m1010() {
    assert_eq!(
        relation(named::rmo_without_dependencies(), digit("M1010")),
        Relation::Equivalent
    );
}

#[test]
fn alpha_style_is_m1030() {
    assert_eq!(relation(named::alpha(), digit("M1030")), Relation::Equivalent);
}

#[test]
fn the_textbook_strength_chain_holds() {
    // SC ⊊ IBM370 ⊊ TSO ⊊ PSO ⊊ RMO-nodep, as Figure 4 depicts.
    assert_eq!(
        relation(named::sc(), named::ibm370()),
        Relation::StrictlyStronger
    );
    assert_eq!(
        relation(named::ibm370(), named::tso()),
        Relation::StrictlyStronger
    );
    assert_eq!(
        relation(named::tso(), named::pso()),
        Relation::StrictlyStronger
    );
    assert_eq!(
        relation(named::pso(), named::rmo_without_dependencies()),
        Relation::StrictlyStronger
    );
    // RMO (with deps) is strictly stronger than its dep-free projection.
    assert_eq!(
        relation(named::rmo(), named::rmo_without_dependencies()),
        Relation::StrictlyStronger
    );
    // Alpha ignores read-read dependencies that RMO honours.
    assert_eq!(relation(named::rmo(), named::alpha()), Relation::StrictlyStronger);
}

#[test]
fn control_dependencies_separate_rmo_from_m1032() {
    // Over the paper's predicate set (no ControlDep connectors in the
    // suite) RMO and M1032 are indistinguishable — which is exactly why
    // the paper's tool calls its RMO a "variant". Enabling the
    // control-dependency connectors (our extension) separates them: RMO
    // orders control-dependent read→write pairs, M1032 does not.
    use litmus_mcm::gen::template_suite_extended;
    let extended = template_suite_extended(true, true);
    assert!(extended.len() > template_suite_extended(true, false).len());
    assert_eq!(extended.corollary1_bound, 368); // Corollary 1 with N_RW=N_RR=8

    let expl = Exploration::run(
        vec![named::rmo(), digit("M1032")],
        extended.tests,
        &ExplicitChecker::new(),
    );
    assert_eq!(
        expl.relation(0, 1),
        Relation::StrictlyStronger,
        "full RMO must forbid some ctrl-dep outcome M1032 allows"
    );
    let witnesses = expl.distinguishing_tests(0, 1);
    assert!(!witnesses.is_empty());
    // Every witness involves a control dependency.
    for t in witnesses {
        let exec = expl.tests[t].execution();
        let n = exec.events().len();
        let has_ctrl = (0..n).any(|i| {
            (0..n).any(|j| {
                exec.ctrl_dep(
                    litmus_mcm::core::EventId(i as u32),
                    litmus_mcm::core::EventId(j as u32),
                )
            })
        });
        assert!(has_ctrl, "witness {} has no control dependency", expl.tests[t].name());
    }
}
