//! §2.3 requires every predicate to "preserve some symmetry, such that a
//! read can be permuted with any other read (and a write by any other
//! write)". For our predicate set that means verdicts are invariant under
//! renaming locations and permuting threads. These properties exercise the
//! whole pipeline: program construction, dataflow, formula evaluation and
//! the checkers.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::core::{
    AddrExpr, Instruction, LitmusTest, Loc, MemoryModel, Outcome, Program, RegExpr, Thread,
    ThreadId,
};
use litmus_mcm::models::{catalog, named, DigitModel};
use proptest::prelude::*;

fn rename_loc_in_expr(expr: &RegExpr, map: &dyn Fn(Loc) -> Loc) -> RegExpr {
    match expr {
        RegExpr::Const(v) => RegExpr::Const(*v),
        RegExpr::Reg(r) => RegExpr::Reg(*r),
        RegExpr::LocAddr(l) => RegExpr::LocAddr(map(*l)),
        RegExpr::Add(a, b) => RegExpr::Add(
            Box::new(rename_loc_in_expr(a, map)),
            Box::new(rename_loc_in_expr(b, map)),
        ),
        RegExpr::Sub(a, b) => RegExpr::Sub(
            Box::new(rename_loc_in_expr(a, map)),
            Box::new(rename_loc_in_expr(b, map)),
        ),
    }
}

fn rename_locations(test: &LitmusTest, map: &dyn Fn(Loc) -> Loc) -> LitmusTest {
    let threads = test
        .program()
        .threads
        .iter()
        .map(|t| Thread {
            instructions: t
                .instructions
                .iter()
                .map(|i| match i {
                    Instruction::Read { addr, dst } => Instruction::Read {
                        addr: match addr {
                            AddrExpr::Loc(l) => AddrExpr::Loc(map(*l)),
                            AddrExpr::Reg(r) => AddrExpr::Reg(*r),
                        },
                        dst: *dst,
                    },
                    Instruction::Write { addr, val } => Instruction::Write {
                        addr: match addr {
                            AddrExpr::Loc(l) => AddrExpr::Loc(map(*l)),
                            AddrExpr::Reg(r) => AddrExpr::Reg(*r),
                        },
                        val: rename_loc_in_expr(val, map),
                    },
                    Instruction::Op { dst, expr } => Instruction::Op {
                        dst: *dst,
                        expr: rename_loc_in_expr(expr, map),
                    },
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    let mut outcome = Outcome::new();
    for &(t, r, v) in test.outcome().constraints() {
        outcome = outcome.constrain(t, r, v);
    }
    LitmusTest::new(test.name(), Program { threads }, outcome)
        .expect("renaming preserves well-formedness")
}

fn swap_threads(test: &LitmusTest) -> LitmusTest {
    let mut threads = test.program().threads.clone();
    threads.reverse();
    let n = test.program().threads.len() as u8;
    let mut outcome = Outcome::new();
    for &(t, r, v) in test.outcome().constraints() {
        outcome = outcome.constrain(ThreadId(n - 1 - t.0), r, v);
    }
    LitmusTest::new(test.name(), Program { threads }, outcome)
        .expect("thread permutation preserves well-formedness")
}

fn all_models() -> Vec<MemoryModel> {
    let mut models = vec![
        named::sc(),
        named::tso(),
        named::pso(),
        named::ibm370(),
        named::rmo(),
        named::alpha(),
    ];
    models.extend(
        ["M1011", "M4031", "M1432"]
            .iter()
            .map(|n| n.parse::<DigitModel>().unwrap().to_model()),
    );
    models
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn verdicts_are_invariant_under_location_renaming(
        test_idx in 0usize..15,
        offset in 1u8..4,
    ) {
        let tests = catalog::all_tests();
        let test = &tests[test_idx % tests.len()];
        // A permutation of locations: rotate within the first 8 names.
        let map = move |l: Loc| Loc((l.0 + offset) % 8);
        let renamed = rename_locations(test, &map);
        let checker = ExplicitChecker::new();
        for model in all_models() {
            prop_assert_eq!(
                checker.is_allowed(&model, test),
                checker.is_allowed(&model, &renamed),
                "renaming changed the verdict of {} under {}",
                test.name(),
                model.name()
            );
        }
    }

    #[test]
    fn verdicts_are_invariant_under_thread_permutation(test_idx in 0usize..15) {
        let tests = catalog::all_tests();
        let test = &tests[test_idx % tests.len()];
        let swapped = swap_threads(test);
        let checker = ExplicitChecker::new();
        for model in all_models() {
            prop_assert_eq!(
                checker.is_allowed(&model, test),
                checker.is_allowed(&model, &swapped),
                "thread swap changed the verdict of {} under {}",
                test.name(),
                model.name()
            );
        }
    }
}
