//! Cross-validation of the axiomatic semantics against *operational*
//! reference machines — evidence fully independent of the happens-before
//! construction:
//!
//! * SC (the paper's `F = True`) must coincide with Lamport's
//!   interleaving machine;
//! * TSO (`F_TSO`, digit model M4044) must coincide with the store-buffer
//!   machine — the classic x86-TSO operational/axiomatic equivalence.
//!
//! Checked over the paper catalog, the full dependency-aware template
//! suite, and the naive bounded universe.

use litmus_mcm::axiomatic::{Checker, ExplicitChecker};
use litmus_mcm::core::LitmusTest;
use litmus_mcm::gen::naive::{enumerate_tests, NaiveBounds};
use litmus_mcm::models::{catalog, named};
use litmus_mcm::operational::{sc_allows, tso_allows};

fn check_corpus(tests: &[LitmusTest], corpus_name: &str) {
    let checker = ExplicitChecker::new();
    let sc_model = named::sc();
    let tso_model = named::tso();
    for test in tests {
        let axiomatic_sc = checker.is_allowed(&sc_model, test);
        let operational_sc = sc_allows(test);
        assert_eq!(
            axiomatic_sc,
            operational_sc,
            "{corpus_name}/{}: axiomatic SC says {axiomatic_sc}, interleaving machine says \
             {operational_sc}\n{test}",
            test.name()
        );
        let axiomatic_tso = checker.is_allowed(&tso_model, test);
        let operational_tso = tso_allows(test);
        assert_eq!(
            axiomatic_tso,
            operational_tso,
            "{corpus_name}/{}: axiomatic TSO says {axiomatic_tso}, store-buffer machine says \
             {operational_tso}\n{test}",
            test.name()
        );
    }
}

#[test]
fn catalog_agrees() {
    check_corpus(&catalog::all_tests(), "catalog");
}

#[test]
fn template_suite_agrees() {
    let suite = litmus_mcm::explore::paper::comparison_tests(true);
    check_corpus(&suite, "template-suite");
}

#[test]
fn naive_universe_agrees() {
    let bounds = NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
    };
    let tests = enumerate_tests(&bounds, usize::MAX);
    assert!(tests.len() > 500);
    check_corpus(&tests, "naive");
}

#[test]
fn ibm370_and_pso_machines_agree_with_their_axiomatic_models() {
    use litmus_mcm::operational::{ibm370_allows, pso_allows};
    let checker = ExplicitChecker::new();
    let ibm = named::ibm370();
    let pso = named::pso();
    let mut corpus = catalog::all_tests();
    corpus.extend(litmus_mcm::explore::paper::comparison_tests(true));
    for test in &corpus {
        assert_eq!(
            checker.is_allowed(&ibm, test),
            ibm370_allows(test),
            "IBM370 mismatch on {}\n{test}",
            test.name()
        );
        assert_eq!(
            checker.is_allowed(&pso, test),
            pso_allows(test),
            "PSO mismatch on {}\n{test}",
            test.name()
        );
    }
}

#[test]
fn ibm370_and_pso_machines_agree_on_the_naive_universe() {
    use litmus_mcm::operational::{ibm370_allows, pso_allows};
    let checker = ExplicitChecker::new();
    let ibm = named::ibm370();
    let pso = named::pso();
    let bounds = NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
    };
    for test in enumerate_tests(&bounds, usize::MAX) {
        assert_eq!(
            checker.is_allowed(&ibm, &test),
            ibm370_allows(&test),
            "IBM370 mismatch on {}\n{test}",
            test.name()
        );
        assert_eq!(
            checker.is_allowed(&pso, &test),
            pso_allows(&test),
            "PSO mismatch on {}\n{test}",
            test.name()
        );
    }
}
