//! Hierarchical spans and a Chrome `trace_event` sink.
//!
//! [`span`] returns a guard that emits a begin event now and the
//! matching end event on drop, so begin/end pairs are balanced by
//! construction. Events carry microsecond timestamps from one
//! process-wide monotonic epoch and land in per-thread buffers (one
//! `RefCell`, no locks on the hot path); buffers drain into the
//! process sink when they grow large and when their thread exits —
//! which is before `std::thread::scope` returns, so the sweep's
//! scoped workers flush before the run completes.
//!
//! [`install`] arms the sink with an output path; [`finish`] writes
//! the buffered events as a Chrome JSON-object-format trace:
//!
//! ```json
//! {"schema_version": 1, "kind": "trace", "traceEvents": [ … ]}
//! ```
//!
//! with one event object per line. `chrome://tracing` and Perfetto
//! load the file directly (they read the `traceEvents` key and ignore
//! the envelope), and `mcm_core::json` parses it whole, which is what
//! the CI `obs-smoke` job validates.

use std::cell::RefCell;
use std::io;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use mcm_core::json::Json;

/// How many buffered events force a mid-run flush to the sink.
const FLUSH_THRESHOLD: usize = 4096;

/// One Chrome `trace_event`: a begin (`B`) or end (`E`) marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name, e.g. `engine.chunk`.
    pub name: String,
    /// `'B'` (begin) or `'E'` (end).
    pub phase: char,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Small dense thread id (assigned in thread-creation order).
    pub tid: u64,
    /// Extra key/value arguments shown by the trace viewer.
    pub args: Vec<(String, String)>,
}

impl Event {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::from(self.name.as_str())),
            ("cat", Json::from("mcm")),
            ("ph", Json::from(self.phase.to_string())),
            ("ts", Json::Int(self.ts_us as i64)),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(self.tid as i64)),
        ];
        if !self.args.is_empty() {
            fields.push((
                "args",
                Json::object(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
                ),
            ));
        }
        Json::object(fields)
    }
}

#[derive(Default)]
struct SinkState {
    path: Option<PathBuf>,
    events: Vec<Event>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static Mutex<SinkState> {
    SINK.get_or_init(Mutex::default)
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

struct ThreadBuf {
    tid: u64,
    stack: Vec<String>,
    events: Vec<Event>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut state = sink().lock().unwrap();
        if state.path.is_some() {
            state.events.append(&mut self.events);
        } else {
            // Sink already finished (or never installed): drop them.
            self.events.clear();
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Drain the calling thread's buffered events into the sink.
///
/// Called automatically when a thread's outermost span closes and
/// when the thread exits — but `std::thread::scope` returns as soon
/// as closures finish, *before* thread-local destructors run, so a
/// scoped worker that ends with an open buffer should call this (or
/// close its outermost span) before returning.
pub fn flush_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Is a trace sink currently armed? One relaxed atomic load.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Arm the trace sink: subsequent spans buffer events destined for
/// `path`. Any events buffered for a previous, unfinished sink are
/// discarded. Call [`finish`] to write the file.
pub fn install(path: impl Into<PathBuf>) {
    let mut state = sink().lock().unwrap();
    state.path = Some(path.into());
    state.events.clear();
    // Pin the epoch so the first span doesn't race the first timestamp.
    now_us();
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm the sink, flush the calling thread's buffer, and write every
/// collected event to the installed path. Returns the path written, or
/// `Ok(None)` if no sink was armed. Threads still running keep their
/// unflushed events; call `finish` after joining workers.
pub fn finish() -> io::Result<Option<PathBuf>> {
    if !ACTIVE.swap(false, Ordering::SeqCst) {
        return Ok(None);
    }
    LOCAL.with(|l| l.borrow_mut().flush());
    let (path, mut events) = {
        let mut state = sink().lock().unwrap();
        match state.path.take() {
            Some(p) => (p, std::mem::take(&mut state.events)),
            None => return Ok(None),
        }
    };
    events.sort_by_key(|e| e.ts_us);
    let mut out = String::from("{\n\"schema_version\": 1,\n\"kind\": \"trace\",\n\"traceEvents\": [\n");
    let lines: Vec<String> = events.iter().map(|e| e.to_json().compact()).collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n}\n");
    std::fs::write(&path, out)?;
    Ok(Some(path))
}

/// An open span: emits the balanced end event when dropped. Not
/// `Send` — a span must begin and end on the same thread, because
/// Chrome nests B/E pairs per `tid`.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    live: bool,
    _not_send: PhantomData<*const ()>,
}

/// Open a span named `name`. Inert (two atomic loads, nothing else)
/// unless a sink is armed and instrumentation is enabled.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, &[])
}

/// Open a span with extra `args` shown by the trace viewer.
pub fn span_with(name: &str, args: &[(&str, &str)]) -> SpanGuard {
    if !is_active() || !crate::enabled() {
        return SpanGuard {
            live: false,
            _not_send: PhantomData,
        };
    }
    let ts_us = now_us();
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let tid = buf.tid;
        let mut event_args: Vec<(String, String)> = args
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(parent) = buf.stack.last() {
            event_args.push(("parent".to_string(), parent.clone()));
        }
        buf.stack.push(name.to_string());
        buf.events.push(Event {
            name: name.to_string(),
            phase: 'B',
            ts_us,
            tid,
            args: event_args,
        });
    });
    SpanGuard {
        live: true,
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let ts_us = now_us();
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            let tid = buf.tid;
            let name = buf.stack.pop().unwrap_or_default();
            buf.events.push(Event {
                name,
                phase: 'E',
                ts_us,
                tid,
                args: Vec::new(),
            });
            // Flush whenever the outermost span closes: scoped worker
            // threads are joined before their TLS destructors run, so
            // waiting for thread exit would lose their events.
            if buf.stack.is_empty() || buf.events.len() >= FLUSH_THRESHOLD {
                buf.flush();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so exercise the whole lifecycle
    // in one test to avoid cross-test interference.
    #[test]
    fn spans_write_a_parseable_balanced_trace() {
        let _guard = crate::ENABLE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mcm-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.json", std::process::id()));

        assert!(!is_active());
        {
            let _inert = span("ignored.before.install");
        }
        install(&path);
        assert!(is_active());
        {
            let _outer = span("outer");
            {
                let _inner = span_with("inner", &[("k", "v")]);
            }
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span("worker");
                });
            });
        }
        let written = finish().unwrap().expect("sink was armed");
        assert_eq!(written, path);
        assert!(!is_active());
        {
            let _inert = span("ignored.after.finish");
        }
        assert!(finish().unwrap().is_none());

        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("trace"));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 3 spans -> 6 events, balanced per name.
        assert_eq!(events.len(), 6);
        for name in ["outer", "inner", "worker"] {
            let begins = events
                .iter()
                .filter(|e| {
                    e.get("name").and_then(Json::as_str) == Some(name)
                        && e.get("ph").and_then(Json::as_str) == Some("B")
                })
                .count();
            let ends = events
                .iter()
                .filter(|e| {
                    e.get("name").and_then(Json::as_str) == Some(name)
                        && e.get("ph").and_then(Json::as_str) == Some("E")
                })
                .count();
            assert_eq!((begins, ends), (1, 1), "unbalanced span {name}");
        }
        // The inner span records its parent.
        let inner_b = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
            .unwrap();
        assert_eq!(
            inner_b
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_str),
            Some("outer")
        );
        std::fs::remove_file(&path).ok();
    }
}
