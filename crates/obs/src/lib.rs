//! Zero-dependency observability for the `mcm` workspace.
//!
//! Three layers, all built on `std` alone:
//!
//! 1. **Metrics** ([`metrics`]) — a global registry of named series:
//!    atomic [`metrics::Counter`]s, [`metrics::Gauge`]s, and fixed-bucket
//!    log-scale [`metrics::Histogram`]s. The hot path (increment,
//!    record) is lock-free; the registry mutex is taken only when a
//!    handle is first resolved, so instrumented code caches its
//!    `Arc` handles at construction time. Snapshots are mergeable and
//!    subtractable, which is how per-run `timings` sections are
//!    computed, and the whole registry renders to Prometheus
//!    exposition text for `GET /metricsz`.
//!
//! 2. **Spans** ([`trace`]) — hierarchical regions with monotonic
//!    microsecond timestamps kept on a thread-local span stack.
//!    Guards emit balanced begin/end events into per-thread buffers
//!    that drain into a process-wide sink.
//!
//! 3. **Sink** — [`trace::install`] opens a trace file and
//!    [`trace::finish`] writes every buffered event as Chrome
//!    `trace_event` JSON (one event per line inside a schema-versioned
//!    envelope), directly loadable by `chrome://tracing` and Perfetto
//!    and parseable by `mcm_core::json`.
//!
//! Instrumentation sites gate on [`enabled`] (a single relaxed atomic
//! load) so the whole subsystem can be switched off; the
//! `obs_overhead` bench holds the on-vs-off cost under 3%.

pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is instrumentation currently enabled? A single relaxed load; every
/// instrumentation site checks this before touching a clock or a
/// metric so that [`set_enabled`]`(false)` reduces observability cost
/// to (almost) nothing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable instrumentation. On by default.
///
/// Disabling stops new metric samples and span events; already
/// recorded state stays in the registry and sink.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A started wall-clock measurement, or nothing when instrumentation
/// is disabled. The `Option<Instant>` is the entire state, so a
/// disabled stopwatch costs one branch and no syscall.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<std::time::Instant>);

impl Stopwatch {
    /// Start timing now, or record nothing if instrumentation is off.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(enabled().then(std::time::Instant::now))
    }

    /// Elapsed microseconds since [`Stopwatch::start`], if running.
    #[inline]
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_micros() as u64)
    }

    /// Record the elapsed time into `hist` (no-op when disabled).
    #[inline]
    pub fn record(&self, hist: &metrics::Histogram) {
        if let Some(us) = self.elapsed_us() {
            hist.record(us);
        }
    }
}

/// Serializes tests that flip the process-global [`set_enabled`]
/// flag against tests that record through it.
#[cfg(test)]
pub(crate) static ENABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_respects_enable_flag() {
        let _guard = ENABLE_LOCK.lock().unwrap();
        set_enabled(false);
        let off = Stopwatch::start();
        assert_eq!(off.elapsed_us(), None);
        set_enabled(true);
        let on = Stopwatch::start();
        assert!(on.elapsed_us().is_some());
    }
}
