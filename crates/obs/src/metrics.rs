//! Atomic metric primitives and the global series registry.
//!
//! Series are identified by a metric name plus a sorted label set
//! (`mcm_check_latency_us{checker="batch-sat"}`). Handles are `Arc`s:
//! resolve once (one registry lock), then increment/record lock-free
//! forever after. Histograms use fixed power-of-two microsecond
//! buckets, so two histograms merge by adding bucket arrays — exactly
//! what work-stealing sweep workers and snapshot deltas need.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) holds
/// values in `[2^(i-1), 2^i - 1]` microseconds; bucket 0 holds zero;
/// the last bucket absorbs everything from ~2^38 µs (~76 hours) up.
pub const BUCKETS: usize = 40;

/// A monotonically increasing event count. Lock-free.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// An instantaneous level that can rise and fall (queue depth,
/// in-flight requests). Lock-free.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite with `n`.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// A fixed-bucket log-scale latency histogram over microseconds.
///
/// `record` is three relaxed atomic adds — no locks, no allocation —
/// so it is safe on the sweep's work-stealing hot path. Quantiles are
/// estimated from bucket upper bounds, which for power-of-two buckets
/// means at most 2x overestimate; good enough to rank checkers.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for a microsecond value: 0 for 0, else the bit
    /// length of the value, capped at the overflow bucket.
    #[inline]
    fn index(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one observation of `us` microseconds.
    #[inline]
    pub fn record(&self, us: u64) {
        self.buckets[Self::index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
    }

    /// Copy the current state out as a plain (non-atomic) snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's counts into this one (used when a
    /// worker-local histogram drains into a shared one).
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(*theirs, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

/// A plain-data copy of a [`Histogram`]: mergeable, subtractable, and
/// the unit the report `timings` sections are computed from.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, µs.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50_us", &self.quantile(0.50))
            .field("p99_us", &self.quantile(0.99))
            .finish()
    }
}

impl HistogramSnapshot {
    /// Add another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The observations recorded since `base` was taken (saturating,
    /// so a fresh series that wasn't in `base` passes through).
    pub fn delta_since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(base.buckets[i])
            }),
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
        }
    }

    /// Estimated quantile `q` in `[0, 1]`, reported as the upper bound
    /// (µs) of the bucket holding the rank-`ceil(q*count)` value.
    /// Returns 0 for an empty histogram. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Mean observed value in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Inclusive upper bound (µs) of histogram bucket `i`: 0, 1, 3, 7, …
/// `2^i - 1`, with the last bucket unbounded.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// One registered series: its kind decides the handle type.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type SeriesKey = (String, Vec<(String, String)>);

/// A named collection of metric series. Use [`global`] for the
/// process-wide registry; tests can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolve (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    /// If the series exists with a different kind — that is a
    /// programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.series.lock().unwrap();
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("series `{name}` already registered with a different kind"),
        }
    }

    /// Resolve (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the series exists with a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.series.lock().unwrap();
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("series `{name}` already registered with a different kind"),
        }
    }

    /// Resolve (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the series exists with a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.series.lock().unwrap();
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("series `{name}` already registered with a different kind"),
        }
    }

    /// Point-in-time copy of every series, sorted by name then labels.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.series.lock().unwrap();
        Snapshot {
            series: map
                .iter()
                .map(|((name, labels), metric)| SeriesSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match metric {
                        Metric::Counter(c) => Value::Counter(c.get()),
                        Metric::Gauge(g) => Value::Gauge(g.get()),
                        Metric::Histogram(h) => Value::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }

    /// Render every series as Prometheus exposition text
    /// (`text/plain; version=0.0.4`). Histograms emit cumulative
    /// `_bucket{le=…}` series plus `_sum`, `_count`, and estimated
    /// `_p50`/`_p90`/`_p99` gauge series so scrapers that cannot do
    /// quantile math still see latency percentiles.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all instrumentation records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand: resolve a counter in the global registry.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(name, labels)
}

/// Shorthand: resolve a gauge in the global registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(name, labels)
}

/// Shorthand: resolve a histogram in the global registry.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(name, labels)
}

/// The value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Latency distribution (boxed: the bucket array dwarfs the
    /// scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One series (name + labels) with its snapshotted value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Metric name, e.g. `mcm_check_latency_us`.
    pub name: String,
    /// Sorted label pairs, e.g. `[("checker", "batch-sat")]`.
    pub labels: Vec<(String, String)>,
    /// The snapshotted value.
    pub value: Value,
}

/// A point-in-time copy of a whole registry, sorted by series key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All series, sorted by name then labels.
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Counters and histograms become "what happened since `base`"
    /// (saturating subtraction; series absent from `base` pass
    /// through whole). Gauges keep their current level — a delta of
    /// an instantaneous level is meaningless.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        type BaseMap<'a> = BTreeMap<(&'a str, &'a [(String, String)]), &'a Value>;
        let base_map: BaseMap<'_> = base
            .series
            .iter()
            .map(|s| ((s.name.as_str(), s.labels.as_slice()), &s.value))
            .collect();
        Snapshot {
            series: self
                .series
                .iter()
                .map(|s| {
                    let value = match (&s.value, base_map.get(&(s.name.as_str(), s.labels.as_slice()))) {
                        (Value::Counter(now), Some(Value::Counter(then))) => {
                            Value::Counter(now.saturating_sub(*then))
                        }
                        (Value::Histogram(now), Some(Value::Histogram(then))) => {
                            Value::Histogram(Box::new(now.delta_since(then)))
                        }
                        (value, _) => value.clone(),
                    };
                    SeriesSnapshot {
                        name: s.name.clone(),
                        labels: s.labels.clone(),
                        value,
                    }
                })
                .collect(),
        }
    }

    /// Every histogram series named `name`, as `(labels, snapshot)`.
    pub fn histograms<'a>(
        &'a self,
        name: &str,
    ) -> Vec<(&'a [(String, String)], &'a HistogramSnapshot)> {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                Value::Histogram(h) => Some((s.labels.as_slice(), h.as_ref())),
                _ => None,
            })
            .collect()
    }

    /// Render as Prometheus exposition text (see
    /// [`Registry::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut typed: Option<&str> = None;
        for s in &self.series {
            let labels = render_labels(&s.labels);
            match &s.value {
                Value::Counter(v) => {
                    if typed != Some(s.name.as_str()) {
                        let _ = writeln!(out, "# TYPE {} counter", s.name);
                    }
                    let _ = writeln!(out, "{}{} {}", s.name, labels, v);
                }
                Value::Gauge(v) => {
                    if typed != Some(s.name.as_str()) {
                        let _ = writeln!(out, "# TYPE {} gauge", s.name);
                    }
                    let _ = writeln!(out, "{}{} {}", s.name, labels, v);
                }
                Value::Histogram(h) => {
                    if typed != Some(s.name.as_str()) {
                        let _ = writeln!(out, "# TYPE {} histogram", s.name);
                    }
                    let mut cumulative = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        if n == 0 && i + 1 != BUCKETS {
                            continue;
                        }
                        let le = if i + 1 == BUCKETS {
                            "+Inf".to_string()
                        } else {
                            bucket_upper_bound(i).to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            render_labels_with(&s.labels, "le", &le),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {}", s.name, labels, h.sum);
                    let _ = writeln!(out, "{}_count{} {}", s.name, labels, h.count);
                    for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                        let _ = writeln!(
                            out,
                            "{}_{suffix}{} {}",
                            s.name,
                            labels,
                            h.quantile(q)
                        );
                    }
                }
            }
            typed = Some(s.name.as_str());
        }
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_with(labels: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    inner.push(format!("{extra_k}=\"{}\"", escape_label(extra_v)));
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("hits", &[]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same key resolves to the same underlying counter.
        assert_eq!(r.counter("hits", &[]).get(), 3);

        let g = r.gauge("depth", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter("c", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(r.counter("c", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for us in [0, 1, 2, 3, 100, 1000, 100_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 101_106);
        // Quantile estimates are bucket upper bounds, hence >= truth
        // and < 2x truth (for in-range values).
        let p50 = s.quantile(0.5);
        assert!((3..=127).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) >= 100_000);
        assert_eq!(s.quantile(0.0), 0);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10_000);
        b.record(7);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 10_017);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let r = Registry::new();
        let c = r.counter("c", &[]);
        let h = r.histogram("h", &[]);
        let g = r.gauge("g", &[]);
        c.add(5);
        h.record(10);
        g.set(3);
        let base = r.snapshot();
        c.add(2);
        h.record(20);
        g.set(9);
        let delta = r.snapshot().delta_since(&base);
        for s in &delta.series {
            match (s.name.as_str(), &s.value) {
                ("c", Value::Counter(v)) => assert_eq!(*v, 2),
                ("g", Value::Gauge(v)) => assert_eq!(*v, 9),
                ("h", Value::Histogram(hs)) => {
                    assert_eq!(hs.count, 1);
                    assert_eq!(hs.sum, 20);
                }
                other => panic!("unexpected series {other:?}"),
            }
        }
    }

    #[test]
    fn prometheus_render_contains_expected_series() {
        let r = Registry::new();
        r.counter("mcm_cache_hits_total", &[]).add(4);
        r.gauge("mcm_serve_queue_depth", &[]).set(2);
        let h = r.histogram("mcm_serve_request_latency_us", &[("kind", "sweep")]);
        h.record(100);
        h.record(5000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE mcm_cache_hits_total counter"));
        assert!(text.contains("mcm_cache_hits_total 4"));
        assert!(text.contains("mcm_serve_queue_depth 2"));
        assert!(text.contains("# TYPE mcm_serve_request_latency_us histogram"));
        assert!(text.contains("mcm_serve_request_latency_us_count{kind=\"sweep\"} 2"));
        assert!(text.contains("mcm_serve_request_latency_us_bucket{kind=\"sweep\",le=\"+Inf\"} 2"));
        assert!(text.contains("mcm_serve_request_latency_us_p50{kind=\"sweep\"}"));
        assert!(text.contains("mcm_serve_request_latency_us_p99{kind=\"sweep\"}"));
    }
}
