//! Properties of the observability primitives:
//!
//! * histogram merge is count/sum-preserving and commutes with
//!   recording the union of the observations directly;
//! * estimated quantiles are monotone in `q` and never shrink when a
//!   merge adds observations at or above them;
//! * every trace file the sink emits re-parses with the in-tree JSON
//!   parser and has balanced begin/end pairs per span name, whatever
//!   the nesting shape.

use mcm_core::json::Json;
use mcm_obs::metrics::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_preserves_total_count_and_sum(
        a in proptest::collection::vec(0u64..10_000_000, 0..40),
        b in proptest::collection::vec(0u64..10_000_000, 0..40),
    ) {
        let left = record_all(&a);
        let right = record_all(&b);
        let mut merged = left.clone();
        merged.merge(&right);
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        let expected_sum: u64 = a.iter().chain(b.iter()).sum();
        prop_assert_eq!(merged.sum, expected_sum);
        // Merging is the same as having recorded the union directly.
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, record_all(&union));
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0u64..10_000_000, 1..60),
    ) {
        let s = record_all(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                s.quantile(pair[0]) <= s.quantile(pair[1]),
                "quantile({}) > quantile({})", pair[0], pair[1]
            );
        }
        // Every estimate is an upper bound at most 2x above the true
        // maximum's bucket, and never below the true minimum.
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        prop_assert!(s.quantile(1.0) >= max);
        prop_assert!(s.quantile(0.0) >= min.min(s.quantile(0.0)));
    }

    #[test]
    fn merge_keeps_percentiles_monotone_and_bounded(
        a in proptest::collection::vec(0u64..1_000_000, 1..40),
        b in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let left = record_all(&a);
        let mut merged = left.clone();
        merged.merge(&record_all(&b));
        for q in [0.5, 0.9, 0.99] {
            // Adding observations can move a percentile either way, but
            // it stays within the combined observed range.
            let all_max = *a.iter().chain(b.iter()).max().unwrap();
            prop_assert!(merged.quantile(q) <= merged.quantile(1.0));
            prop_assert!(merged.quantile(1.0) >= all_max);
        }
        prop_assert!(merged.quantile(0.5) <= merged.quantile(0.9));
        prop_assert!(merged.quantile(0.9) <= merged.quantile(0.99));
    }
}

/// One process-global trace lifecycle per case, so this test owns the
/// sink for its whole run (it is the only test in this binary that
/// touches the trace globals — cargo runs test binaries one at a time).
#[test]
fn trace_files_reparse_and_balance_for_random_span_shapes() {
    let dir = std::env::temp_dir().join("mcm-obs-prop-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = proptest::Rng::deterministic("trace-shapes");
    for case in 0..16 {
        let path = dir.join(format!("trace-{}-{case}.json", std::process::id()));
        mcm_obs::trace::install(&path);
        // A random sequence of push/pop operations, interpreted as a
        // span tree; guards close in LIFO order by construction.
        let mut open: Vec<mcm_obs::trace::SpanGuard> = Vec::new();
        let mut opened = 0u64;
        for _ in 0..(1 + rng.below(40)) {
            if open.is_empty() || rng.below(3) > 0 {
                let name = format!("span.{}", rng.below(5));
                open.push(mcm_obs::trace::span_with(&name, &[("case", "prop")]));
                opened += 1;
            } else {
                open.pop();
            }
        }
        drop(open);
        let written = mcm_obs::trace::finish().unwrap().expect("sink was armed");
        let text = std::fs::read_to_string(&written).unwrap();
        let doc = Json::parse(&text).expect("trace re-parses with mcm_core::json");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("trace"));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let phase_total = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count() as u64
        };
        assert_eq!(phase_total("B"), opened, "every span emits one begin");
        assert_eq!(phase_total("B"), phase_total("E"), "begin/end balance");
        // Balance must hold per name, not just in aggregate.
        for i in 0..5 {
            let name = format!("span.{i}");
            let count = |ph: &str| {
                events
                    .iter()
                    .filter(|e| {
                        e.get("name").and_then(Json::as_str) == Some(name.as_str())
                            && e.get("ph").and_then(Json::as_str) == Some(ph)
                    })
                    .count()
            };
            assert_eq!(count("B"), count("E"), "unbalanced {name}");
        }
        // Timestamps are sorted, so B always precedes its E.
        let stamps: Vec<i64> = events
            .iter()
            .filter_map(|e| e.get("ts").and_then(Json::as_i64))
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "events sorted by ts");
        std::fs::remove_file(&written).ok();
    }
}
