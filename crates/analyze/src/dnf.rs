//! Minimized positive-DNF normal form.
//!
//! Every formula in the class is positive, so it has a positive DNF —
//! a disjunction of atom conjunctions. This module computes an
//! **irredundant** one directly from the truth table:
//!
//! 1. for every feasible true valuation, seed a term with *every* atom
//!    true there (the most specific description of that valuation);
//! 2. shrink each term to a prime implicant by dropping atoms while the
//!    term still implies the table over feasible valuations —
//!    feasibility acts as a don't-care set, which is how `Read(x) ∧
//!    DataDep` minimizes to `DataDep` alone;
//! 3. greedily cover the true valuations with the fewest terms
//!    (deterministic order, so the normal form is stable).
//!
//! The result evaluates identically to the input on every feasible
//! valuation — and therefore forces the same program-order edges on
//! every execution: a verdict-preserving drop-in for any checker.

use mcm_core::formula::{ArgPos, Atom, Formula};

use crate::table::TruthTable;
use crate::universe::AtomUniverse;

/// The candidate atoms of a universe, in the fixed order minimization
/// drops them in (least specific first, so `Access(x)` gives way to
/// `Read(x)` when both could stay).
fn candidate_atoms(universe: &AtomUniverse) -> Vec<Atom> {
    let mut atoms = vec![
        Atom::IsAccess(ArgPos::First),
        Atom::IsAccess(ArgPos::Second),
    ];
    for pos in [ArgPos::First, ArgPos::Second] {
        atoms.push(Atom::IsRead(pos));
        atoms.push(Atom::IsWrite(pos));
        atoms.push(Atom::IsFence(pos));
        for flavour in universe.named_flavours() {
            atoms.push(Atom::IsSpecialFence(flavour, pos));
        }
    }
    atoms.extend([Atom::SameAddr, Atom::DataDep, Atom::CtrlDep]);
    atoms
}

/// The table of a conjunction of atoms.
fn term_table(term: &[Atom], universe: &AtomUniverse) -> TruthTable {
    let mut table = TruthTable::empty(universe);
    for v in universe.feasible_valuations() {
        if term.iter().all(|&a| v.eval_atom(a)) {
            table.set(universe.index(&v));
        }
    }
    table
}

/// Computes the minimized positive DNF of `table` over `universe`.
///
/// The input table must be realizable by a positive formula over the
/// universe's atoms (always the case when it was built from one);
/// realizability is asserted by construction of the cover.
///
/// # Panics
///
/// Panics if the table is not realizable by a positive formula — e.g. a
/// hand-built table that is false on a valuation strictly above a true
/// one. Tables built from formulas never trip this.
#[must_use]
pub fn minimized_dnf_of_table(table: &TruthTable, universe: &AtomUniverse) -> Formula {
    if table.count_ones() == 0 {
        return Formula::never();
    }
    let atoms = candidate_atoms(universe);

    // 1–2. One prime implicant per true valuation.
    let mut terms: Vec<Vec<Atom>> = Vec::new();
    for v in universe.feasible_valuations() {
        if !table.get(universe.index(&v)) {
            continue;
        }
        let mut term: Vec<Atom> = atoms.iter().copied().filter(|&a| v.eval_atom(a)).collect();
        assert!(
            term_table(&term, universe).implies(table),
            "table must be realizable by a positive formula"
        );
        // Drop atoms front to back while the term still implies the table.
        let mut i = 0;
        while i < term.len() {
            let mut shrunk = term.clone();
            shrunk.remove(i);
            if term_table(&shrunk, universe).implies(table) {
                term = shrunk;
            } else {
                i += 1;
            }
        }
        if !terms.contains(&term) {
            terms.push(term);
        }
    }

    // 3. Greedy cover, preferring broad then short then early terms.
    let tables: Vec<TruthTable> = terms.iter().map(|t| term_table(t, universe)).collect();
    let mut uncovered: Vec<usize> = (0..universe.size())
        .filter(|&i| table.get(i))
        .collect();
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let best = (0..terms.len())
            .filter(|i| !chosen.contains(i))
            .max_by_key(|&i| {
                let covers = uncovered.iter().filter(|&&s| tables[i].get(s)).count();
                (covers, std::cmp::Reverse(terms[i].len()), std::cmp::Reverse(i))
            })
            .expect("every true valuation has a covering term");
        chosen.push(best);
        uncovered.retain(|&s| !tables[best].get(s));
    }
    chosen.sort_unstable();

    let disjuncts: Vec<Formula> = chosen
        .into_iter()
        .map(|i| match terms[i].len() {
            0 => Formula::always(),
            1 => Formula::atom(terms[i][0]),
            _ => Formula::and(terms[i].iter().copied().map(Formula::atom)),
        })
        .collect();
    match disjuncts.len() {
        1 => disjuncts.into_iter().next().expect("one disjunct"),
        _ => Formula::or(disjuncts),
    }
}

/// Computes the minimized positive DNF of `formula` (over the universe
/// of its own flavours).
#[must_use]
pub fn minimized_dnf(formula: &Formula) -> Formula {
    let universe = AtomUniverse::for_formulas([formula]);
    minimized_dnf_of_table(&TruthTable::build(formula, &universe), &universe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(f: &Formula) -> (TruthTable, AtomUniverse) {
        let u = AtomUniverse::for_formulas([f]);
        (TruthTable::build(f, &u), u)
    }

    fn assert_drop_in(f: &Formula) {
        let dnf = minimized_dnf(f);
        let u = AtomUniverse::for_formulas([f, &dnf]);
        assert_eq!(
            TruthTable::build(f, &u),
            TruthTable::build(&dnf, &u),
            "{f} minimized to {dnf}"
        );
    }

    #[test]
    fn constants_minimize_to_constants() {
        assert_eq!(minimized_dnf(&Formula::always()), Formula::always());
        assert_eq!(minimized_dnf(&Formula::never()), Formula::never());
        // A tautology over feasible valuations also collapses.
        let (t, u) = table_of(&Formula::always());
        assert_eq!(minimized_dnf_of_table(&t, &u), Formula::always());
    }

    #[test]
    fn feasibility_prunes_redundant_guards() {
        use mcm_core::formula::{ArgPos, Atom};
        // Read(x) ∧ DataDep: the guard is implied by feasibility.
        let f = Formula::and([
            Formula::atom(Atom::IsRead(ArgPos::First)),
            Formula::atom(Atom::DataDep),
        ]);
        assert_eq!(minimized_dnf(&f), Formula::atom(Atom::DataDep));
    }

    #[test]
    fn absorbed_disjuncts_disappear() {
        use mcm_core::formula::{ArgPos, Atom};
        let read_x = Formula::atom(Atom::IsRead(ArgPos::First));
        let absorbed = Formula::or([
            read_x.clone(),
            Formula::and([read_x.clone(), Formula::atom(Atom::SameAddr)]),
        ]);
        assert_eq!(minimized_dnf(&absorbed), read_x);
    }

    #[test]
    fn minimization_is_a_semantic_drop_in() {
        use mcm_core::formula::{ArgPos, Atom};
        assert_drop_in(&Formula::fence_either());
        assert_drop_in(&Formula::or([
            Formula::fence_either(),
            Formula::pair(
                Atom::IsWrite(ArgPos::First),
                Atom::IsWrite(ArgPos::Second),
                Formula::atom(Atom::SameAddr),
            ),
            Formula::pair(
                Atom::IsRead(ArgPos::First),
                Atom::IsWrite(ArgPos::Second),
                Formula::or([Formula::atom(Atom::SameAddr), Formula::atom(Atom::DataDep)]),
            ),
        ]));
        assert_drop_in(&Formula::atom(Atom::IsSpecialFence(2, ArgPos::First)));
    }

    #[test]
    fn minimization_is_idempotent() {
        let f = Formula::or([
            Formula::fence_either(),
            Formula::atom(mcm_core::formula::Atom::SameAddr),
        ]);
        let once = minimized_dnf(&f);
        assert_eq!(minimized_dnf(&once), once);
    }
}
