//! The static strength preorder/lattice over a model set.
//!
//! Built purely from truth tables: no litmus test is generated, checked
//! or executed. Equivalence classes come from the *normalized* tables
//! ([`crate::elide`]); the order is sound pointwise implication — `F ⊨ G`
//! on every feasible valuation means `G` forces a superset of
//! happens-before edges on every execution, so `allowed(G) ⊆ allowed(F)`
//! and `G` is the stronger model. The order is a sound lower bound on
//! the behavioural order (incomparable-here can still be ordered
//! behaviourally); equivalence via Theorem A is exact on its guarded
//! fragment.

use mcm_core::{Formula, MemoryModel};

use crate::dnf::minimized_dnf_of_table;
use crate::elide::normalize;
use crate::table::{SemanticKey, TruthTable};
use crate::universe::AtomUniverse;

/// Everything the analyzer derives about one model, statically.
#[derive(Clone, Debug)]
pub struct ModelAnalysis {
    /// The model's name.
    pub name: String,
    /// The original must-not-reorder formula.
    pub formula: Formula,
    /// The canonical semantic key (pointwise identity).
    pub key: SemanticKey,
    /// The pointwise truth table in the shared universe.
    pub table: TruthTable,
    /// The behavioural normal form (Theorem A applied when its guard
    /// holds).
    pub normalized: TruthTable,
    /// The minimized positive-DNF drop-in for the formula.
    pub minimized: Formula,
    /// Whether Theorem A actually changed the table — i.e. the model
    /// orders same-address `W→R` pairs but that ordering is provably
    /// unobservable.
    pub elided: bool,
}

/// The static strength analysis of a model set.
#[derive(Clone, Debug)]
pub struct StrengthAnalysis {
    /// The shared atom universe of the set.
    pub universe: AtomUniverse,
    /// Per-model results, in input order.
    pub models: Vec<ModelAnalysis>,
    /// Behavioural equivalence classes (indices into `models`), ordered
    /// by first member.
    pub classes: Vec<Vec<usize>>,
    /// Hasse edges `weaker → stronger` between class indices, after
    /// transitive reduction.
    pub edges: Vec<(usize, usize)>,
}

impl StrengthAnalysis {
    /// Analyzes `models` — statically, with zero tests executed.
    #[must_use]
    pub fn build(models: &[MemoryModel]) -> Self {
        let universe = AtomUniverse::for_formulas(models.iter().map(MemoryModel::formula));
        let analyses: Vec<ModelAnalysis> = models
            .iter()
            .map(|model| {
                let table = TruthTable::build(model.formula(), &universe);
                let normalized = normalize(&table, &universe);
                ModelAnalysis {
                    name: model.name().to_string(),
                    formula: model.formula().clone(),
                    key: SemanticKey::of(model.formula()),
                    minimized: minimized_dnf_of_table(&table, &universe),
                    elided: normalized != table,
                    table,
                    normalized,
                }
            })
            .collect();

        // Equivalence classes by normalized table.
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for (i, analysis) in analyses.iter().enumerate() {
            match classes
                .iter_mut()
                .find(|c| analyses[c[0]].normalized == analysis.normalized)
            {
                Some(class) => class.push(i),
                None => classes.push(vec![i]),
            }
        }

        // Hasse diagram of strict pointwise implication between classes.
        let n = classes.len();
        let weaker = |a: usize, b: usize| {
            let (ta, tb) = (
                &analyses[classes[a][0]].normalized,
                &analyses[classes[b][0]].normalized,
            );
            ta.implies(tb) && ta != tb
        };
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b || !weaker(a, b) {
                    continue;
                }
                let covered =
                    (0..n).any(|c| c != a && c != b && weaker(a, c) && weaker(c, b));
                if !covered {
                    edges.push((a, b));
                }
            }
        }

        StrengthAnalysis {
            universe,
            models: analyses,
            classes,
            edges,
        }
    }

    /// The class index of model `m`.
    #[must_use]
    pub fn class_of(&self, m: usize) -> usize {
        self.classes
            .iter()
            .position(|c| c.contains(&m))
            .expect("every model is in a class")
    }

    /// All unordered pairs of distinct models proven equivalent, each
    /// tagged with how: `"pointwise"` (equal tables) or `"theorem-a"`
    /// (equal only after elision).
    #[must_use]
    pub fn equivalent_pairs(&self) -> Vec<(usize, usize, &'static str)> {
        let mut pairs = Vec::new();
        for class in &self.classes {
            for (a, &i) in class.iter().enumerate() {
                for &j in &class[a + 1..] {
                    let how = if self.models[i].table == self.models[j].table {
                        "pointwise"
                    } else {
                        "theorem-a"
                    };
                    pairs.push((i, j, how));
                }
            }
        }
        pairs
    }

    /// Class indices with no strictly weaker class (lattice bottoms).
    #[must_use]
    pub fn minimal_classes(&self) -> Vec<usize> {
        let mut excluded = vec![false; self.classes.len()];
        for &(_, stronger) in &self.edges {
            excluded[stronger] = true;
        }
        (0..self.classes.len()).filter(|&i| !excluded[i]).collect()
    }

    /// Class indices with no strictly stronger class (lattice tops).
    #[must_use]
    pub fn maximal_classes(&self) -> Vec<usize> {
        let mut excluded = vec![false; self.classes.len()];
        for &(weaker, _) in &self.edges {
            excluded[weaker] = true;
        }
        (0..self.classes.len()).filter(|&i| !excluded[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_models::named;

    #[test]
    fn tso_and_x86_are_pointwise_equivalent() {
        let analysis = StrengthAnalysis::build(&[named::tso(), named::x86(), named::sc()]);
        assert_eq!(analysis.classes.len(), 2);
        assert_eq!(analysis.equivalent_pairs(), vec![(0, 1, "pointwise")]);
    }

    #[test]
    fn the_static_chain_orders_sc_tso_pso() {
        let analysis = StrengthAnalysis::build(&[named::pso(), named::tso(), named::sc()]);
        assert_eq!(analysis.classes.len(), 3);
        // PSO → TSO → SC, transitively reduced.
        assert_eq!(analysis.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(analysis.maximal_classes(), vec![2]);
        assert_eq!(analysis.minimal_classes(), vec![0]);
    }

    #[test]
    fn every_model_implies_sc_statically() {
        let models = vec![
            named::sc(),
            named::tso(),
            named::pso(),
            named::ibm370(),
            named::rmo(),
            named::alpha(),
        ];
        let analysis = StrengthAnalysis::build(&models);
        let sc = &analysis.models[0].normalized;
        for m in &analysis.models {
            assert!(m.normalized.implies(sc), "{} must imply SC", m.name);
        }
    }

    #[test]
    fn minimized_formulas_are_pointwise_equal_drop_ins() {
        let models = vec![named::tso(), named::rmo(), named::alpha()];
        let analysis = StrengthAnalysis::build(&models);
        for m in &analysis.models {
            assert_eq!(
                TruthTable::build(&m.minimized, &analysis.universe),
                m.table,
                "{}",
                m.name
            );
        }
    }
}
