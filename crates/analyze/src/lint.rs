//! Static lints over formulas, model sets and litmus tests.
//!
//! All semantic checks go through the truth table, so a lint never
//! executes a test: a *redundant conjunct* is an `And` child whose
//! removal leaves the table unchanged, an *absorbed disjunct* an `Or`
//! child covered by its siblings, an *infeasible term* a conjunction no
//! execution can satisfy (e.g. `Write(x) ∧ DataDep` — dependency taint
//! originates at reads). Test lints inspect the candidate execution and
//! the canonicalization layer only.

use mcm_core::{Formula, LitmusTest, MemoryModel};

use crate::table::TruthTable;
use crate::universe::AtomUniverse;

/// One static finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// What the finding is about (a model or test name).
    pub target: String,
    /// The stable lint code (`redundant-conjunct`, `absorbed-disjunct`,
    /// `infeasible-term`, `constant-formula`, `duplicate-model`,
    /// `never-read-write`, `non-canonical-test`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn new(target: &str, code: &'static str, message: String) -> Finding {
        Finding {
            target: target.to_string(),
            code,
            message,
        }
    }
}

/// Rebuilds `formula` with the node at `path` pruned of child `drop`.
fn without_child(formula: &Formula, path: &[usize], drop: usize) -> Formula {
    match path.split_first() {
        None => match formula {
            Formula::And(children) => Formula::And(
                children
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, c)| c.clone())
                    .collect(),
            ),
            Formula::Or(children) => Formula::Or(
                children
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, c)| c.clone())
                    .collect(),
            ),
            other => other.clone(),
        },
        Some((&step, rest)) => match formula {
            Formula::And(children) => Formula::And(
                children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if i == step {
                            without_child(c, rest, drop)
                        } else {
                            c.clone()
                        }
                    })
                    .collect(),
            ),
            Formula::Or(children) => Formula::Or(
                children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if i == step {
                            without_child(c, rest, drop)
                        } else {
                            c.clone()
                        }
                    })
                    .collect(),
            ),
            other => other.clone(),
        },
    }
}

fn walk(
    name: &str,
    root: &Formula,
    root_table: &TruthTable,
    node: &Formula,
    path: &mut Vec<usize>,
    universe: &AtomUniverse,
    findings: &mut Vec<Finding>,
) {
    match node {
        Formula::And(children) => {
            // An unsatisfiable conjunction contributes nothing anywhere.
            if !children.is_empty()
                && TruthTable::build(node, universe).count_ones() == 0
            {
                findings.push(Finding::new(
                    name,
                    "infeasible-term",
                    format!("conjunction `{node}` is satisfied by no feasible event pair"),
                ));
            } else {
                for (i, child) in children.iter().enumerate() {
                    let variant = without_child(root, path, i);
                    if TruthTable::build(&variant, universe) == *root_table {
                        findings.push(Finding::new(
                            name,
                            "redundant-conjunct",
                            format!("conjunct `{child}` of `{node}` never changes the verdict"),
                        ));
                    }
                }
            }
            for (i, child) in children.iter().enumerate() {
                path.push(i);
                walk(name, root, root_table, child, path, universe, findings);
                path.pop();
            }
        }
        Formula::Or(children) => {
            for (i, child) in children.iter().enumerate() {
                if matches!(child, Formula::Const(false)) {
                    continue; // Uninteresting structural filler.
                }
                let variant = without_child(root, path, i);
                if TruthTable::build(&variant, universe) == *root_table {
                    findings.push(Finding::new(
                        name,
                        "absorbed-disjunct",
                        format!("disjunct `{child}` is absorbed by the rest of `{node}`"),
                    ));
                }
            }
            for (i, child) in children.iter().enumerate() {
                path.push(i);
                walk(name, root, root_table, child, path, universe, findings);
                path.pop();
            }
        }
        Formula::Const(_) | Formula::Atom(_) => {}
    }
}

/// Lints one formula: redundant conjuncts, absorbed disjuncts,
/// infeasible terms and constant formulas.
#[must_use]
pub fn lint_formula(name: &str, formula: &Formula) -> Vec<Finding> {
    let universe = AtomUniverse::for_formulas([formula]);
    let table = TruthTable::build(formula, &universe);
    let mut findings = Vec::new();
    let feasible = TruthTable::feasible_mask(&universe);
    if table == feasible && !matches!(formula, Formula::Const(true)) {
        findings.push(Finding::new(
            name,
            "constant-formula",
            format!("`{formula}` orders every feasible pair; write `True`"),
        ));
    } else if table.count_ones() == 0 && !matches!(formula, Formula::Const(false)) {
        findings.push(Finding::new(
            name,
            "constant-formula",
            format!("`{formula}` orders no feasible pair; write `False`"),
        ));
    }
    walk(
        name,
        formula,
        &table,
        formula,
        &mut Vec::new(),
        &universe,
        &mut findings,
    );
    findings
}

/// Lints a model set: models whose formulas are pointwise-identical
/// under different names (catalog duplicates).
#[must_use]
pub fn lint_models(models: &[MemoryModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let keys: Vec<crate::table::SemanticKey> = models
        .iter()
        .map(|m| crate::semantic_key(m.formula()))
        .collect();
    for i in 0..models.len() {
        for j in i + 1..models.len() {
            if keys[i] == keys[j] {
                findings.push(Finding::new(
                    models[j].name(),
                    "duplicate-model",
                    format!(
                        "`{}` is pointwise-identical to `{}`",
                        models[j].name(),
                        models[i].name()
                    ),
                ));
            }
        }
    }
    findings
}

/// Lints one litmus test: writes whose location no read observes, and
/// tests that are not their symmetry orbit's canonical leader.
#[must_use]
pub fn lint_test(test: &LitmusTest) -> Vec<Finding> {
    let mut findings = Vec::new();
    let exec = test.execution();
    for write in exec.writes() {
        let loc = write.loc().expect("writes have locations");
        if !exec.reads().any(|r| r.loc() == Some(loc)) {
            findings.push(Finding::new(
                test.name(),
                "never-read-write",
                format!(
                    "write to {loc} on thread {} is never read; its value cannot \
                     influence the outcome",
                    write.thread
                ),
            ));
        }
    }
    if !mcm_gen::canon::is_leader(test) {
        findings.push(Finding::new(
            test.name(),
            "non-canonical-test",
            format!(
                "test is not its symmetry orbit's leader; `{}` is the canonical form",
                mcm_gen::canon::canonicalize(test).name()
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::formula::{ArgPos, Atom};
    use mcm_models::{catalog, named};

    #[test]
    fn clean_formulas_have_no_findings() {
        assert!(lint_formula("TSO", named::tso().formula()).is_empty());
        assert!(lint_formula("SC", named::sc().formula()).is_empty());
    }

    #[test]
    fn redundant_conjuncts_are_flagged() {
        // Read(x) ∧ DataDep: the Read(x) guard is feasibility-implied.
        let f = Formula::and([
            Formula::atom(Atom::IsRead(ArgPos::First)),
            Formula::atom(Atom::DataDep),
        ]);
        let findings = lint_formula("m", &f);
        assert!(findings.iter().any(|f| f.code == "redundant-conjunct"));
    }

    #[test]
    fn absorbed_disjuncts_are_flagged() {
        let read_x = Formula::atom(Atom::IsRead(ArgPos::First));
        let f = Formula::or([
            read_x.clone(),
            Formula::and([read_x, Formula::atom(Atom::SameAddr)]),
        ]);
        let findings = lint_formula("m", &f);
        assert!(findings.iter().any(|f| f.code == "absorbed-disjunct"));
    }

    #[test]
    fn infeasible_terms_are_flagged() {
        let f = Formula::or([
            Formula::fence_either(),
            Formula::and([
                Formula::atom(Atom::IsWrite(ArgPos::First)),
                Formula::atom(Atom::DataDep),
            ]),
        ]);
        let findings = lint_formula("m", &f);
        assert!(findings.iter().any(|f| f.code == "infeasible-term"));
    }

    #[test]
    fn hidden_constants_are_flagged() {
        let f = Formula::or([
            Formula::atom(Atom::IsAccess(ArgPos::First)),
            Formula::atom(Atom::IsFence(ArgPos::First)),
            Formula::atom(Atom::IsSpecialFence(1, ArgPos::First)),
        ]);
        // Every event kind matches one branch… except unnamed specials
        // and ops, so this is NOT constant — use a genuinely total one.
        assert!(lint_formula("m", &f)
            .iter()
            .all(|f| f.code != "constant-formula"));
        let total = Formula::or([Formula::always(), Formula::atom(Atom::SameAddr)]);
        assert!(lint_formula("m", &total)
            .iter()
            .any(|f| f.code == "constant-formula"));
    }

    #[test]
    fn duplicate_models_are_flagged() {
        let findings = lint_models(&[named::tso(), named::x86(), named::sc()]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "duplicate-model");
        assert_eq!(findings[0].target, "x86");
    }

    #[test]
    fn catalog_tests_are_clean_leaders_or_flagged() {
        // The catalog's canonical tests produce no never-read findings.
        let findings = lint_test(&catalog::l1());
        assert!(findings.iter().all(|f| f.code != "never-read-write"));
    }
}
