//! Static semantic analysis of must-not-reorder formulas.
//!
//! The paper's model class (§2.3) specifies a memory model by a
//! quantifier-free *positive* boolean function `F(x, y)` over a finite
//! predicate set. That makes implication and equivalence between formulas
//! decidable by finite truth-table analysis over the **feasible**
//! valuations of the atom universe — no litmus test ever needs to run.
//! This crate carves out that statically decidable fragment:
//!
//! * [`universe`] — the atom universe and its structural feasibility
//!   constraints (an event is exactly one of read/write/fence/op,
//!   `SameAddr` needs two accesses, `DataDep` needs a read `x`, …);
//! * [`table`] — a [`TruthTable`] per formula: its value on every
//!   feasible valuation, a canonical [`SemanticKey`], and sound pointwise
//!   implication (`F ⊨ G` pointwise ⇒ `G` forces a superset of edges ⇒
//!   `allowed(G) ⊆ allowed(F)`, i.e. `G` is the stronger model);
//! * [`dnf`] — an irredundant minimized positive-DNF normal form that is
//!   a verdict-preserving drop-in for the original formula;
//! * [`elide`] — Theorem A, a *conditional* equivalence beyond pointwise
//!   analysis: under a semantically checkable guard the same-address
//!   `Write(x) ∧ Read(y)` ordering is unobservable and can be elided.
//!   This is exactly what merges the paper's 8 equivalent pairs in the
//!   90-model space without executing a single test;
//! * [`strength`] — the static strength preorder/lattice over any model
//!   set, built from the normalized tables;
//! * [`prefilter`] — the sweep prefilter: per test, the set of valuations
//!   its program-order pairs realize (the *relaxation signature*); models
//!   whose tables agree on that restriction provably share the test's
//!   verdict and need one checker call per group;
//! * [`lint`] — static lints over formulas (redundant conjuncts, absorbed
//!   disjuncts, infeasible terms, constant formulas), model sets
//!   (catalog duplicates) and litmus tests (never-read writes,
//!   non-canonical form).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnf;
pub mod elide;
pub mod lint;
pub mod prefilter;
pub mod strength;
pub mod table;
pub mod universe;

pub use dnf::minimized_dnf;
pub use elide::{elidable, guarded_fragment, normalize};
pub use lint::{lint_formula, lint_models, lint_test, Finding};
pub use prefilter::SweepPrefilter;
pub use strength::{ModelAnalysis, StrengthAnalysis};
pub use table::{SemanticKey, TruthTable};
pub use universe::{AtomUniverse, Kind, Valuation};

/// The canonical semantic key of a formula: two formulas get equal keys
/// **iff** they agree on every feasible valuation of every execution —
/// the sound dedup key the sweep engine shares verdict rows under.
#[must_use]
pub fn semantic_key(formula: &mcm_core::formula::Formula) -> SemanticKey {
    SemanticKey::of(formula)
}
