//! Theorem A: conditional elision of the same-address `W(x) → R(y)`
//! ordering.
//!
//! Pointwise truth-table equality is sound but incomplete: the paper's 8
//! equivalent pairs in the 90-model space (`M1010 ≡ M1110`, …) differ
//! *pointwise* — the `wr` digit orders the same-address write→read pair
//! in one model and not the other — yet no litmus test distinguishes
//! them. The reason is behavioural: under the happens-before axioms, a
//! same-address `W → R` program-order edge can only close a cycle that
//! the coherence/from-read edges of some *other* ordering already close,
//! provided the rest of the formula has the right shape. (It is **not**
//! unconditional: TSO = `M4044` and IBM370 = `M4144` differ in exactly
//! the same row and are distinguishable by a 6-access test.)
//!
//! **Theorem A.** Let `F` be a formula whose table satisfies the guard
//! below. Then the model with the `(Write x, Read y, SameAddr)` slot set
//! to *false* allows exactly the same outcomes as the model with it set
//! to *true*. Guard (over feasible valuations):
//!
//! 1. every pair involving a full fence is ordered;
//! 2. no other pair involving an op/branch or a special fence is ordered;
//! 3. no different-address `W→R` pair is ordered;
//! 4. no different-address `R→R` pair is ordered (any dependencies);
//! 5. every same-address `W→W` and `R→W` pair is ordered (these are
//!    forced by coherence + from-read anyway);
//! 6. the table is independent of `ControlDep`;
//! 7. either **all** different-address `W→W` pairs are ordered, or
//!    **no** different-address `R→W` pair is (any dependencies).
//!
//! Within the paper's model class the guarded fragment is *finite*: the
//! free slots are `(R,R,same-addr)` × data-dep (monotone), `(R,W,
//! diff-addr)` × data-dep (monotone) and `(W,W, diff-addr)` — twelve
//! guard-satisfying tables in the base universe. The cross-layer test
//! `elision_theorem_exhaustive` in `mcm-explore` checks every one of
//! them against the complete dependency template suite (which decides
//! equivalence for the class by Corollary 1), so the theorem is
//! machine-verified over its entire domain of application, not sampled.
//!
//! Restricted to the digit models `M{ww}{wr}{rw}{rr}` the guard reads
//! `wr ∈ {0,1} ∧ rr ∈ {0,1} ∧ (ww = 4 ∨ rw = 1)` — exactly the paper's
//! 8 equivalent pairs, and nothing else.

use crate::table::TruthTable;
use crate::universe::{AtomUniverse, Kind, Valuation};

/// Whether Theorem A applies to `table`: see the module docs for the
/// guard. When true, [`normalize`] may soundly clear the same-address
/// `W→R` slot.
#[must_use]
pub fn elidable(table: &TruthTable, universe: &AtomUniverse) -> bool {
    let mut all_ww_diff = true;
    let mut any_rw_diff = false;
    for v in universe.feasible_valuations() {
        let value = table.get(universe.index(&v));
        // 6. Control-dependency independence.
        if v.ctrl_dep {
            let base = Valuation {
                ctrl_dep: false,
                ..v
            };
            if value != table.get(universe.index(&base)) {
                return false;
            }
        }
        match (v.first, v.second) {
            // 1. Full-fence pairs must be ordered.
            (Kind::FullFence, _) | (_, Kind::FullFence) => {
                if !value {
                    return false;
                }
            }
            // 2. Remaining op/branch/special pairs must not be.
            (k, _) | (_, k) if !k.is_access() => {
                if value {
                    return false;
                }
            }
            (Kind::Write, Kind::Read) => {
                // 3. Different-address W→R unordered; same-address free
                // (it is the slot being elided).
                if !v.same_addr && value {
                    return false;
                }
            }
            (Kind::Read, Kind::Read) => {
                // 4. Different-address R→R unordered.
                if !v.same_addr && value {
                    return false;
                }
            }
            (Kind::Write, Kind::Write) => {
                // 5. Same-address W→W ordered.
                if v.same_addr && !value {
                    return false;
                }
                if !v.same_addr && !value {
                    all_ww_diff = false;
                }
            }
            (Kind::Read, Kind::Write) => {
                // 5. Same-address R→W ordered.
                if v.same_addr && !value {
                    return false;
                }
                if !v.same_addr && value {
                    any_rw_diff = true;
                }
            }
            _ => unreachable!("all kind pairs are covered"),
        }
    }
    // 7. All different-address W→W ordered, or no different-address R→W.
    all_ww_diff || !any_rw_diff
}

/// The behavioural normal form of `table`: when Theorem A applies, the
/// same-address `W→R` slot is cleared; otherwise the table is returned
/// unchanged. Two formulas with equal normalized tables specify
/// behaviourally equivalent models.
#[must_use]
pub fn normalize(table: &TruthTable, universe: &AtomUniverse) -> TruthTable {
    if !elidable(table, universe) {
        return table.clone();
    }
    let mut normalized = table.clone();
    normalized.clear(universe.index(&Valuation {
        first: Kind::Write,
        second: Kind::Read,
        same_addr: true,
        data_dep: false,
        ctrl_dep: false,
    }));
    normalized
}

/// The twelve guard-satisfying tables of the base universe, each as the
/// flag triple `(rr_same_addr_dep_bits, rw_diff_addr_dep_bits,
/// ww_diff_addr)` of its free slots — the exhaustive domain the
/// cross-layer theorem test enumerates. Dependency bits are monotone
/// (`0b00`, `0b01` = dep-only, `0b11`), mirroring positivity.
#[must_use]
pub fn guarded_fragment() -> Vec<(u8, u8, bool)> {
    let mut out = Vec::new();
    for rr in [0b00u8, 0b01, 0b11] {
        for rw in [0b00u8, 0b01, 0b11] {
            for ww in [false, true] {
                // Guard condition 7.
                if ww || rw == 0 {
                    out.push((rr, rw, ww));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::formula::{ArgPos, Atom, Formula};

    fn pair(first: Atom, second: Atom, extra: Formula) -> Formula {
        Formula::pair(first, second, extra)
    }

    /// The digit-model shape with explicit per-pair conditions.
    fn digit_like(ww: Formula, wr: Formula, rw: Formula, rr: Formula) -> Formula {
        let w = |p| Atom::IsWrite(p);
        let r = |p| Atom::IsRead(p);
        Formula::or([
            Formula::fence_either(),
            pair(w(ArgPos::First), w(ArgPos::Second), ww),
            pair(w(ArgPos::First), r(ArgPos::Second), wr),
            pair(r(ArgPos::First), w(ArgPos::Second), rw),
            pair(r(ArgPos::First), r(ArgPos::Second), rr),
        ])
    }

    fn same_addr() -> Formula {
        Formula::atom(Atom::SameAddr)
    }

    #[test]
    fn pso_like_models_are_elidable() {
        // M1010 / M1110 (RMO without dependencies, ± same-addr W→R).
        let u = AtomUniverse::base();
        let without = digit_like(same_addr(), Formula::never(), same_addr(), Formula::never());
        let with = digit_like(same_addr(), same_addr(), same_addr(), Formula::never());
        let a = TruthTable::build(&without, &u);
        let b = TruthTable::build(&with, &u);
        assert!(elidable(&a, &u) && elidable(&b, &u));
        assert_ne!(a, b, "the pair differs pointwise");
        assert_eq!(normalize(&a, &u), normalize(&b, &u), "but not behaviourally");
    }

    #[test]
    fn tso_vs_ibm370_is_not_elidable() {
        // M4044 (TSO) vs M4144 (IBM370): rr = 4 breaks guard condition 4,
        // and indeed a 6-access test distinguishes them.
        let u = AtomUniverse::base();
        let tso = digit_like(
            Formula::always(),
            Formula::never(),
            Formula::always(),
            Formula::always(),
        );
        let ibm = digit_like(
            Formula::always(),
            same_addr(),
            Formula::always(),
            Formula::always(),
        );
        let a = TruthTable::build(&tso, &u);
        let b = TruthTable::build(&ibm, &u);
        assert!(!elidable(&a, &u) && !elidable(&b, &u));
        assert_ne!(normalize(&a, &u), normalize(&b, &u));
    }

    #[test]
    fn weak_ww_with_strong_rw_breaks_the_guard() {
        // ww = 1 (same-addr only) with rw = 4 (always): condition 7.
        let u = AtomUniverse::base();
        let f = digit_like(
            same_addr(),
            Formula::never(),
            Formula::always(),
            Formula::never(),
        );
        assert!(!elidable(&TruthTable::build(&f, &u), &u));
    }

    #[test]
    fn sc_is_not_elidable() {
        let u = AtomUniverse::base();
        // True orders different-address W→R pairs: condition 3.
        assert!(!elidable(&TruthTable::build(&Formula::always(), &u), &u));
    }

    #[test]
    fn the_guarded_fragment_has_twelve_tables() {
        let fragment = guarded_fragment();
        assert_eq!(fragment.len(), 12);
        // ww=false admits only rw=0b00 (three rr choices).
        assert_eq!(fragment.iter().filter(|(_, _, ww)| !ww).count(), 3);
    }

    #[test]
    fn normalization_is_idempotent() {
        let u = AtomUniverse::base();
        let f = digit_like(same_addr(), same_addr(), same_addr(), same_addr());
        let t = TruthTable::build(&f, &u);
        let once = normalize(&t, &u);
        assert_eq!(normalize(&once, &u), once);
    }
}
