//! Formula truth tables over a feasible-valuation universe.

use mcm_core::formula::Formula;

use crate::universe::{AtomUniverse, Kind, Valuation};

/// The value of a formula on every slot of an [`AtomUniverse`], one bit
/// per slot; infeasible slots are always `false`, so pointwise operations
/// quantify over feasible valuations only.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TruthTable {
    words: Vec<u64>,
    len: usize,
}

impl TruthTable {
    /// The all-false table over `universe`.
    #[must_use]
    pub fn empty(universe: &AtomUniverse) -> Self {
        TruthTable {
            words: vec![0; universe.size().div_ceil(64)],
            len: universe.size(),
        }
    }

    /// Evaluates `formula` on every feasible valuation of `universe`.
    ///
    /// # Panics
    ///
    /// Panics if `formula` names a special-fence flavour the universe
    /// does not carry — build the universe with
    /// [`AtomUniverse::for_formulas`] over every formula you compare.
    #[must_use]
    pub fn build(formula: &Formula, universe: &AtomUniverse) -> Self {
        assert!(
            universe.supports(formula),
            "universe must name every special flavour the formula tests"
        );
        let mut table = TruthTable::empty(universe);
        for v in universe.feasible_valuations() {
            if v.eval(formula) {
                table.set(universe.index(&v));
            }
        }
        table
    }

    /// The mask of all feasible slots.
    #[must_use]
    pub fn feasible_mask(universe: &AtomUniverse) -> Self {
        let mut table = TruthTable::empty(universe);
        for v in universe.feasible_valuations() {
            table.set(universe.index(&v));
        }
        table
    }

    /// Sets slot `index`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "slot out of range");
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears slot `index`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "slot out of range");
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// The value at slot `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "slot out of range");
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of true slots.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Pointwise implication: every valuation this table orders, `other`
    /// orders too. Because forced edges grow monotonically with the
    /// table, `self ⊨ other` means *other is the stronger-or-equal
    /// model*: `allowed(other) ⊆ allowed(self)`.
    #[must_use]
    pub fn implies(&self, other: &TruthTable) -> bool {
        assert_eq!(self.len, other.len, "tables over different universes");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// The restriction of this table to the slots of `mask` — the key the
    /// sweep prefilter groups models by.
    #[must_use]
    pub fn restrict(&self, mask: &TruthTable) -> TruthTable {
        assert_eq!(self.len, mask.len, "tables over different universes");
        TruthTable {
            words: self
                .words
                .iter()
                .zip(&mask.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// The raw words (low bit of word 0 is slot 0).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The canonical semantic identity of a formula: its truth table over a
/// *reduced* universe naming only the special flavours the formula can
/// actually distinguish. Two formulas get equal keys **iff** they agree
/// on every event pair of every execution, so the key is a sound dedup
/// key for verdict rows (structural equality, not a hash — collisions
/// are impossible by construction).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SemanticKey {
    flavours: Vec<u8>,
    words: Vec<u64>,
}

impl SemanticKey {
    /// Computes the canonical key of `formula`.
    #[must_use]
    pub fn of(formula: &Formula) -> SemanticKey {
        let full = AtomUniverse::for_formulas([formula]);
        let table = TruthTable::build(formula, &full);
        // A named flavour is semantically live only if the table tells it
        // apart from the anonymous "any other special fence" kind.
        let live: Vec<u8> = full
            .named_flavours()
            .into_iter()
            .filter(|&f| distinguishes_flavour(&table, &full, f))
            .collect();
        // Project the full table onto the reduced universe (every reduced
        // kind exists in the full one); dead flavours' slots were proven
        // equal to the anonymous special's, so nothing is lost.
        let reduced = AtomUniverse::with_flavours(&live);
        let mut projected = TruthTable::empty(&reduced);
        for v in reduced.feasible_valuations() {
            if table.get(full.index(&v)) {
                projected.set(reduced.index(&v));
            }
        }
        SemanticKey {
            flavours: live,
            words: projected.words,
        }
    }

    /// A 64-bit FNV-1a digest of the key, for display.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut absorb = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &f in &self.flavours {
            absorb(f);
        }
        absorb(0xff);
        for &w in &self.words {
            for b in w.to_le_bytes() {
                absorb(b);
            }
        }
        hash
    }

    /// The live special flavours of the reduced universe.
    #[must_use]
    pub fn flavours(&self) -> &[u8] {
        &self.flavours
    }
}

/// Whether `table` distinguishes `Special(flavour)` from
/// [`Kind::OtherSpecial`] in either argument position.
fn distinguishes_flavour(table: &TruthTable, universe: &AtomUniverse, flavour: u8) -> bool {
    let swap = |kind: Kind| {
        if kind == Kind::Special(flavour) {
            Kind::OtherSpecial
        } else {
            kind
        }
    };
    universe.feasible_valuations().any(|v| {
        let swapped = Valuation {
            first: swap(v.first),
            second: swap(v.second),
            ..v
        };
        // Swapping special kinds never changes feasibility (both are
        // fences with identical structural constraints).
        table.get(universe.index(&v)) != table.get(universe.index(&swapped))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::formula::{ArgPos, Atom};

    fn read_x() -> Formula {
        Formula::atom(Atom::IsRead(ArgPos::First))
    }

    #[test]
    fn tables_evaluate_formulas_pointwise() {
        let u = AtomUniverse::base();
        let t = TruthTable::build(&read_x(), &u);
        for v in u.feasible_valuations() {
            assert_eq!(t.get(u.index(&v)), v.first == Kind::Read);
        }
        assert!(t.count_ones() > 0);
    }

    #[test]
    fn implication_is_pointwise_and_oriented() {
        let u = AtomUniverse::base();
        let stronger = TruthTable::build(&Formula::always(), &u);
        let weaker = TruthTable::build(&read_x(), &u);
        // Read(x) ⊨ True: True forces more edges, i.e. is the stronger
        // model; everything implies SC.
        assert!(weaker.implies(&stronger));
        assert!(!stronger.implies(&weaker));
        assert!(TruthTable::build(&Formula::never(), &u).implies(&weaker));
    }

    #[test]
    fn syntactic_variants_share_a_key() {
        let a = Formula::or([read_x(), Formula::fence_either()]);
        let b = Formula::or([
            Formula::fence_either(),
            Formula::and([read_x(), read_x()]),
        ]);
        assert_eq!(SemanticKey::of(&a), SemanticKey::of(&b));
        assert_eq!(
            SemanticKey::of(&a).fingerprint(),
            SemanticKey::of(&b).fingerprint()
        );
        assert_ne!(SemanticKey::of(&a), SemanticKey::of(&Formula::always()));
    }

    #[test]
    fn access_x_equals_read_or_write_x() {
        let access = Formula::atom(Atom::IsAccess(ArgPos::First));
        let split = Formula::or([
            Formula::atom(Atom::IsRead(ArgPos::First)),
            Formula::atom(Atom::IsWrite(ArgPos::First)),
        ]);
        assert_eq!(SemanticKey::of(&access), SemanticKey::of(&split));
    }

    #[test]
    fn dead_special_flavours_drop_out_of_the_key() {
        // SpecialFence3(x) ∨ True ≡ True: flavour 3 is not live.
        let dead = Formula::or([
            Formula::atom(Atom::IsSpecialFence(3, ArgPos::First)),
            Formula::always(),
        ]);
        assert_eq!(SemanticKey::of(&dead), SemanticKey::of(&Formula::always()));
        assert!(SemanticKey::of(&dead).flavours().is_empty());
        // A live flavour stays.
        let live = Formula::atom(Atom::IsSpecialFence(3, ArgPos::First));
        assert_eq!(SemanticKey::of(&live).flavours(), &[3]);
    }

    #[test]
    fn dependency_feasibility_collapses_write_guarded_deps() {
        // Write(x) ∧ DataDep is infeasible: taint originates at reads.
        let infeasible = Formula::and([
            Formula::atom(Atom::IsWrite(ArgPos::First)),
            Formula::atom(Atom::DataDep),
        ]);
        assert_eq!(
            SemanticKey::of(&infeasible),
            SemanticKey::of(&Formula::never())
        );
    }
}
