//! The feasible atom-valuation universe.
//!
//! A formula `F(x, y)` only ever sees an event pair through the atom
//! predicates: the kind of each event, address equality, and the two
//! dependency relations. A **valuation** packs exactly that view; the
//! structural constraints of real executions (derived from
//! `mcm_core::execution`) say which valuations are *feasible*:
//!
//! * `SameAddr` requires both events to be memory accesses;
//! * `DataDep(x, y)` requires `x` to be a read (register taint originates
//!   only at reads) and `y` not to be a fence (fences have no operands);
//! * `ControlDep(x, y)` requires `x` to be a read.
//!
//! Special-fence flavours need one subtlety: no atom can tell apart two
//! flavours it does not name, so the universe carries one kind per
//! *named* flavour plus a single [`Kind::OtherSpecial`] standing for
//! every unnamed flavour. Agreement over this finite universe is
//! therefore agreement over **all** executions.

use mcm_core::formula::{ArgPos, Atom, Formula};
use mcm_core::{Event, EventKind};

/// The observable kind of one event — everything a unary atom can see.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// A memory read.
    Read,
    /// A memory write.
    Write,
    /// A full fence.
    FullFence,
    /// A non-memory event (register op or dependency branch); no unary
    /// atom is true of it.
    Op,
    /// A special fence of a flavour some formula in the universe names.
    Special(u8),
    /// A special fence of a flavour no formula names; all such flavours
    /// are indistinguishable to every formula in the universe.
    OtherSpecial,
}

impl Kind {
    /// Whether the kind is a memory access.
    #[must_use]
    pub fn is_access(self) -> bool {
        matches!(self, Kind::Read | Kind::Write)
    }

    /// Whether the kind is any fence (full or special).
    #[must_use]
    pub fn is_fence(self) -> bool {
        matches!(self, Kind::FullFence | Kind::Special(_) | Kind::OtherSpecial)
    }
}

/// One feasible (or not) view of an event pair `(x, y)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Valuation {
    /// Kind of the program-order-earlier event `x`.
    pub first: Kind,
    /// Kind of the program-order-later event `y`.
    pub second: Kind,
    /// `SameAddr(x, y)`.
    pub same_addr: bool,
    /// `DataDep(x, y)`.
    pub data_dep: bool,
    /// `ControlDep(x, y)`.
    pub ctrl_dep: bool,
}

impl Valuation {
    /// Evaluates one atom on this valuation.
    #[must_use]
    pub fn eval_atom(&self, atom: Atom) -> bool {
        let pick = |pos: ArgPos| match pos {
            ArgPos::First => self.first,
            ArgPos::Second => self.second,
        };
        match atom {
            Atom::IsRead(p) => pick(p) == Kind::Read,
            Atom::IsWrite(p) => pick(p) == Kind::Write,
            Atom::IsFence(p) => pick(p) == Kind::FullFence,
            Atom::IsAccess(p) => pick(p).is_access(),
            Atom::IsSpecialFence(flavour, p) => pick(p) == Kind::Special(flavour),
            Atom::SameAddr => self.same_addr,
            Atom::DataDep => self.data_dep,
            Atom::CtrlDep => self.ctrl_dep,
        }
    }

    /// Evaluates a whole formula on this valuation.
    #[must_use]
    pub fn eval(&self, formula: &Formula) -> bool {
        match formula {
            Formula::Const(b) => *b,
            Formula::Atom(a) => self.eval_atom(*a),
            Formula::And(children) => children.iter().all(|c| self.eval(c)),
            Formula::Or(children) => children.iter().any(|c| self.eval(c)),
        }
    }
}

/// The finite valuation universe for a set of formulas: the base kinds
/// plus one [`Kind::Special`] per named flavour plus [`Kind::OtherSpecial`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomUniverse {
    kinds: Vec<Kind>,
}

/// Flag combinations per kind pair: `same_addr`, `data_dep`, `ctrl_dep`.
const FLAG_COMBOS: usize = 8;

impl AtomUniverse {
    /// The universe for formulas naming no special-fence flavours.
    #[must_use]
    pub fn base() -> Self {
        AtomUniverse::with_flavours(&[])
    }

    /// The universe whose named flavours are exactly `flavours`
    /// (deduplicated and sorted).
    #[must_use]
    pub fn with_flavours(flavours: &[u8]) -> Self {
        let mut named: Vec<u8> = flavours.to_vec();
        named.sort_unstable();
        named.dedup();
        let mut kinds = vec![Kind::Read, Kind::Write, Kind::FullFence, Kind::Op];
        kinds.extend(named.into_iter().map(Kind::Special));
        kinds.push(Kind::OtherSpecial);
        AtomUniverse { kinds }
    }

    /// The universe naming every special flavour any of `formulas`
    /// mentions — the shared universe of a sweep's model set.
    #[must_use]
    pub fn for_formulas<'a, I: IntoIterator<Item = &'a Formula>>(formulas: I) -> Self {
        let mut flavours = Vec::new();
        for formula in formulas {
            for atom in formula.atoms() {
                if let Atom::IsSpecialFence(f, _) = atom {
                    flavours.push(f);
                }
            }
        }
        AtomUniverse::with_flavours(&flavours)
    }

    /// The kinds, in code order.
    #[must_use]
    pub fn kinds(&self) -> &[Kind] {
        &self.kinds
    }

    /// The named special flavours, sorted.
    #[must_use]
    pub fn named_flavours(&self) -> Vec<u8> {
        self.kinds
            .iter()
            .filter_map(|k| match k {
                Kind::Special(f) => Some(*f),
                _ => None,
            })
            .collect()
    }

    /// The code of a kind; unnamed special flavours collapse to
    /// [`Kind::OtherSpecial`].
    #[must_use]
    pub fn code(&self, kind: Kind) -> usize {
        let effective = match kind {
            Kind::Special(f) if !self.kinds.contains(&Kind::Special(f)) => Kind::OtherSpecial,
            k => k,
        };
        self.kinds
            .iter()
            .position(|&k| k == effective)
            .expect("every kind has a code")
    }

    /// The kind an execution event maps to in this universe.
    #[must_use]
    pub fn event_kind(&self, event: &Event) -> Kind {
        match event.kind {
            EventKind::Read { .. } => Kind::Read,
            EventKind::Write { .. } => Kind::Write,
            EventKind::Fence(mcm_core::instr::FenceKind::Full) => Kind::FullFence,
            EventKind::Fence(mcm_core::instr::FenceKind::Special(f)) => {
                if self.kinds.contains(&Kind::Special(f)) {
                    Kind::Special(f)
                } else {
                    Kind::OtherSpecial
                }
            }
            EventKind::Op | EventKind::Branch => Kind::Op,
        }
    }

    /// Number of valuation slots (feasible or not).
    #[must_use]
    pub fn size(&self) -> usize {
        self.kinds.len() * self.kinds.len() * FLAG_COMBOS
    }

    /// The slot index of a valuation.
    #[must_use]
    pub fn index(&self, v: &Valuation) -> usize {
        let flags = usize::from(v.same_addr) << 2
            | usize::from(v.data_dep) << 1
            | usize::from(v.ctrl_dep);
        (self.code(v.first) * self.kinds.len() + self.code(v.second)) * FLAG_COMBOS + flags
    }

    /// The valuation of a slot index.
    #[must_use]
    pub fn valuation(&self, index: usize) -> Valuation {
        let flags = index % FLAG_COMBOS;
        let pair = index / FLAG_COMBOS;
        Valuation {
            first: self.kinds[pair / self.kinds.len()],
            second: self.kinds[pair % self.kinds.len()],
            same_addr: flags & 0b100 != 0,
            data_dep: flags & 0b010 != 0,
            ctrl_dep: flags & 0b001 != 0,
        }
    }

    /// Whether a valuation can arise from a real execution pair.
    #[must_use]
    pub fn feasible(&self, v: &Valuation) -> bool {
        (!v.same_addr || (v.first.is_access() && v.second.is_access()))
            && (!v.data_dep || (v.first == Kind::Read && !v.second.is_fence()))
            && (!v.ctrl_dep || v.first == Kind::Read)
    }

    /// Every feasible valuation, in slot order.
    pub fn feasible_valuations(&self) -> impl Iterator<Item = Valuation> + '_ {
        (0..self.size())
            .map(|i| self.valuation(i))
            .filter(|v| self.feasible(v))
    }

    /// Whether the universe names every special flavour `formula` tests —
    /// the precondition for evaluating it over this universe.
    #[must_use]
    pub fn supports(&self, formula: &Formula) -> bool {
        formula.atoms().iter().all(|atom| match atom {
            Atom::IsSpecialFence(f, _) => self.kinds.contains(&Kind::Special(*f)),
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_universe_has_128_slots() {
        let u = AtomUniverse::base();
        // Read, Write, FullFence, Op, OtherSpecial.
        assert_eq!(u.kinds().len(), 5);
        assert_eq!(u.size(), 5 * 5 * 8);
    }

    #[test]
    fn index_valuation_roundtrip() {
        let u = AtomUniverse::with_flavours(&[3, 1, 3]);
        assert_eq!(u.named_flavours(), vec![1, 3]);
        for i in 0..u.size() {
            assert_eq!(u.index(&u.valuation(i)), i);
        }
    }

    #[test]
    fn feasibility_encodes_structural_constraints() {
        let u = AtomUniverse::base();
        let v = |first, second, sa, dd, cd| Valuation {
            first,
            second,
            same_addr: sa,
            data_dep: dd,
            ctrl_dep: cd,
        };
        // SameAddr needs two accesses.
        assert!(u.feasible(&v(Kind::Read, Kind::Write, true, false, false)));
        assert!(!u.feasible(&v(Kind::FullFence, Kind::Write, true, false, false)));
        // DataDep needs a read x and a non-fence y.
        assert!(u.feasible(&v(Kind::Read, Kind::Op, false, true, false)));
        assert!(!u.feasible(&v(Kind::Write, Kind::Write, false, true, false)));
        assert!(!u.feasible(&v(Kind::Read, Kind::FullFence, false, true, false)));
        assert!(!u.feasible(&v(Kind::Read, Kind::OtherSpecial, false, true, false)));
        // CtrlDep needs a read x (any y, fences included).
        assert!(u.feasible(&v(Kind::Read, Kind::FullFence, false, false, true)));
        assert!(!u.feasible(&v(Kind::Op, Kind::Read, false, false, true)));
    }

    #[test]
    fn unnamed_flavours_collapse_to_other_special() {
        let u = AtomUniverse::with_flavours(&[2]);
        assert_eq!(u.code(Kind::Special(2)), u.kinds().len() - 2);
        assert_eq!(u.code(Kind::Special(7)), u.code(Kind::OtherSpecial));
    }

    #[test]
    fn formula_support_tracks_named_flavours() {
        use mcm_core::formula::{ArgPos, Atom, Formula};
        let special = Formula::atom(Atom::IsSpecialFence(4, ArgPos::First));
        assert!(!AtomUniverse::base().supports(&special));
        assert!(AtomUniverse::with_flavours(&[4]).supports(&special));
        assert!(AtomUniverse::base().supports(&Formula::fence_either()));
    }
}
