//! The sweep prefilter: group models that provably agree on a test.
//!
//! A checker's verdict depends on the model only through the
//! program-order edges its formula forces — and the formula sees each
//! same-thread pair only through its valuation. So per test, the set of
//! valuations realized by its po pairs (the test's **relaxation
//! signature**) is all that matters: two models whose tables agree on
//! that restriction force identical edges and share the verdict. The
//! sweep engine calls the checker once per group and fans the verdict
//! out, strengthening the `forced_po_pairs` quotient of the batched
//! checkers — the agreement is decided by one bitmask AND per model
//! instead of re-evaluating formulas over every pair.

use std::collections::HashMap;

use mcm_core::{Execution, MemoryModel};

use crate::table::TruthTable;
use crate::universe::{AtomUniverse, Valuation};

/// Precomputed per-sweep state: one truth table per model row, all in
/// one shared universe.
#[derive(Clone, Debug)]
pub struct SweepPrefilter {
    universe: AtomUniverse,
    tables: Vec<TruthTable>,
}

impl SweepPrefilter {
    /// Builds the prefilter for the (row-representative) models of a
    /// sweep.
    #[must_use]
    pub fn new(models: &[&MemoryModel]) -> Self {
        let universe = AtomUniverse::for_formulas(models.iter().map(|m| m.formula()));
        let tables = models
            .iter()
            .map(|m| TruthTable::build(m.formula(), &universe))
            .collect();
        SweepPrefilter { universe, tables }
    }

    /// Number of model rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the prefilter covers no models.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The relaxation signature of an execution: the mask of valuations
    /// realized by its same-thread program-order pairs.
    #[must_use]
    pub fn relaxation_signature(&self, exec: &Execution) -> TruthTable {
        let mut mask = TruthTable::empty(&self.universe);
        for thread in 0..exec.num_threads() {
            let events = exec.thread_events(mcm_core::ThreadId(
                u8::try_from(thread).expect("at most 255 threads"),
            ));
            for (i, &x) in events.iter().enumerate() {
                for &y in &events[i + 1..] {
                    let v = Valuation {
                        first: self.universe.event_kind(exec.event(x)),
                        second: self.universe.event_kind(exec.event(y)),
                        same_addr: match (exec.event(x).loc(), exec.event(y).loc()) {
                            (Some(a), Some(b)) => a == b,
                            _ => false,
                        },
                        data_dep: exec.data_dep(x, y),
                        ctrl_dep: exec.ctrl_dep(x, y),
                    };
                    mask.set(self.universe.index(&v));
                }
            }
        }
        mask
    }

    /// Groups the given model rows by their table restricted to the
    /// execution's relaxation signature. Rows in one group provably
    /// share the verdict; each group's first element is its
    /// representative. Groups preserve the input row order.
    #[must_use]
    pub fn group_rows(&self, exec: &Execution, rows: &[usize]) -> Vec<Vec<usize>> {
        let mask = self.relaxation_signature(exec);
        let mut order: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        for &row in rows {
            let key = self.tables[row].restrict(&mask).words().to_vec();
            match index.get(&key) {
                Some(&g) => order[g].push(row),
                None => {
                    index.insert(key, order.len());
                    order.push(vec![row]);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_models::{catalog, named, DigitModel};

    fn prefilter_for(models: &[MemoryModel]) -> SweepPrefilter {
        let refs: Vec<&MemoryModel> = models.iter().collect();
        SweepPrefilter::new(&refs)
    }

    #[test]
    fn signature_masks_only_realized_valuations() {
        let models = vec![named::sc()];
        let pf = prefilter_for(&models);
        // L1: two threads of write;write / write;read-style pairs — far
        // fewer realized valuations than the whole universe.
        let exec = catalog::l1().execution();
        let mask = pf.relaxation_signature(&exec);
        assert!(mask.count_ones() > 0);
        assert!(mask.count_ones() < 20);
    }

    #[test]
    fn models_agreeing_on_a_test_share_a_group() {
        // M1010 and M1110 differ only on same-address W→R pairs; a test
        // with none of those must put them in one group.
        let models = vec![
            "M1010".parse::<DigitModel>().unwrap().to_model(),
            "M1110".parse::<DigitModel>().unwrap().to_model(),
            named::sc(),
        ];
        let pf = prefilter_for(&models);
        // L1 (store buffering shape) has no same-address W→R po pair.
        let exec = catalog::l1().execution();
        let groups = pf.group_rows(&exec, &[0, 1, 2]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2]);
    }

    #[test]
    fn groups_preserve_row_order_and_partition() {
        let models: Vec<MemoryModel> = ["M4444", "M4044", "M1010"]
            .iter()
            .map(|s| s.parse::<DigitModel>().unwrap().to_model())
            .collect();
        let pf = prefilter_for(&models);
        let exec = catalog::test_a().execution();
        let groups = pf.group_rows(&exec, &[2, 0, 1]);
        let flattened: Vec<usize> = groups.iter().flatten().copied().collect();
        let mut sorted = flattened.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(flattened[0], 2, "first input row leads the first group");
    }
}
