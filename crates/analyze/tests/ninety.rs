//! The analyzer against the full 90-model digit space: the paper's 8
//! equivalent pairs must fall out of Theorem A with zero tests executed.

use mcm_analyze::StrengthAnalysis;
use mcm_models::DigitModel;

/// The ground truth from the paper (Mador-Haim, Alur, Martin, DAC 2011):
/// exactly these unordered pairs of the 90 models are indistinguishable
/// by litmus tests.
const EXPECTED: [(&str, &str); 8] = [
    ("M1010", "M1110"),
    ("M1011", "M1111"),
    ("M4010", "M4110"),
    ("M4011", "M4111"),
    ("M4030", "M4130"),
    ("M4031", "M4131"),
    ("M4040", "M4140"),
    ("M4041", "M4141"),
];

#[test]
fn the_paper_s_eight_pairs_fall_out_statically() {
    let models: Vec<_> = DigitModel::all().into_iter().map(|d| d.to_model()).collect();
    let analysis = StrengthAnalysis::build(&models);

    let mut pairs: Vec<(String, String, &'static str)> = analysis
        .equivalent_pairs()
        .into_iter()
        .map(|(i, j, how)| {
            (
                analysis.models[i].name.clone(),
                analysis.models[j].name.clone(),
                how,
            )
        })
        .collect();
    pairs.sort();

    let expected: Vec<(String, String, &'static str)> = EXPECTED
        .iter()
        .map(|&(a, b)| (a.to_string(), b.to_string(), "theorem-a"))
        .collect();
    assert_eq!(pairs, expected);
    assert_eq!(analysis.classes.len(), 82, "90 models, 8 merged pairs");
}

#[test]
fn sc_is_the_unique_top_of_the_ninety_model_lattice() {
    let models: Vec<_> = DigitModel::all().into_iter().map(|d| d.to_model()).collect();
    let analysis = StrengthAnalysis::build(&models);

    let tops = analysis.maximal_classes();
    assert_eq!(tops.len(), 1);
    let top = &analysis.classes[tops[0]];
    assert_eq!(top.len(), 1);
    assert_eq!(analysis.models[top[0]].name, "M4444", "M4444 is SC");

    let bottoms = analysis.minimal_classes();
    assert_eq!(bottoms.len(), 1, "the M1010 class is the unique bottom");
    assert!(analysis.classes[bottoms[0]]
        .iter()
        .any(|&m| analysis.models[m].name == "M1010"));
}
