//! Checkpoint/resume correctness for the streaming engine.
//!
//! The contract `mcm explore --stream --checkpoint/--resume` relies on:
//! for a deterministic leader stream, a sweep checkpointed after any
//! chunk and resumed from that checkpoint produces a final exploration
//! and [`SweepStats`] **bit-identical** to the uninterrupted run — the
//! resumed process replays the consumed stream prefix through the cheap
//! dedup layer only (zero checker calls for it) and continues where the
//! dead process stopped.

use std::cell::RefCell;

use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_core::MemoryModel;
use mcm_explore::{
    paper, EngineConfig, Exploration, StreamCheckpoint, StreamControl, SweepStats,
};
use mcm_gen::stream::{self, StreamBounds};

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

fn tiny_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

fn config(chunk: usize) -> EngineConfig {
    EngineConfig {
        stream_chunk: chunk,
        jobs: Some(1),
        ..EngineConfig::default()
    }
}

fn run_cold(models: Vec<MemoryModel>, chunk: usize) -> (Exploration, SweepStats) {
    Exploration::run_engine_streaming(
        models,
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
    )
}

/// Asserts two finished sweeps are bit-identical: same kept tests (names
/// included), same packed verdict words, same counters.
fn assert_identical(
    label: &str,
    a: &(Exploration, SweepStats),
    b: &(Exploration, SweepStats),
) {
    let names = |e: &Exploration| -> Vec<String> {
        e.tests.iter().map(|t| t.name().to_string()).collect()
    };
    assert_eq!(names(&a.0), names(&b.0), "{label}: kept tests diverge");
    assert_eq!(
        a.0.verdicts, b.0.verdicts,
        "{label}: verdict bit-vectors diverge"
    );
    assert_eq!(a.1, b.1, "{label}: SweepStats diverge");
}

#[test]
fn resume_from_every_chunk_is_bit_identical() {
    let models = paper::digit_space_models(false);
    let chunk = 16;
    let baseline = run_cold(models.clone(), chunk);

    // One instrumented run captures the checkpoint after every chunk.
    let checkpoints: RefCell<Vec<StreamCheckpoint>> = RefCell::new(Vec::new());
    let instrumented = Exploration::run_engine_streaming_with(
        models.clone(),
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: Some(Box::new(|state: &StreamCheckpoint| {
                checkpoints.borrow_mut().push(state.clone());
                true
            })),
            resume: None,
        },
    )
    .expect("cold instrumented run cannot fail");
    assert_identical("instrumented run", &baseline, &instrumented);
    let checkpoints = checkpoints.into_inner();
    assert!(
        checkpoints.len() >= 3,
        "expected several chunks, got {} checkpoints",
        checkpoints.len()
    );
    assert_eq!(
        checkpoints.last().unwrap().tests_streamed,
        baseline.1.tests_streamed,
        "the final checkpoint sits at the end of the stream"
    );

    // Resuming from every captured checkpoint reproduces the baseline
    // exactly.
    for (i, state) in checkpoints.into_iter().enumerate() {
        let resumed = Exploration::run_engine_streaming_with(
            models.clone(),
            stream::leaders(&tiny_bounds()),
            factory,
            &config(chunk),
            None,
            StreamControl {
                on_checkpoint: None,
                resume: Some(state),
            },
        )
        .unwrap_or_else(|e| panic!("resume from checkpoint {i} rejected: {e}"));
        assert_identical(&format!("resume from checkpoint {i}"), &baseline, &resumed);
    }
}

/// The acceptance scenario: a 90-model streamed sweep killed mid-run
/// (the checkpoint hook refusing to continue) and resumed from its last
/// checkpoint finishes with a bit-identical lattice.
#[test]
fn killed_90_model_sweep_resumes_bit_identically() {
    let models = paper::digit_space_models(true);
    assert_eq!(models.len(), 90, "the paper's digit space");
    let chunk = 32;
    let baseline = run_cold(models.clone(), chunk);

    // "Kill" the process after the third chunk: the hook stops the sweep
    // exactly as SIGTERM stops the CLI after its last completed chunk.
    let last: RefCell<Option<StreamCheckpoint>> = RefCell::new(None);
    let killed = RefCell::new(0u32);
    let _partial = Exploration::run_engine_streaming_with(
        models.clone(),
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: Some(Box::new(|state: &StreamCheckpoint| {
                *last.borrow_mut() = Some(state.clone());
                *killed.borrow_mut() += 1;
                *killed.borrow() < 3
            })),
            resume: None,
        },
    )
    .expect("the killed run itself cannot fail");
    let state = last.into_inner().expect("at least one checkpoint fired");
    assert!(
        state.tests_streamed < baseline.1.tests_streamed,
        "the kill must land mid-stream for the test to mean anything"
    );

    let resumed = Exploration::run_engine_streaming_with(
        models.clone(),
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: None,
            resume: Some(state),
        },
    )
    .expect("resume from the kill point");
    assert_identical("killed+resumed 90-model sweep", &baseline, &resumed);
}

#[test]
fn mismatched_checkpoints_are_rejected_not_misapplied() {
    let models = paper::digit_space_models(false);
    let chunk = 16;
    let last: RefCell<Option<StreamCheckpoint>> = RefCell::new(None);
    let _ = Exploration::run_engine_streaming_with(
        models.clone(),
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: Some(Box::new(|state: &StreamCheckpoint| {
                *last.borrow_mut() = Some(state.clone());
                false
            })),
            resume: None,
        },
    )
    .unwrap();
    let state = last.into_inner().unwrap();

    // Different model list → rejected.
    let err = Exploration::run_engine_streaming_with(
        models[..3].to_vec(),
        stream::leaders(&tiny_bounds()),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: None,
            resume: Some(state.clone()),
        },
    )
    .expect_err("a 3-model sweep must reject a 90-digit-space checkpoint");
    assert!(
        err.0.contains("different model list"),
        "unexpected rejection: {err}"
    );

    // Stream shorter than the cursor → rejected.
    let err = Exploration::run_engine_streaming_with(
        models,
        stream::leaders(&tiny_bounds())
            .take(state.tests_streamed as usize / 2),
        factory,
        &config(chunk),
        None,
        StreamControl {
            on_checkpoint: None,
            resume: Some(state),
        },
    )
    .expect_err("a truncated stream cannot reach the checkpoint cursor");
    assert!(
        err.0.contains("shorter than the checkpoint cursor"),
        "unexpected rejection: {err}"
    );
}
