//! The streaming sweep must be indistinguishable from the materialized
//! path: same verdict per (model, orbit), same lattice.
//!
//! The CI streaming-smoke job runs this file on tiny bounds; the
//! `streaming_sweep` bench re-asserts the same identity on larger bounds
//! before timing the two pipelines.

use std::collections::HashMap;

use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_core::MemoryModel;
use mcm_explore::{paper, EngineConfig, Exploration};
use mcm_gen::stream::{self, StreamBounds};
use mcm_gen::{canon, naive};
use proptest::prelude::*;

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

fn tiny_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

/// Sweeps the materialized raw space with canonicalization and returns
/// each model's verdict keyed by orbit fingerprint.
fn materialized_verdicts(models: &[MemoryModel]) -> Vec<HashMap<u64, bool>> {
    let raw = naive::enumerate_tests_raw(
        &naive::NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
        },
        usize::MAX,
    );
    let (expl, _) = Exploration::run_engine(
        models.to_vec(),
        raw,
        factory,
        &EngineConfig::canonicalizing(),
        None,
    );
    expl.verdicts
        .iter()
        .map(|vector| {
            expl.tests
                .iter()
                .enumerate()
                .map(|(t, test)| (canon::fingerprint(test), vector.allowed(t)))
                .collect()
        })
        .collect()
}

fn streamed(models: Vec<MemoryModel>, chunk: usize) -> (Exploration, mcm_explore::SweepStats) {
    Exploration::run_engine_streaming(
        models,
        stream::leaders(&tiny_bounds()),
        factory,
        &EngineConfig {
            stream_chunk: chunk,
            ..EngineConfig::default()
        },
        None,
    )
}

#[test]
fn streamed_lattice_equals_materialized_lattice() {
    let models = paper::digit_space_models(false);
    let materialized = materialized_verdicts(&models);
    let (stream_expl, stats) = streamed(models.clone(), 64);
    // Orbit-for-orbit: every streamed leader's verdict matches the verdict
    // of its orbit in the materialized sweep, for every model.
    assert_eq!(stream_expl.tests.len() as u64, stats.tests_streamed);
    for (m, verdicts) in materialized.iter().enumerate() {
        assert_eq!(
            verdicts.len(),
            stream_expl.tests.len(),
            "orbit counts diverge for {}",
            models[m].name()
        );
        for (t, test) in stream_expl.tests.iter().enumerate() {
            let fp = canon::fingerprint(test);
            assert_eq!(
                verdicts.get(&fp).copied(),
                Some(stream_expl.verdicts[m].allowed(t)),
                "verdict diverges for {} on {}",
                models[m].name(),
                test.name()
            );
        }
    }
    // The lattice (pairwise relations) is therefore identical too; check
    // it directly as the CI smoke assertion.
    let raw = naive::enumerate_tests_raw(
        &naive::NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
        },
        usize::MAX,
    );
    let (mat_expl, _) = Exploration::run_engine(
        models,
        raw,
        factory,
        &EngineConfig::canonicalizing(),
        None,
    );
    for i in 0..mat_expl.models.len() {
        for j in 0..mat_expl.models.len() {
            assert_eq!(
                mat_expl.relation(i, j),
                stream_expl.relation(i, j),
                "lattice relation {i},{j} diverges"
            );
        }
    }
    // Streaming in small chunks really did bound memory below the raw
    // space.
    assert!(stats.peak_batch <= 64);
}

#[test]
fn chunk_size_does_not_change_the_outcome() {
    let models = vec![
        mcm_models::named::sc(),
        mcm_models::named::tso(),
        mcm_models::named::pso(),
        mcm_models::named::rmo(),
    ];
    let (a, _) = streamed(models.clone(), 1);
    let (b, _) = streamed(models.clone(), 7);
    let (c, _) = streamed(models, usize::MAX);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.verdicts, c.verdicts);
    assert_eq!(a.tests.len(), b.tests.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn streamed_verdicts_match_materialized_for_sampled_models(
        digit in 0usize..36,
        chunk in 1usize..48,
    ) {
        let models = vec![paper::digit_space_models(false)[digit].clone()];
        let materialized = materialized_verdicts(&models);
        let (stream_expl, _) = streamed(models, chunk);
        for (t, test) in stream_expl.tests.iter().enumerate() {
            let fp = canon::fingerprint(test);
            prop_assert_eq!(
                materialized[0].get(&fp).copied(),
                Some(stream_expl.verdicts[0].allowed(t)),
                "verdict diverges on {}",
                test.name()
            );
        }
    }
}
