//! Properties of the test-major batched checking core:
//!
//! 1. **Cell agreement** — `BatchChecker::check_all` returns exactly the
//!    per-cell `Checker::check` verdicts for all 36 Figure-4 models, on
//!    sampled tests of at most 3 accesses (with fences and dependency
//!    idioms in the sample space), for both the explicit and the SAT
//!    (assumption-selected) backends;
//! 2. **Witness validity** — every batched "allowed" verdict carries a
//!    witness whose forced edges admit a partial order;
//! 3. **Restriction** — the 90-model streamed sweep, restricted to the 36
//!    dependency-free models, reproduces the Figure-4 sweep exactly, row
//!    for row.

use mcm_axiomatic::{
    BatchChecker, BatchExplicitChecker, BatchSatChecker, Checker, ExplicitChecker,
};
use mcm_core::LitmusTest;
use mcm_explore::paper;
use mcm_explore::{EngineConfig, Exploration};
use mcm_gen::stream::{leaders, StreamBounds};
use proptest::prelude::*;

/// Every orbit leader of at most 3 accesses, with fences and data
/// dependencies available to the enumeration.
fn sampled_tests() -> Vec<LitmusTest> {
    let bounds = StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
        include_deps: true,
    };
    let tests: Vec<LitmusTest> = leaders(&bounds)
        .filter(|t| t.program().access_count() <= 3)
        .collect();
    assert!(tests.len() > 100, "sample space is non-trivial");
    tests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn batch_verdicts_equal_per_cell_verdicts(index in 0usize..10_000) {
        let tests = sampled_tests();
        let test = &tests[index % tests.len()];
        let models = paper::digit_space_models(false);
        let per_cell = ExplicitChecker::new();
        let expected: Vec<bool> = models
            .iter()
            .map(|m| per_cell.check(m, test).allowed)
            .collect();
        for batch in [
            Box::new(BatchExplicitChecker::new()) as Box<dyn BatchChecker>,
            Box::new(BatchSatChecker::new()),
        ] {
            let verdicts = batch.check_all(test, &models);
            prop_assert_eq!(verdicts.len(), models.len());
            for ((model, verdict), &expected) in
                models.iter().zip(&verdicts).zip(&expected)
            {
                prop_assert_eq!(
                    verdict.allowed,
                    expected,
                    "{} disagrees with per-cell explicit on {} under {}",
                    batch.name(),
                    test.name(),
                    model.name()
                );
                prop_assert_eq!(
                    verdict.allowed,
                    verdict.witness.is_some(),
                    "allowed verdicts carry witnesses"
                );
                if let Some(witness) = &verdict.witness {
                    let exec = test.execution();
                    let edges =
                        mcm_axiomatic::hb::required_edges(model, &exec, &witness.rf, &witness.co);
                    prop_assert!(
                        edges.admits_partial_order(&exec),
                        "witness of {} on {} is not realisable",
                        batch.name(),
                        test.name()
                    );
                }
            }
        }
    }
}

#[test]
fn checker_kinds_report_their_batching_capability_honestly() {
    // `natively_batched` must track reality: a natively batched build
    // shares work across the row and therefore reports `BatchStats`; a
    // per-cell adapter reports none. (Catches drift between the
    // capability flag and `build_batch`.)
    use mcm_axiomatic::CheckerKind;
    let models = paper::digit_space_models(false);
    let test = &sampled_tests()[0];
    for kind in CheckerKind::ALL {
        let batch = kind.build_batch();
        let _ = batch.check_all(test, &models);
        assert_eq!(
            batch.batch_stats().is_some(),
            kind.natively_batched(),
            "{} capability flag disagrees with its build_batch implementation",
            kind.name()
        );
    }
}

#[test]
fn ninety_model_sweep_restricts_to_the_figure4_sweep() {
    let bounds = StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
        include_deps: true,
    };
    let config = EngineConfig::default();
    let (full, _) = Exploration::run_engine_streaming(
        paper::digit_space_models(true),
        leaders(&bounds),
        || Box::new(BatchExplicitChecker::new()),
        &config,
        None,
    );
    let (figure4, _) = Exploration::run_engine_streaming(
        paper::digit_space_models(false),
        leaders(&bounds),
        || Box::new(BatchExplicitChecker::new()),
        &config,
        None,
    );
    assert_eq!(full.models.len(), 90);
    assert_eq!(figure4.models.len(), 36);
    assert_eq!(full.tests.len(), figure4.tests.len());
    // Every Figure-4 model appears in the 90-model space under the same
    // name; its verdict row must be bit-identical.
    for (i, model) in figure4.models.iter().enumerate() {
        let j = full
            .models
            .iter()
            .position(|m| m.name() == model.name())
            .expect("the 36 dependency-free models are a subset of the 90");
        assert_eq!(
            figure4.verdicts[i], full.verdicts[j],
            "restriction differs for {}",
            model.name()
        );
    }
}
