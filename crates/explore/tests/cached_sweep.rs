//! The verdict cache must make a repeated sweep free: the second
//! `Exploration::run_engine` over the same (model space, suite) performs
//! **zero** checker invocations, and still produces identical verdicts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcm_axiomatic::{BatchChecker, Checker, ExplicitChecker, Verdict};
use mcm_core::{Execution, MemoryModel};
use mcm_explore::{cache::VerdictCache, EngineConfig, Exploration};
use mcm_models::{catalog, named};

/// An explicit checker that counts its invocations.
struct CountingChecker {
    inner: ExplicitChecker,
    calls: Arc<AtomicU64>,
}

impl Checker for CountingChecker {
    fn name(&self) -> &'static str {
        "counting-explicit"
    }

    fn check_execution(&self, model: &MemoryModel, exec: &Execution) -> Verdict {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.check_execution(model, exec)
    }
}

fn space() -> (Vec<MemoryModel>, Vec<mcm_core::LitmusTest>) {
    (
        vec![
            named::sc(),
            named::tso(),
            named::x86(),
            named::pso(),
            named::ibm370(),
            named::rmo(),
        ],
        catalog::all_tests(),
    )
}

#[test]
fn second_sweep_hits_the_cache_for_every_pair() {
    let (models, tests) = space();
    let cache = VerdictCache::new();
    let calls = Arc::new(AtomicU64::new(0));
    let factory = || {
        Box::new(CountingChecker {
            inner: ExplicitChecker::new(),
            calls: Arc::clone(&calls),
        }) as Box<dyn BatchChecker>
    };
    let config = EngineConfig::canonicalizing();

    let (first, first_stats) =
        Exploration::run_engine(models.clone(), tests.clone(), factory, &config, Some(&cache));
    let first_calls = calls.load(Ordering::Relaxed);
    assert!(first_calls > 0, "cold sweep must invoke the checker");
    assert_eq!(first_stats.checker_calls, first_calls);
    assert_eq!(first_stats.cache_hits, 0, "cold cache cannot hit");
    // The prefilter fans each group verdict out to every member, so the
    // cache holds one entry per (row, test) pair, not per checker call.
    assert_eq!(
        cache.len() as u64,
        first_stats.checker_calls + first_stats.prefilter_saved_calls
    );

    let (second, second_stats) =
        Exploration::run_engine(models, tests, factory, &config, Some(&cache));
    let second_calls = calls.load(Ordering::Relaxed) - first_calls;
    assert_eq!(
        second_stats.checker_calls, 0,
        "warm sweep must answer everything from the cache"
    );
    assert_eq!(second_calls, 0, "checker was invoked despite a warm cache");
    assert_eq!(second_stats.cache_hits, second_stats.unique_pairs);
    assert_eq!(first.verdicts, second.verdicts);
}

#[test]
fn cache_is_shared_across_different_model_subsets() {
    // TSO and x86 have identical formulas: sweeping one then the other
    // must be free, even without canonicalization.
    let tests = catalog::all_tests();
    let cache = VerdictCache::new();
    let config = EngineConfig::default();
    let factory = || Box::new(ExplicitChecker::new()) as Box<dyn BatchChecker>;

    let (_, cold) = Exploration::run_engine(
        vec![named::tso()],
        tests.clone(),
        factory,
        &config,
        Some(&cache),
    );
    assert_eq!(cold.checker_calls, tests.len() as u64);

    let (warm_expl, warm) = Exploration::run_engine(
        vec![named::x86()],
        tests.clone(),
        factory,
        &config,
        Some(&cache),
    );
    assert_eq!(warm.checker_calls, 0, "x86 shares TSO's formula");
    assert_eq!(warm.cache_hits, tests.len() as u64);

    // And the verdicts are the real TSO verdicts.
    let direct = Exploration::run(vec![named::x86()], tests, &ExplicitChecker::new());
    assert_eq!(warm_expl.verdicts, direct.verdicts);
}

#[test]
fn canonicalization_reduces_unique_pairs_on_the_paper_suite() {
    let models = vec![named::sc(), named::tso()];
    let tests = mcm_explore::paper::comparison_tests(true);
    let total = (models.len() * tests.len()) as u64;
    let (_, stats) = Exploration::run_engine(
        models,
        tests,
        || Box::new(ExplicitChecker::new()),
        &EngineConfig::canonicalizing(),
        None,
    );
    assert_eq!(stats.total_pairs, total);
    assert!(
        stats.unique_pairs < total,
        "canonicalization found no symmetric duplicates: {stats:?}"
    );
    assert!(stats.reduction_factor() > 1.0);
}
