//! Cross-layer properties: the static analyzer against the real sweep.
//!
//! The analyzer claims three things it never runs a test to establish —
//! equivalence (equal normalized tables), order (pointwise implication)
//! and normal forms (minimized DNF drop-ins). Each claim is checked here
//! against verdicts computed by the actual checkers over the complete
//! dependency template suite, which decides equivalence for the model
//! class (Theorem 1 / Corollary 1). `elision_theorem_exhaustive` covers
//! the *whole* finite domain of Theorem A, so the elision rule is
//! machine-verified, not sampled.

use mcm_analyze::{elidable, minimized_dnf, AtomUniverse, StrengthAnalysis, TruthTable};
use mcm_axiomatic::ExplicitChecker;
use mcm_core::formula::{ArgPos, Atom, Formula};
use mcm_core::MemoryModel;
use mcm_explore::space::Exploration;
use mcm_models::DigitModel;

fn ninety_models() -> Vec<MemoryModel> {
    DigitModel::all().into_iter().map(|d| d.to_model()).collect()
}

fn comparison_suite() -> Vec<mcm_core::LitmusTest> {
    mcm_explore::paper::comparison_tests(true)
}

#[test]
fn static_equivalence_matches_the_materialized_sweep() {
    let models = ninety_models();
    let analysis = StrengthAnalysis::build(&models);
    let expl = Exploration::run(models, comparison_suite(), &ExplicitChecker::new());

    let mut swept: Vec<(usize, usize)> = expl.equivalent_pairs();
    let mut claimed: Vec<(usize, usize)> = analysis
        .equivalent_pairs()
        .into_iter()
        .map(|(i, j, _)| (i, j))
        .collect();
    swept.sort_unstable();
    claimed.sort_unstable();
    assert_eq!(
        claimed, swept,
        "analyzer equivalences must coincide with sweep equivalences"
    );

    // And equivalent pairs have bit-identical verdict vectors.
    for (i, j) in claimed {
        assert_eq!(expl.verdicts[i], expl.verdicts[j]);
    }
}

#[test]
fn static_order_is_never_contradicted_by_verdicts() {
    let models = ninety_models();
    let analysis = StrengthAnalysis::build(&models);
    let expl = Exploration::run(models, comparison_suite(), &ExplicitChecker::new());

    for i in 0..analysis.models.len() {
        for j in 0..analysis.models.len() {
            if i == j {
                continue;
            }
            // i implies j statically => j is stronger-or-equal => j's
            // allowed set is a subset of i's on every suite.
            if analysis.models[i].normalized.implies(&analysis.models[j].normalized) {
                assert!(
                    expl.verdicts[j].subset_of(&expl.verdicts[i]),
                    "{} <= {} statically, but the sweep disagrees",
                    analysis.models[j].name,
                    analysis.models[i].name,
                );
            }
        }
    }
}

#[test]
fn minimized_dnf_is_a_verdict_preserving_drop_in() {
    // Mixed bag: named models and dependency-sensitive digit models.
    let originals: Vec<MemoryModel> = ["M4044", "M4144", "M1132", "M4432", "M1010"]
        .iter()
        .map(|s| s.parse::<DigitModel>().unwrap().to_model())
        .chain([
            mcm_models::named::rmo(),
            mcm_models::named::alpha(),
            mcm_models::named::sc(),
        ])
        .collect();
    let rewritten: Vec<MemoryModel> = originals
        .iter()
        .map(|m| MemoryModel::new(m.name(), minimized_dnf(m.formula())))
        .collect();

    let tests = comparison_suite();
    let a = Exploration::run(originals, tests.clone(), &ExplicitChecker::new());
    let b = Exploration::run(rewritten.clone(), tests.clone(), &ExplicitChecker::new());
    assert_eq!(a.verdicts, b.verdicts, "explicit checker must not notice");

    let sat = Exploration::run(rewritten, tests, &mcm_axiomatic::SatChecker::new());
    assert_eq!(a.verdicts, sat.verdicts, "nor the SAT checker");
}

/// One guarded-fragment formula: the free slots are the same-address
/// `R→R` dependency bits, the different-address `R→W` dependency bits and
/// the different-address `W→W` bit; `wr` selects the elidable slot.
fn guarded_formula(rr: u8, rw: u8, ww: bool, wr_ordered: bool) -> Formula {
    let same = || Formula::atom(Atom::SameAddr);
    let dep = || Formula::atom(Atom::DataDep);
    let w = Atom::IsWrite;
    let r = Atom::IsRead;
    let rr_cond = match rr {
        0b00 => Formula::never(),
        0b01 => Formula::and([same(), dep()]),
        _ => same(),
    };
    let rw_cond = match rw {
        0b00 => same(),
        0b01 => Formula::or([same(), dep()]),
        _ => Formula::always(),
    };
    let ww_cond = if ww { Formula::always() } else { same() };
    let wr_cond = if wr_ordered { same() } else { Formula::never() };
    Formula::or([
        Formula::fence_either(),
        Formula::pair(w(ArgPos::First), w(ArgPos::Second), ww_cond),
        Formula::pair(w(ArgPos::First), r(ArgPos::Second), wr_cond),
        Formula::pair(r(ArgPos::First), w(ArgPos::Second), rw_cond),
        Formula::pair(r(ArgPos::First), r(ArgPos::Second), rr_cond),
    ])
}

#[test]
fn elision_theorem_exhaustive() {
    // Theorem A's domain is finite: twelve guard-satisfying tables. For
    // every one, the formula with the same-address W→R slot ordered and
    // the one without must produce bit-identical verdicts over the
    // complete dependency template suite — which decides equivalence for
    // this class — so the theorem is verified over its whole domain.
    let universe = AtomUniverse::base();
    let suite: Vec<mcm_core::LitmusTest> =
        mcm_gen::suite::template_suite_extended(true, true).tests;
    assert!(!suite.is_empty());

    let fragment = mcm_analyze::guarded_fragment();
    assert_eq!(fragment.len(), 12);
    for (rr, rw, ww) in fragment {
        let without = guarded_formula(rr, rw, ww, false);
        let with = guarded_formula(rr, rw, ww, true);
        for f in [&without, &with] {
            assert!(
                elidable(&TruthTable::build(f, &universe), &universe),
                "fragment member (rr={rr:#04b}, rw={rw:#04b}, ww={ww}) must satisfy the guard"
            );
        }
        let models = vec![
            MemoryModel::new("e0", without),
            MemoryModel::new("e1", with),
        ];
        let expl = Exploration::run(models, suite.clone(), &ExplicitChecker::new());
        assert_eq!(
            expl.verdicts[0], expl.verdicts[1],
            "elision must be invisible for (rr={rr:#04b}, rw={rw:#04b}, ww={ww})"
        );
    }
}

#[test]
fn non_guarded_wr_elision_is_observable() {
    // The guard is not vacuous: TSO (M4044) vs IBM370 (M4144) differ in
    // exactly the same slot but fail the guard, and the suite does
    // distinguish them.
    let models = vec![
        "M4044".parse::<DigitModel>().unwrap().to_model(),
        "M4144".parse::<DigitModel>().unwrap().to_model(),
    ];
    let expl = Exploration::run(models, comparison_suite(), &ExplicitChecker::new());
    assert_ne!(expl.verdicts[0], expl.verdicts[1]);
}
