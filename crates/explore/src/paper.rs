//! One-call reproduction of the paper's §4.2 exploration.

use mcm_core::{LitmusTest, MemoryModel};
use mcm_gen::suite::template_suite;
use mcm_models::{catalog, DigitModel};

use crate::distinguish::{self, MinimalSet};
use crate::lattice::Lattice;
use crate::space::Exploration;

/// The models of the §4.2 space: all 90 digit models, or the 36
/// dependency-free ones drawn in Figure 4.
#[must_use]
pub fn digit_space_models(with_deps: bool) -> Vec<MemoryModel> {
    let digits = if with_deps {
        DigitModel::all()
    } else {
        DigitModel::all_without_dependencies()
    };
    digits
        .into_iter()
        .map(|d| {
            let model = d.to_model();
            match d.conventional_name() {
                Some(conventional) => model.renamed(format!("{} ({conventional})", d.name())),
                None => model,
            }
        })
        .collect()
}

/// The comparison suite: the Theorem 1 template suite extended with the
/// paper's own Figure 1/Figure 3 tests (which are template instances, kept
/// under their paper names so reports read like the paper).
#[must_use]
pub fn comparison_tests(with_deps: bool) -> Vec<LitmusTest> {
    let mut tests = vec![catalog::test_a()];
    tests.extend(catalog::nine_tests());
    if !with_deps {
        // The dependency-free space cannot observe dependency idioms, but
        // keeping L4/L6/L8/L9 (whose dependencies are then inert) is
        // harmless and keeps Figure 4's edge labels available.
    }
    tests.extend(template_suite(with_deps).tests);
    tests
}

/// Everything §4.2 reports, computed in one call.
#[derive(Clone, Debug)]
pub struct SpaceReport {
    /// The exploration (models × tests verdict matrix).
    pub exploration: Exploration,
    /// The Hasse diagram of model classes.
    pub lattice: Lattice,
    /// Pairs of equivalent models, by name.
    pub equivalent_pairs: Vec<(String, String)>,
    /// A minimum distinguishing set (with SAT minimality certificate).
    pub minimal_set: MinimalSet,
    /// Indices of the paper's nine tests within the suite.
    pub nine_test_indices: Vec<usize>,
    /// Whether the paper's nine tests alone distinguish every
    /// non-equivalent pair (the paper's §4.2 claim).
    pub nine_tests_sufficient: bool,
}

/// Runs the full §4.2 experiment: explore the digit space, group
/// equivalent models, build the lattice and compute distinguishing sets.
///
/// With `with_deps = true` this is the 90-model exploration (expect **8
/// equivalent pairs**); with `false`, the 36-model space of Figure 4.
#[must_use]
pub fn explore_digit_space(with_deps: bool) -> SpaceReport {
    let models = digit_space_models(with_deps);
    let tests = comparison_tests(with_deps);
    let exploration = Exploration::run_parallel(models, tests);
    report_from(exploration)
}

/// Builds a [`SpaceReport`] from an existing exploration (exposed so the
/// CLI can reuse a sequential or custom-checker run).
#[must_use]
pub fn report_from(exploration: Exploration) -> SpaceReport {
    let lattice = Lattice::build(&exploration);
    let equivalent_pairs = exploration
        .equivalent_pairs()
        .into_iter()
        .map(|(i, j)| {
            (
                exploration.models[i].name().to_string(),
                exploration.models[j].name().to_string(),
            )
        })
        .collect();
    let minimal_set = distinguish::minimal_distinguishing_set(&exploration);
    let nine_test_indices: Vec<usize> = ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"]
        .iter()
        .filter_map(|name| exploration.tests.iter().position(|t| t.name() == *name))
        .collect();
    let nine_tests_sufficient =
        distinguish::is_sufficient(&exploration, &nine_test_indices);
    SpaceReport {
        exploration,
        lattice,
        equivalent_pairs,
        minimal_set,
        nine_test_indices,
        nine_tests_sufficient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_space_sizes() {
        assert_eq!(digit_space_models(true).len(), 90);
        assert_eq!(digit_space_models(false).len(), 36);
    }

    #[test]
    fn comparison_suite_contains_the_paper_tests() {
        let tests = comparison_tests(true);
        for name in ["TestA", "L1", "L5", "L9"] {
            assert!(tests.iter().any(|t| t.name() == name), "missing {name}");
        }
        // No more than Corollary 1's bound plus the ten catalog tests.
        assert!(tests.len() as u64 <= 230 + 10);
    }
}
