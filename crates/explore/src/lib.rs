//! # mcm-explore
//!
//! Exploring and comparing memory models (§4.2):
//!
//! * [`verdict`] — per-model verdict vectors over a suite and the
//!   equivalent / stronger / weaker / incomparable classification;
//! * [`space`] — the sweep engine: running a model space against a suite
//!   sequentially, or work-stealing across cores with symmetry
//!   canonicalization and verdict memoization;
//! * [`cache`] — the fingerprint-keyed verdict cache shared across
//!   sweeps;
//! * [`lattice`] — equivalence classes and the transitively reduced
//!   strictly-weaker order (the Figure 4 Hasse diagram);
//! * [`distinguish`] — greedy and SAT-certified minimum distinguishing
//!   test sets (the paper's nine tests);
//! * [`dot`] — Graphviz rendering of Figure 4;
//! * [`paper`] — the whole §4.2 experiment in one call.
//!
//! ## Example
//!
//! ```
//! use mcm_axiomatic::ExplicitChecker;
//! use mcm_explore::space::Exploration;
//! use mcm_explore::verdict::Relation;
//! use mcm_models::{catalog, named};
//!
//! let expl = Exploration::run(
//!     vec![named::sc(), named::tso(), named::x86()],
//!     catalog::all_tests(),
//!     &ExplicitChecker::new(),
//! );
//! assert_eq!(expl.relation(1, 2), Relation::Equivalent); // TSO ≡ x86
//! assert_eq!(expl.relation(0, 1), Relation::StrictlyStronger); // SC ⊊ TSO
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod distinguish;
pub mod dot;
pub mod lattice;
pub mod paper;
pub mod report;
pub mod space;
pub mod verdict;

pub use cache::{DurableSink, RowLookup, VerdictCache};
pub use lattice::{Lattice, LatticeEdge, ModelClass};
pub use space::{
    EngineConfig, Exploration, ResumeError, StreamCheckpoint, StreamControl, SweepStats,
};
pub use verdict::{Relation, VerdictVector};
