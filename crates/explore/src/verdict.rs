//! Per-model verdict vectors over a test suite.

use std::fmt;

/// The verdicts of one memory model over an ordered suite of litmus tests:
/// bit `i` set means test `i`'s outcome is **allowed**.
///
/// A model is a set of allowed executions (§2.1), so over a fixed suite
/// the vector is a finite fingerprint: `M1 ⊆ M2` restricted to the suite
/// is pointwise bit implication, and Theorem 1 guarantees the suite is
/// rich enough for the fingerprint to decide equality exactly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VerdictVector {
    bits: Vec<u64>,
    len: usize,
}

impl VerdictVector {
    /// An all-forbidden vector over `len` tests.
    #[must_use]
    pub fn new(len: usize) -> Self {
        VerdictVector {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the suite is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the verdict of a new test, growing the suite by one.
    ///
    /// The streaming sweep discovers its suite incrementally (one batch of
    /// orbit leaders at a time), so its verdict vectors grow as tests
    /// arrive instead of being sized up front.
    pub fn push(&mut self, allowed: bool) {
        let i = self.len;
        if self.bits.len() * 64 == i {
            self.bits.push(0);
        }
        self.len += 1;
        self.set(i, allowed);
    }

    /// Sets the verdict of test `i`.
    pub fn set(&mut self, i: usize, allowed: bool) {
        assert!(i < self.len, "test index out of range");
        if allowed {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// The verdict of test `i`.
    #[must_use]
    pub fn allowed(&self, i: usize) -> bool {
        assert!(i < self.len, "test index out of range");
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of allowed tests.
    #[must_use]
    pub fn count_allowed(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Pointwise implication: everything this model allows, `other` allows
    /// too. Because weaker models allow more executions, `self.subset_of
    /// (other)` means *self is the stronger (or equal) model* — it
    /// corresponds to the paper's `M_self ⊆ M_other`.
    #[must_use]
    pub fn subset_of(&self, other: &VerdictVector) -> bool {
        assert_eq!(self.len, other.len, "vectors over different suites");
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| a & !b == 0)
    }

    /// The packed 64-bit words backing the vector (bit `i` of word
    /// `i / 64` is test `i`), exposed so checkpoint serializers can
    /// persist the vector without re-walking every bit.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a vector from its packed words and length (the inverse of
    /// [`VerdictVector::words`]). Returns `None` when the word count does
    /// not match the length or padding bits beyond `len` are set —
    /// corrupt checkpoints are rejected instead of resurfacing as wrong
    /// verdicts.
    #[must_use]
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(VerdictVector { bits: words, len })
    }

    /// Indices where the two vectors disagree.
    #[must_use]
    pub fn diff_indices(&self, other: &VerdictVector) -> Vec<usize> {
        assert_eq!(self.len, other.len, "vectors over different suites");
        let mut out = Vec::new();
        for (w, (a, b)) in self.bits.iter().zip(&other.bits).enumerate() {
            let mut mask = a ^ b;
            while mask != 0 {
                let bit = mask.trailing_zeros() as usize;
                let idx = w * 64 + bit;
                if idx < self.len {
                    out.push(idx);
                }
                mask &= mask - 1;
            }
        }
        out
    }
}

impl fmt::Display for VerdictVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.allowed(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// How two models relate over a suite (and, by Theorem 1, in general when
/// the suite is a complete template suite).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// Identical verdicts: equivalent models.
    Equivalent,
    /// The left model allows strictly fewer outcomes (is strictly
    /// stronger): `M_left ⊊ M_right`.
    StrictlyStronger,
    /// The left model allows strictly more outcomes (is strictly weaker).
    StrictlyWeaker,
    /// Each model allows an outcome the other forbids.
    Incomparable,
}

impl Relation {
    /// Classifies two verdict vectors.
    #[must_use]
    pub fn classify(left: &VerdictVector, right: &VerdictVector) -> Relation {
        match (left.subset_of(right), right.subset_of(left)) {
            (true, true) => Relation::Equivalent,
            (true, false) => Relation::StrictlyStronger,
            (false, true) => Relation::StrictlyWeaker,
            (false, false) => Relation::Incomparable,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Equivalent => write!(f, "equivalent"),
            Relation::StrictlyStronger => write!(f, "strictly stronger"),
            Relation::StrictlyWeaker => write!(f, "strictly weaker"),
            Relation::Incomparable => write!(f, "incomparable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(bits: &[bool]) -> VerdictVector {
        let mut v = VerdictVector::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    #[test]
    fn push_grows_across_word_boundaries() {
        let mut grown = VerdictVector::new(0);
        let mut preset = VerdictVector::new(130);
        for i in 0..130 {
            let allowed = i % 3 == 0;
            grown.push(allowed);
            preset.set(i, allowed);
        }
        assert_eq!(grown, preset);
        assert_eq!(grown.len(), 130);
        // Pushing onto a pre-sized vector continues where it left off.
        preset.push(true);
        assert_eq!(preset.len(), 131);
        assert!(preset.allowed(130));
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = VerdictVector::new(130);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.allowed(0) && v.allowed(63) && v.allowed(64) && v.allowed(129));
        assert!(!v.allowed(1) && !v.allowed(65));
        assert_eq!(v.count_allowed(), 4);
        v.set(64, false);
        assert!(!v.allowed(64));
    }

    #[test]
    fn words_roundtrip_and_reject_corruption() {
        let mut v = VerdictVector::new(0);
        for i in 0..130 {
            v.push(i % 5 == 0);
        }
        let rebuilt = VerdictVector::from_words(v.words().to_vec(), v.len()).unwrap();
        assert_eq!(rebuilt, v);
        // Wrong word count and dirty padding bits are both rejected.
        assert!(VerdictVector::from_words(vec![0; 3], 70).is_none());
        assert!(VerdictVector::from_words(vec![u64::MAX], 3).is_none());
        assert!(VerdictVector::from_words(Vec::new(), 0).is_some());
    }

    #[test]
    fn classification() {
        let a = vector(&[true, false, true]);
        let b = vector(&[true, true, true]);
        let c = vector(&[false, true, false]);
        assert_eq!(Relation::classify(&a, &a), Relation::Equivalent);
        assert_eq!(Relation::classify(&a, &b), Relation::StrictlyStronger);
        assert_eq!(Relation::classify(&b, &a), Relation::StrictlyWeaker);
        assert_eq!(Relation::classify(&a, &c), Relation::Incomparable);
    }

    #[test]
    fn diff_indices_are_exact() {
        let a = vector(&[true, false, true, false]);
        let b = vector(&[true, true, false, false]);
        assert_eq!(a.diff_indices(&b), vec![1, 2]);
        assert_eq!(a.diff_indices(&a), Vec::<usize>::new());
    }

    #[test]
    fn display_is_bitstring() {
        assert_eq!(vector(&[true, false, true]).to_string(), "101");
    }
}
