//! The strictly-weaker lattice of model classes (Figure 4).

use crate::space::Exploration;
use crate::verdict::{Relation, VerdictVector};

/// One node of the lattice: a class of equivalent models.
#[derive(Clone, Debug)]
pub struct ModelClass {
    /// Indices into [`Exploration::models`] of the members.
    pub members: Vec<usize>,
    /// The shared verdict vector.
    pub verdicts: VerdictVector,
}

/// A covering edge `weaker → stronger` (the Figure 4 arrow direction).
#[derive(Clone, Debug)]
pub struct LatticeEdge {
    /// Index of the weaker class (allows strictly more outcomes).
    pub weaker: usize,
    /// Index of the stronger class.
    pub stronger: usize,
    /// Tests distinguishing the two classes (allowed by `weaker`,
    /// forbidden by `stronger`), as indices into [`Exploration::tests`].
    pub distinguishing: Vec<usize>,
}

/// The Hasse diagram of the strictly-weaker order on model classes.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// The equivalence classes (nodes).
    pub classes: Vec<ModelClass>,
    /// The covering edges, transitively reduced.
    pub edges: Vec<LatticeEdge>,
}

impl Lattice {
    /// Builds the lattice from an exploration.
    #[must_use]
    pub fn build(exploration: &Exploration) -> Self {
        let classes: Vec<ModelClass> = exploration
            .equivalence_classes()
            .into_iter()
            .map(|members| ModelClass {
                verdicts: exploration.verdicts[members[0]].clone(),
                members,
            })
            .collect();
        let n = classes.len();
        // strictly_weaker[a][b]: class a allows strictly more than b.
        let weaker = |a: usize, b: usize| {
            Relation::classify(&classes[a].verdicts, &classes[b].verdicts)
                == Relation::StrictlyWeaker
        };
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b || !weaker(a, b) {
                    continue;
                }
                // Transitive reduction: keep a → b only if no c sits
                // strictly between them.
                let covered = (0..n)
                    .any(|c| c != a && c != b && weaker(a, c) && weaker(c, b));
                if !covered {
                    edges.push(LatticeEdge {
                        weaker: a,
                        stronger: b,
                        distinguishing: classes[a]
                            .verdicts
                            .diff_indices(&classes[b].verdicts),
                    });
                }
            }
        }
        Lattice { classes, edges }
    }

    /// Indices of the weakest classes: no other class is strictly weaker.
    /// A class with something weaker below it is the `stronger` end of
    /// some covering edge, so weakest = never a `stronger` endpoint.
    #[must_use]
    pub fn minimal_classes(&self) -> Vec<usize> {
        let mut excluded = vec![false; self.classes.len()];
        for edge in &self.edges {
            excluded[edge.stronger] = true;
        }
        (0..self.classes.len()).filter(|&i| !excluded[i]).collect()
    }

    /// Indices of the strongest classes: never a `weaker` endpoint.
    #[must_use]
    pub fn maximal_classes(&self) -> Vec<usize> {
        let mut excluded = vec![false; self.classes.len()];
        for edge in &self.edges {
            excluded[edge.weaker] = true;
        }
        (0..self.classes.len()).filter(|&i| !excluded[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_axiomatic::ExplicitChecker;
    use mcm_models::{catalog, named};

    fn lattice_of(models: Vec<mcm_core::MemoryModel>) -> (Exploration, Lattice) {
        let tests = catalog::all_tests();
        let expl = Exploration::run(models, tests, &ExplicitChecker::new());
        let lattice = Lattice::build(&expl);
        (expl, lattice)
    }

    #[test]
    fn chain_sc_tso_pso_is_a_path() {
        let (_, lattice) = lattice_of(vec![named::sc(), named::tso(), named::pso()]);
        assert_eq!(lattice.classes.len(), 3);
        // PSO → TSO → SC: two covering edges, no direct PSO → SC edge.
        assert_eq!(lattice.edges.len(), 2);
        for edge in &lattice.edges {
            assert!(!edge.distinguishing.is_empty());
        }
        assert_eq!(lattice.maximal_classes().len(), 1); // SC on top
        assert_eq!(lattice.minimal_classes().len(), 1); // PSO at bottom
    }

    #[test]
    fn equivalent_models_share_a_node() {
        let (_, lattice) = lattice_of(vec![named::tso(), named::x86(), named::sc()]);
        assert_eq!(lattice.classes.len(), 2);
        let tso_class = lattice
            .classes
            .iter()
            .find(|c| c.members.len() == 2)
            .expect("TSO and x86 merge");
        assert_eq!(tso_class.members, vec![0, 1]);
    }

    #[test]
    fn incomparable_models_have_no_edge() {
        // IBM370 (orders same-address W→R but not W→R in general … ) vs
        // PSO: IBM370 forbids Test A but allows L1? No — construct with
        // pso and ibm370 which are incomparable: PSO allows L1/L9,
        // IBM370 forbids them; IBM370 allows nothing PSO forbids? IBM370
        // allows L7 which PSO also allows… use RMO-nodep vs SC plus the
        // genuinely incomparable pair (IBM370, PSO).
        let (expl, lattice) = lattice_of(vec![named::ibm370(), named::pso()]);
        match expl.relation(0, 1) {
            crate::verdict::Relation::Incomparable => {
                assert!(lattice.edges.is_empty());
            }
            other => {
                // If the catalog suite cannot separate them in both
                // directions the lattice must still be consistent.
                assert!(lattice.edges.len() <= 1, "relation was {other}");
            }
        }
    }
}
