//! Exploring a space of memory models over a litmus suite (§4.2).
//!
//! Four entry points, in increasing order of machinery:
//!
//! * [`Exploration::run`] — sequential, any [`Checker`], no deduplication;
//! * [`Exploration::run_parallel`] — the explicit checker fanned out over
//!   all cores (a thin wrapper over the engine with default settings);
//! * [`Exploration::run_engine`] — the materialized sweep engine:
//!   optional symmetry canonicalization (checking one representative per
//!   orbit), optional cross-sweep verdict memoization through a
//!   [`VerdictCache`], and a work-stealing parallel schedule. Since the
//!   streaming engine landed this is a thin front-end: it runs the same
//!   layers, pushes the deduplicated suite through the shared
//!   `sweep_grid` core in one batch, and expands the verdicts back to
//!   the input order.
//! * [`Exploration::run_engine_streaming`] — the bounded-memory sweep:
//!   consumes **any** test iterator (typically
//!   `mcm_gen::stream::leaders`, which yields one canonical
//!   representative per symmetry orbit without materialising the raw
//!   space) in fixed-size chunks, runs each chunk through the same
//!   formula-dedup + cache + work-stealing layers, and grows the verdict
//!   vectors incrementally. Peak memory is one chunk of tests plus the
//!   verdict bits, never the whole space.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use mcm_analyze::SweepPrefilter;
use mcm_axiomatic::{BatchChecker, BatchExplicitChecker, BatchStats, Checker};
use mcm_core::{Execution, LitmusTest, MemoryModel};
use mcm_gen::canon;
use mcm_sat::SolverStats;

use crate::cache::VerdictCache;
use crate::verdict::{Relation, VerdictVector};

/// Tuning knobs for [`Exploration::run_engine`] and
/// [`Exploration::run_engine_streaming`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Collapse the suite to canonical symmetry-orbit representatives
    /// before checking (verdict-preserving, see [`mcm_gen::canon`]). The
    /// streaming engine applies this per chunk (plus a cross-chunk
    /// fingerprint set), so feeding it an already-canonical leader stream
    /// makes this a no-op.
    pub canonicalize: bool,
    /// Worker threads; `None` uses all available cores, `Some(1)` runs
    /// the whole sweep on the calling thread.
    pub jobs: Option<usize>,
    /// Work items — **test rows**, each checked against every model at
    /// once — claimed per scheduling step. Small batches steal well when
    /// per-row cost is uneven; large batches lower contention.
    pub batch_size: usize,
    /// Tests materialized per chunk by the streaming engine — the memory
    /// high-water mark of a streamed sweep.
    pub stream_chunk: usize,
    /// Group models that provably agree on a test before calling the
    /// checker ([`mcm_analyze::SweepPrefilter`]): per test, models whose
    /// truth tables coincide on the valuations its program-order pairs
    /// realize force identical edges, so one group representative is
    /// checked and the verdict fanned out. Sound unconditionally; the
    /// skipped calls are counted in [`SweepStats::prefilter_saved_calls`].
    pub prefilter: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            canonicalize: false,
            jobs: None,
            batch_size: 4,
            stream_chunk: 4096,
            prefilter: true,
        }
    }
}

impl EngineConfig {
    /// Canonicalization on, all cores — the configuration the CLI uses
    /// when `--canonicalize` is passed.
    #[must_use]
    pub fn canonicalizing() -> Self {
        EngineConfig {
            canonicalize: true,
            ..EngineConfig::default()
        }
    }
}

/// What a sweep actually did, layer by layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// `models × tests`: the naive cost before any engine layer.
    pub total_pairs: u64,
    /// Work items after formula dedup and canonicalization:
    /// `distinct formulas × orbit representatives`.
    pub unique_pairs: u64,
    /// Verdicts answered by the [`VerdictCache`] instead of a checker,
    /// both tiers.
    pub cache_hits: u64,
    /// The subset of [`SweepStats::cache_hits`] answered by entries
    /// hydrated from a durable store (disk tier) rather than computed
    /// earlier in this process.
    pub cache_hits_disk: u64,
    /// Actual checker invocations (`unique_pairs - cache_hits`).
    pub checker_calls: u64,
    /// Orbit representatives actually checked.
    pub canonical_tests: usize,
    /// Distinct must-not-reorder formulas actually checked.
    pub distinct_models: usize,
    /// Tests pulled from the input suite or stream (equals the input
    /// length for materialized sweeps).
    pub tests_streamed: u64,
    /// Largest number of input tests materialized at once: one chunk for
    /// the streaming engine, the whole deduplicated suite otherwise.
    pub peak_batch: usize,
    /// Models merged into a shared verdict row *beyond* syntactic formula
    /// equality — semantically identical formulas spelled differently,
    /// found by the analyzer's truth-table key.
    pub semantic_merged_models: usize,
    /// Model groups the sweep prefilter formed across all checked tests
    /// (each group costs one checker call).
    pub prefilter_groups: u64,
    /// Checker calls the prefilter proved unnecessary: group members
    /// beyond the representative, answered by fan-out.
    pub prefilter_saved_calls: u64,
    /// SAT-solver work totals, summed over every worker's checker. All
    /// zeros when the sweep ran a solver-free checker (the explicit one).
    pub sat: SolverStats,
    /// Per-row amortization counters from the batched checkers: rows
    /// answered, model-group collapses, shared candidate executions and
    /// assumption-selected solves. All zeros when the sweep ran a
    /// per-cell adapter (which shares nothing across a row).
    pub batch: BatchStats,
}

impl SweepStats {
    /// `total_pairs / checker_calls`: the end-to-end work reduction
    /// delivered by dedup plus memoization (∞-free: 0 calls reports the
    /// reduction against 1).
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        self.total_pairs as f64 / (self.checker_calls.max(1)) as f64
    }

    /// The scalar counters as stable `(name, value)` pairs — the
    /// structured view serializable reports render from (the nested
    /// [`SweepStats::sat`] and [`SweepStats::batch`] groups have
    /// `counters()` views of their own).
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("total_pairs", self.total_pairs),
            ("unique_pairs", self.unique_pairs),
            ("cache_hits", self.cache_hits),
            ("cache_hits_disk", self.cache_hits_disk),
            ("checker_calls", self.checker_calls),
            ("canonical_tests", self.canonical_tests as u64),
            ("distinct_models", self.distinct_models as u64),
            ("tests_streamed", self.tests_streamed),
            ("peak_batch", self.peak_batch as u64),
            ("semantic_merged_models", self.semantic_merged_models as u64),
            ("prefilter_groups", self.prefilter_groups),
            ("prefilter_saved_calls", self.prefilter_saved_calls),
        ]
    }
}

/// Resumable state of a streaming sweep, captured at a chunk boundary.
///
/// Everything [`Exploration::run_engine_streaming_with`] needs to pick a
/// sweep back up where a previous process left off: how far into the
/// (deterministic) test stream it got, the verdict rows grown so far, and
/// the accumulated counters. The kept tests themselves are *not* stored —
/// on resume the engine replays the consumed prefix of the stream through
/// the (cheap) dedup layer only, re-deriving them without a single
/// checker call. `mcm-store`'s `checkpoint` module serializes this to
/// disk.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamCheckpoint {
    /// Tests consumed from the input iterator so far.
    pub tests_streamed: u64,
    /// Tests kept after dedup — the length of every verdict row.
    pub tests_kept: u64,
    /// Distinct-formula row fingerprints, in row order. Resume validates
    /// these against the new run's model list: a checkpoint taken over
    /// different models is rejected, not silently misapplied.
    pub model_fps: Vec<u64>,
    /// Per-row verdict vectors over the kept tests (row order matches
    /// [`StreamCheckpoint::model_fps`]).
    pub row_verdicts: Vec<VerdictVector>,
    /// Engine counters accumulated up to the checkpoint.
    pub stats: SweepStats,
}

/// Why a [`StreamCheckpoint`] could not be applied to a resumed sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeError(pub String);

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot resume sweep: {}", self.0)
    }
}

impl std::error::Error for ResumeError {}

/// Per-chunk control of a streaming sweep: checkpoint capture and resume.
///
/// The default value changes nothing — no checkpoints are taken and the
/// sweep starts cold, exactly like [`Exploration::run_engine_streaming`].
#[derive(Default)]
pub struct StreamControl<'a> {
    /// Called after every processed chunk with the current resumable
    /// state. Returning `false` stops the sweep early — the engine
    /// returns the partial exploration built so far; tests and kill/
    /// resume demos use this to bound work deterministically.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<Box<dyn FnMut(&StreamCheckpoint) -> bool + 'a>>,
    /// Resume from this state instead of starting cold.
    pub resume: Option<StreamCheckpoint>,
}

/// The result of checking every model against every test.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The models, in input order.
    pub models: Vec<MemoryModel>,
    /// The tests, in input order.
    pub tests: Vec<LitmusTest>,
    /// `verdicts[m]` is model `m`'s vector over `tests`.
    pub verdicts: Vec<VerdictVector>,
}

/// Layer 1 of every engine sweep: models with *semantically* identical
/// must-not-reorder formulas share a verdict row. Identity is the
/// analyzer's truth-table key ([`mcm_analyze::SemanticKey`]), which
/// subsumes structural equality — `Access(x)` and `Read(x) ∨ Write(x)`
/// share a row even though the formulas differ syntactically.
struct FormulaRows {
    /// Model index -> row index.
    row_of: Vec<usize>,
    /// Row index -> first model index with that formula.
    row_models: Vec<usize>,
    /// Cache fingerprints, parallel to `row_models`.
    model_fps: Vec<u64>,
    /// Models merged beyond what syntactic formula equality finds.
    semantic_merged: usize,
}

fn formula_rows(models: &[MemoryModel]) -> FormulaRows {
    let mut row_of: Vec<usize> = Vec::with_capacity(models.len());
    let mut row_models: Vec<usize> = Vec::new();
    let mut keys: Vec<mcm_analyze::SemanticKey> = Vec::new();
    let mut syntactic_rows = 0usize;
    for (m, model) in models.iter().enumerate() {
        if !models[..m]
            .iter()
            .any(|prior| prior.formula() == model.formula())
        {
            syntactic_rows += 1;
        }
        let key = mcm_analyze::semantic_key(model.formula());
        match keys.iter().position(|k| *k == key) {
            Some(r) => row_of.push(r),
            None => {
                row_of.push(row_models.len());
                row_models.push(m);
                keys.push(key);
            }
        }
    }
    let model_fps = row_models
        .iter()
        .map(|&m| VerdictCache::model_fingerprint(&models[m]))
        .collect();
    FormulaRows {
        semantic_merged: syntactic_rows - row_models.len(),
        row_of,
        row_models,
        model_fps,
    }
}

/// Builds the sweep prefilter for the distinct-formula rows, when the
/// config asks for one and there is anything to group.
fn build_prefilter(
    models: &[MemoryModel],
    rows: &FormulaRows,
    config: &EngineConfig,
) -> Option<SweepPrefilter> {
    if !config.prefilter || rows.row_models.len() < 2 {
        return None;
    }
    let _span = mcm_obs::trace::span("engine.prefilter");
    let refs: Vec<&MemoryModel> = rows.row_models.iter().map(|&m| &models[m]).collect();
    Some(SweepPrefilter::new(&refs))
}

fn resolve_jobs(config: &EngineConfig) -> usize {
    config
        .jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// The model side of a sweep, fixed across every chunk: the full model
/// list, its distinct-formula rows, and the optional prefilter over them.
struct ModelSide<'a> {
    models: &'a [MemoryModel],
    rows: &'a FormulaRows,
    prefilter: Option<&'a SweepPrefilter>,
}

/// What one `sweep_grid` call produced: the row-major allowed bits plus
/// the layer counters the engines fold into [`SweepStats`].
struct GridOutcome {
    /// `bits[row * execs.len() + rep]`: is the outcome allowed?
    bits: Vec<bool>,
    cache_hits: u64,
    cache_hits_disk: u64,
    checker_calls: u64,
    prefilter_groups: u64,
    prefilter_saved_calls: u64,
    sat: SolverStats,
    batch: BatchStats,
}

/// The shared sweep core, test-major: the unit of parallel work is a
/// **test row** — one execution checked against every distinct-formula
/// model at once through a [`BatchChecker`] — scheduled work-stealing
/// across workers. Cache lookups are row-keyed ([`VerdictCache::get_row`]
/// takes each shard lock once per row) and only the missing models of a
/// row reach the checker; with a [`SweepPrefilter`] those are further
/// grouped into provably-agreeing sets, so the checker sees one
/// representative per group and the verdict fans out (and is cached once
/// per member). Warm rows cost no checker work and cold rows amortize
/// candidate enumeration / encoding across the whole model space.
fn sweep_grid<F>(
    side: &ModelSide<'_>,
    execs: &[Execution],
    fps: &[u64],
    make_checker: &F,
    config: &EngineConfig,
    cache: Option<&VerdictCache>,
) -> GridOutcome
where
    F: Fn() -> Box<dyn BatchChecker> + Sync,
{
    let ModelSide {
        models,
        rows,
        prefilter,
    } = *side;
    let _span = mcm_obs::trace::span_with(
        "engine.grid",
        &[
            ("tests", &execs.len().to_string()),
            ("rows", &rows.row_models.len().to_string()),
        ],
    );
    let jobs = resolve_jobs(config);
    let reps = execs.len();
    let row_count = rows.row_models.len();
    let batch = config.batch_size.max(1);
    let workers = jobs.min(reps.div_ceil(batch)).max(1);

    // The distinct-formula models, cloned once per sweep so the (common)
    // all-miss rows check against a ready-made slice.
    let row_models: Vec<MemoryModel> = rows
        .row_models
        .iter()
        .map(|&m| models[m].clone())
        .collect();

    // Shared state: a claim cursor over test rows, one result cell per
    // (row, test) pair (0 = unset, 1 = forbidden, 2 = allowed), counters.
    let cursor = AtomicUsize::new(0);
    let results: Vec<AtomicU8> = (0..row_count * reps).map(|_| AtomicU8::new(0)).collect();
    let cache_hits = AtomicU64::new(0);
    let cache_hits_disk = AtomicU64::new(0);
    let checker_calls = AtomicU64::new(0);
    let prefilter_groups = AtomicU64::new(0);
    let prefilter_saved = AtomicU64::new(0);

    let sweep = |local_batch: &mut Vec<((u64, u64), bool)>, checker: &dyn BatchChecker| {
        let mut hits = 0u64;
        let mut disk_hits = 0u64;
        let mut calls = 0u64;
        let mut groups_formed = 0u64;
        let mut saved = 0u64;
        let mut missing_rows: Vec<usize> = Vec::new();
        let mut missing_models: Vec<MemoryModel> = Vec::new();
        loop {
            let start = cursor.fetch_add(batch, Ordering::Relaxed);
            if start >= reps {
                break;
            }
            let end = (start + batch).min(reps);
            for rep in start..end {
                missing_rows.clear();
                match cache {
                    Some(cache) => {
                        let lookup = cache.get_row_tiered(&rows.model_fps, fps[rep]);
                        hits += lookup.hits_ram + lookup.hits_disk;
                        disk_hits += lookup.hits_disk;
                        for (row, memoized) in lookup.verdicts.into_iter().enumerate() {
                            match memoized {
                                Some(allowed) => {
                                    results[row * reps + rep]
                                        .store(if allowed { 2 } else { 1 }, Ordering::Relaxed);
                                }
                                None => missing_rows.push(row),
                            }
                        }
                    }
                    None => missing_rows.extend(0..row_count),
                }
                if missing_rows.is_empty() {
                    continue;
                }
                // Layer 3: group rows whose formulas provably agree on
                // this test; only group representatives reach the checker.
                let groups: Vec<Vec<usize>> = match prefilter {
                    Some(pf) if missing_rows.len() > 1 => pf.group_rows(&execs[rep], &missing_rows),
                    _ => missing_rows.iter().map(|&r| vec![r]).collect(),
                };
                if prefilter.is_some() {
                    groups_formed += groups.len() as u64;
                    saved += (missing_rows.len() - groups.len()) as u64;
                }
                calls += groups.len() as u64;
                let verdicts = if groups.len() == row_count {
                    checker.check_all_executions(&execs[rep], &row_models)
                } else {
                    // Partial coverage: batch only the representatives
                    // (cloned — rare next to all-hit / all-miss).
                    missing_models.clear();
                    missing_models.extend(groups.iter().map(|g| row_models[g[0]].clone()));
                    checker.check_all_executions(&execs[rep], &missing_models)
                };
                for (group, verdict) in groups.iter().zip(&verdicts) {
                    for &row in group {
                        results[row * reps + rep]
                            .store(if verdict.allowed { 2 } else { 1 }, Ordering::Relaxed);
                        if cache.is_some() {
                            local_batch.push(((rows.model_fps[row], fps[rep]), verdict.allowed));
                        }
                    }
                }
            }
        }
        cache_hits.fetch_add(hits, Ordering::Relaxed);
        cache_hits_disk.fetch_add(disk_hits, Ordering::Relaxed);
        checker_calls.fetch_add(calls, Ordering::Relaxed);
        prefilter_groups.fetch_add(groups_formed, Ordering::Relaxed);
        prefilter_saved.fetch_add(saved, Ordering::Relaxed);
    };

    let mut sat = SolverStats::default();
    let mut amortized = BatchStats::default();
    if workers <= 1 {
        let checker = make_checker();
        let mut local = Vec::new();
        sweep(&mut local, checker.as_ref());
        if let Some(cache) = cache {
            cache.merge(local);
        }
        if let Some(stats) = checker.solver_stats() {
            sat.absorb(stats);
        }
        if let Some(stats) = checker.batch_stats() {
            amortized.absorb(stats);
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Outermost span of this worker thread: its drop
                        // flushes the thread's trace buffer, which scoped
                        // threads must do themselves (they are joined
                        // before TLS destructors run).
                        let _span = mcm_obs::trace::span("engine.grid.worker");
                        let checker = make_checker();
                        let mut local = Vec::new();
                        sweep(&mut local, checker.as_ref());
                        (local, checker.solver_stats(), checker.batch_stats())
                    })
                })
                .collect();
            for handle in handles {
                let (local, solver, batched) =
                    handle.join().expect("sweep workers do not panic");
                if let Some(cache) = cache {
                    cache.merge(local);
                }
                if let Some(stats) = solver {
                    sat.absorb(stats);
                }
                if let Some(stats) = batched {
                    amortized.absorb(stats);
                }
            }
        });
    }

    let bits = results
        .into_iter()
        .map(|slot| slot.into_inner() == 2)
        .collect();
    GridOutcome {
        bits,
        cache_hits: cache_hits.load(Ordering::Relaxed),
        cache_hits_disk: cache_hits_disk.load(Ordering::Relaxed),
        checker_calls: checker_calls.load(Ordering::Relaxed),
        prefilter_groups: prefilter_groups.load(Ordering::Relaxed),
        prefilter_saved_calls: prefilter_saved.load(Ordering::Relaxed),
        sat,
        batch: amortized,
    }
}

impl Exploration {
    /// Runs the exploration sequentially with the given checker.
    #[must_use]
    pub fn run(models: Vec<MemoryModel>, tests: Vec<LitmusTest>, checker: &dyn Checker) -> Self {
        let executions: Vec<Execution> = tests.iter().map(LitmusTest::execution).collect();
        let verdicts = models
            .iter()
            .map(|m| verdict_vector(m, &executions, checker))
            .collect();
        Exploration {
            models,
            tests,
            verdicts,
        }
    }

    /// Runs the exploration with the batched explicit checker fanned out
    /// over all available cores, one test row at a time.
    #[must_use]
    pub fn run_parallel(models: Vec<MemoryModel>, tests: Vec<LitmusTest>) -> Self {
        Exploration::run_engine(
            models,
            tests,
            || Box::new(BatchExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        )
        .0
    }

    /// The materialized sweep engine, test-major: the unit of parallel
    /// work is a **canonical test row**, checked against every
    /// distinct-formula model in one [`BatchChecker`] call.
    ///
    /// 1. models with structurally identical must-not-reorder formulas are
    ///    checked once (`TSO` and `x86` share a row);
    /// 2. with [`EngineConfig::canonicalize`], tests are collapsed to one
    ///    representative per symmetry orbit;
    /// 3. with a [`VerdictCache`], rows answered in an earlier sweep are
    ///    never re-checked — workers do one row-keyed lookup per test,
    ///    batch only the missing models, and merge their newly computed
    ///    verdicts into the cache shard-by-shard when the sweep completes.
    ///
    /// `make_checker` is called once per worker thread, so checkers need
    /// not be `Sync` (the SAT checkers carry per-instance solver state).
    /// Any per-cell [`Checker`] coerces through its blanket
    /// [`BatchChecker`] adapter; pass a natively batched checker
    /// ([`BatchExplicitChecker`], [`mcm_axiomatic::BatchSatChecker`]) to
    /// amortize candidate enumeration / encoding across each row.
    ///
    /// This is the materialized front-end of the streaming core: the
    /// deduplicated suite goes through the same `sweep_grid` the
    /// streaming engine chunks over, and the verdict matrix is expanded
    /// back over the input suite at the end.
    #[must_use]
    pub fn run_engine<F>(
        models: Vec<MemoryModel>,
        tests: Vec<LitmusTest>,
        make_checker: F,
        config: &EngineConfig,
        cache: Option<&VerdictCache>,
    ) -> (Self, SweepStats)
    where
        F: Fn() -> Box<dyn BatchChecker> + Sync,
    {
        let _span = mcm_obs::trace::span_with("engine.run", &[("tests", &tests.len().to_string())]);
        let rows = formula_rows(&models);
        let jobs = resolve_jobs(config);

        // Layer 2: symmetry canonicalization (or per-test fingerprints
        // when only the cache needs keys), fanned over the same worker
        // budget as the sweep — each test canonicalizes independently.
        let (rep_execs, rep_fps, rep_of): (Vec<Execution>, Vec<u64>, Vec<usize>) =
            if config.canonicalize || cache.is_some() {
                let _canon_span = mcm_obs::trace::span("engine.canon");
                let canonical = canon::dedup_parallel(&tests, jobs);
                if config.canonicalize {
                    (
                        canonical.tests.iter().map(LitmusTest::execution).collect(),
                        canonical.fingerprints,
                        canonical.class_of,
                    )
                } else {
                    // Cache keys only: keep every test as its own work
                    // item but key it by its orbit fingerprint.
                    let fps = canonical
                        .class_of
                        .iter()
                        .map(|&c| canonical.fingerprints[c])
                        .collect();
                    (
                        tests.iter().map(LitmusTest::execution).collect(),
                        fps,
                        (0..tests.len()).collect(),
                    )
                }
            } else {
                (
                    tests.iter().map(LitmusTest::execution).collect(),
                    vec![0; tests.len()],
                    (0..tests.len()).collect(),
                )
            };

        let reps = rep_execs.len();
        let prefilter = build_prefilter(&models, &rows, config);
        let grid = sweep_grid(
            &ModelSide {
                models: &models,
                rows: &rows,
                prefilter: prefilter.as_ref(),
            },
            &rep_execs,
            &rep_fps,
            &make_checker,
            config,
            cache,
        );

        // Expand the deduplicated matrix back to (model, test) verdicts.
        let verdicts: Vec<VerdictVector> = rows
            .row_of
            .iter()
            .map(|&row| {
                let mut vector = VerdictVector::new(tests.len());
                for (t, &rep) in rep_of.iter().enumerate() {
                    vector.set(t, grid.bits[row * reps + rep]);
                }
                vector
            })
            .collect();

        let stats = SweepStats {
            total_pairs: (models.len() * tests.len()) as u64,
            unique_pairs: (rows.row_models.len() * reps) as u64,
            cache_hits: grid.cache_hits,
            cache_hits_disk: grid.cache_hits_disk,
            checker_calls: grid.checker_calls,
            canonical_tests: reps,
            distinct_models: rows.row_models.len(),
            tests_streamed: tests.len() as u64,
            peak_batch: reps,
            semantic_merged_models: rows.semantic_merged,
            prefilter_groups: grid.prefilter_groups,
            prefilter_saved_calls: grid.prefilter_saved_calls,
            sat: grid.sat,
            batch: grid.batch,
        };
        (
            Exploration {
                models,
                tests,
                verdicts,
            },
            stats,
        )
    }

    /// The bounded-memory streaming sweep engine.
    ///
    /// Consumes any test iterator — typically
    /// `mcm_gen::stream::leaders(..)`, which yields exactly one canonical
    /// representative per symmetry orbit of a bounded space — in chunks of
    /// [`EngineConfig::stream_chunk`] tests, runs each chunk through the
    /// shared formula-dedup + [`VerdictCache`] + work-stealing core, and
    /// grows per-model [`VerdictVector`]s incrementally. The raw space
    /// behind the iterator is never materialized; peak memory is one
    /// chunk plus the kept tests and their verdict bits.
    ///
    /// With [`EngineConfig::canonicalize`], each chunk is additionally
    /// collapsed to orbit representatives and representatives already seen
    /// in *earlier* chunks are dropped (a cross-chunk fingerprint set), so
    /// non-canonical streams are deduplicated on the fly. Duplicates are
    /// dropped from the returned [`Exploration`], whose `tests` are the
    /// kept representatives in stream order.
    #[must_use]
    pub fn run_engine_streaming<I, F>(
        models: Vec<MemoryModel>,
        tests: I,
        make_checker: F,
        config: &EngineConfig,
        cache: Option<&VerdictCache>,
    ) -> (Self, SweepStats)
    where
        I: IntoIterator<Item = LitmusTest>,
        F: Fn() -> Box<dyn BatchChecker> + Sync,
    {
        Exploration::run_engine_streaming_with(
            models,
            tests,
            make_checker,
            config,
            cache,
            StreamControl::default(),
        )
        .expect("a cold streaming sweep cannot fail to resume")
    }

    /// [`Exploration::run_engine_streaming`] with per-chunk
    /// [`StreamControl`]: a checkpoint hook observing a
    /// [`StreamCheckpoint`] after every chunk (and able to stop the sweep
    /// early), and an optional resume state from an earlier run.
    ///
    /// On resume the engine replays the already-consumed prefix of the
    /// stream through the dedup layer only — no checker is ever called
    /// for replayed tests — then restores the verdict rows and counters
    /// from the checkpoint and continues. Because the stream and the
    /// dedup layer are deterministic, an interrupted-and-resumed sweep
    /// produces bit-identical verdicts to an uninterrupted one (the
    /// resume-correctness tests assert exactly this). Errors when the
    /// checkpoint does not match the current models, stream or config.
    pub fn run_engine_streaming_with<I, F>(
        models: Vec<MemoryModel>,
        tests: I,
        make_checker: F,
        config: &EngineConfig,
        cache: Option<&VerdictCache>,
        mut control: StreamControl<'_>,
    ) -> Result<(Self, SweepStats), ResumeError>
    where
        I: IntoIterator<Item = LitmusTest>,
        F: Fn() -> Box<dyn BatchChecker> + Sync,
    {
        let _span = mcm_obs::trace::span("engine.stream");
        let rows = formula_rows(&models);
        let prefilter = build_prefilter(&models, &rows, config);
        let jobs = resolve_jobs(config);
        let chunk_size = config.stream_chunk.max(1);
        let mut iter = tests.into_iter();
        let mut kept: Vec<LitmusTest> = Vec::new();
        let mut row_verdicts: Vec<VerdictVector> =
            (0..rows.row_models.len()).map(|_| VerdictVector::new(0)).collect();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut stats = SweepStats {
            distinct_models: rows.row_models.len(),
            semantic_merged_models: rows.semantic_merged,
            ..SweepStats::default()
        };

        // The shared dedup layer: collapses a pulled chunk to the tests
        // that will actually be checked, plus their cache fingerprints.
        // Used identically by the live loop and the resume replay, so a
        // replayed prefix keeps exactly the tests the original run kept.
        let dedup = |chunk: Vec<LitmusTest>,
                     seen: &mut HashSet<u64>|
         -> (Vec<LitmusTest>, Vec<u64>) {
            if config.canonicalize {
                let _canon_span = mcm_obs::trace::span("engine.canon");
                let canonical = canon::dedup_parallel(&chunk, jobs);
                let mut batch = Vec::with_capacity(canonical.tests.len());
                let mut fps = Vec::with_capacity(canonical.tests.len());
                for (test, fp) in canonical.tests.into_iter().zip(canonical.fingerprints) {
                    if seen.insert(fp) {
                        batch.push(test);
                        fps.push(fp);
                    }
                }
                (batch, fps)
            } else if cache.is_some() {
                let fps = chunk.iter().map(canon::fingerprint).collect();
                (chunk, fps)
            } else {
                let fps = vec![0u64; chunk.len()];
                (chunk, fps)
            }
        };

        if let Some(state) = control.resume.take() {
            if state.model_fps != rows.model_fps {
                return Err(ResumeError(
                    "checkpoint was taken over a different model list".to_string(),
                ));
            }
            if state.row_verdicts.len() != rows.model_fps.len()
                || state
                    .row_verdicts
                    .iter()
                    .any(|v| v.len() as u64 != state.tests_kept)
            {
                return Err(ResumeError(
                    "checkpoint verdict rows are inconsistent".to_string(),
                ));
            }
            // Replay the consumed prefix: pull the same chunks and re-run
            // only the dedup layer to rebuild the kept tests and the
            // cross-chunk fingerprint set — no checker work.
            let _replay_span = mcm_obs::trace::span("engine.replay");
            let mut replayed = 0u64;
            while replayed < state.tests_streamed {
                let want = chunk_size.min((state.tests_streamed - replayed) as usize);
                let chunk: Vec<LitmusTest> = iter.by_ref().take(want).collect();
                if chunk.is_empty() {
                    return Err(ResumeError(
                        "stream is shorter than the checkpoint cursor".to_string(),
                    ));
                }
                replayed += chunk.len() as u64;
                let (batch, _) = dedup(chunk, &mut seen);
                kept.extend(batch);
            }
            if kept.len() as u64 != state.tests_kept {
                return Err(ResumeError(
                    "replayed stream prefix kept a different test count".to_string(),
                ));
            }
            row_verdicts = state.row_verdicts;
            stats = state.stats;
        }

        loop {
            // The leader phase: pulling the next chunk out of the
            // (lazily enumerated) test stream.
            let chunk: Vec<LitmusTest> = {
                let _lead_span = mcm_obs::trace::span("engine.lead");
                iter.by_ref().take(chunk_size).collect()
            };
            if chunk.is_empty() {
                break;
            }
            let _chunk_span =
                mcm_obs::trace::span_with("engine.chunk", &[("tests", &chunk.len().to_string())]);
            stats.tests_streamed += chunk.len() as u64;
            stats.peak_batch = stats.peak_batch.max(chunk.len());
            let (batch, fps) = dedup(chunk, &mut seen);
            if !batch.is_empty() {
                let execs: Vec<Execution> = batch.iter().map(LitmusTest::execution).collect();
                let grid = sweep_grid(
                    &ModelSide {
                        models: &models,
                        rows: &rows,
                        prefilter: prefilter.as_ref(),
                    },
                    &execs,
                    &fps,
                    &make_checker,
                    config,
                    cache,
                );
                stats.cache_hits += grid.cache_hits;
                stats.cache_hits_disk += grid.cache_hits_disk;
                stats.checker_calls += grid.checker_calls;
                stats.prefilter_groups += grid.prefilter_groups;
                stats.prefilter_saved_calls += grid.prefilter_saved_calls;
                stats.sat.absorb(grid.sat);
                stats.batch.absorb(grid.batch);
                for (r, vector) in row_verdicts.iter_mut().enumerate() {
                    for t in 0..batch.len() {
                        vector.push(grid.bits[r * batch.len() + t]);
                    }
                }
                kept.extend(batch);
            }
            stats.total_pairs = models.len() as u64 * stats.tests_streamed;
            stats.unique_pairs = (rows.row_models.len() * kept.len()) as u64;
            stats.canonical_tests = kept.len();
            if let Some(hook) = control.on_checkpoint.as_mut() {
                let state = StreamCheckpoint {
                    tests_streamed: stats.tests_streamed,
                    tests_kept: kept.len() as u64,
                    model_fps: rows.model_fps.clone(),
                    row_verdicts: row_verdicts.clone(),
                    stats,
                };
                if !hook(&state) {
                    break;
                }
            }
        }
        let verdicts: Vec<VerdictVector> = rows
            .row_of
            .iter()
            .map(|&row| row_verdicts[row].clone())
            .collect();
        Ok((
            Exploration {
                models,
                tests: kept,
                verdicts,
            },
            stats,
        ))
    }

    /// Number of models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the exploration is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The relation between models `i` and `j`.
    #[must_use]
    pub fn relation(&self, i: usize, j: usize) -> Relation {
        Relation::classify(&self.verdicts[i], &self.verdicts[j])
    }

    /// Indices of tests that distinguish models `i` and `j`.
    #[must_use]
    pub fn distinguishing_tests(&self, i: usize, j: usize) -> Vec<usize> {
        self.verdicts[i].diff_indices(&self.verdicts[j])
    }

    /// Groups model indices with identical verdict vectors, preserving
    /// input order of first members.
    #[must_use]
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for (i, vector) in self.verdicts.iter().enumerate() {
            if let Some(class) = classes
                .iter_mut()
                .find(|c| &self.verdicts[c[0]] == vector)
            {
                class.push(i);
            } else {
                classes.push(vec![i]);
            }
        }
        classes
    }

    /// All unordered pairs of equivalent (but distinct) models.
    #[must_use]
    pub fn equivalent_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for class in self.equivalence_classes() {
            for (a, &i) in class.iter().enumerate() {
                for &j in &class[a + 1..] {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

fn verdict_vector(
    model: &MemoryModel,
    executions: &[Execution],
    checker: &dyn Checker,
) -> VerdictVector {
    let mut vector = VerdictVector::new(executions.len());
    for (i, exec) in executions.iter().enumerate() {
        vector.set(i, checker.check_execution(model, exec).allowed);
    }
    vector
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_axiomatic::ExplicitChecker;
    use mcm_models::catalog;
    use mcm_models::named;

    fn small_exploration() -> Exploration {
        let models = vec![named::sc(), named::tso(), named::x86(), named::pso()];
        let tests = vec![catalog::l1(), catalog::l7(), catalog::test_a()];
        Exploration::run(models, tests, &ExplicitChecker::new())
    }

    #[test]
    fn tso_and_x86_are_equivalent() {
        let expl = small_exploration();
        assert_eq!(expl.relation(1, 2), Relation::Equivalent);
        assert_eq!(expl.equivalent_pairs(), vec![(1, 2)]);
        assert_eq!(expl.equivalence_classes().len(), 3);
    }

    #[test]
    fn sc_is_strictly_stronger_than_tso() {
        let expl = small_exploration();
        assert_eq!(expl.relation(0, 1), Relation::StrictlyStronger);
        assert_eq!(expl.relation(1, 0), Relation::StrictlyWeaker);
        let tests = expl.distinguishing_tests(0, 1);
        assert!(!tests.is_empty());
        // All distinguishing tests are allowed by TSO and forbidden by SC.
        for t in tests {
            assert!(expl.verdicts[1].allowed(t));
            assert!(!expl.verdicts[0].allowed(t));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let models = vec![named::sc(), named::tso(), named::pso(), named::rmo()];
        let tests = catalog::all_tests();
        let seq = Exploration::run(
            models.clone(),
            tests.clone(),
            &ExplicitChecker::new(),
        );
        let par = Exploration::run_parallel(models, tests);
        assert_eq!(seq.verdicts, par.verdicts);
    }

    #[test]
    fn canonicalizing_engine_matches_sequential() {
        let models = vec![named::sc(), named::tso(), named::x86(), named::pso(), named::rmo()];
        // The comparison suite contains the paper's catalog tests, which
        // are symmetric variants of template instances — so the orbit
        // quotient is strictly smaller than the suite.
        let tests = crate::paper::comparison_tests(true);
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        let (engine, stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(ExplicitChecker::new()),
            &EngineConfig::canonicalizing(),
            None,
        );
        assert_eq!(seq.verdicts, engine.verdicts);
        // TSO and x86 share a formula row; the suite has symmetric orbits.
        assert_eq!(stats.distinct_models, 4);
        assert!(stats.canonical_tests < engine.tests.len());
        assert!(stats.unique_pairs < stats.total_pairs);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(
            stats.checker_calls + stats.prefilter_saved_calls,
            stats.unique_pairs
        );
        assert_eq!(stats.tests_streamed, engine.tests.len() as u64);
        assert_eq!(stats.peak_batch, stats.canonical_tests);
    }

    #[test]
    fn batched_engine_matches_sequential_and_amortizes_rows() {
        let models = vec![named::sc(), named::tso(), named::x86(), named::pso(), named::rmo()];
        let tests = catalog::all_tests();
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        let (engine, stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(BatchExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert_eq!(seq.verdicts, engine.verdicts);
        // One batched row per test; the prefilter may shrink what each
        // row hands the checker, so count against actual calls.
        assert_eq!(stats.batch.rows, engine.tests.len() as u64);
        assert_eq!(stats.batch.models_checked, stats.checker_calls);
        assert!(
            stats.batch.model_groups <= stats.batch.models_checked,
            "grouping never exceeds the model count"
        );
        assert!(stats.batch.shared_candidates > 0);
        // Per-cell adapters share nothing and report no row counters.
        let (_, per_cell) = Exploration::run_engine(
            vec![named::sc(), named::tso()],
            catalog::all_tests(),
            || Box::new(ExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert_eq!(per_cell.batch, mcm_axiomatic::BatchStats::default());
    }

    #[test]
    fn batch_sat_engine_matches_the_explicit_rows() {
        let models = vec![named::sc(), named::tso(), named::ibm370()];
        let tests = vec![catalog::l7(), catalog::mp(), catalog::test_a()];
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        let (engine, stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(mcm_axiomatic::BatchSatChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert_eq!(seq.verdicts, engine.verdicts);
        assert!(stats.batch.assumption_solves > 0);
        assert!(stats.sat.propagations > 0, "assumption solves count work");
    }

    #[test]
    fn sat_backed_sweeps_report_solver_work() {
        let models = vec![named::sc(), named::tso()];
        let tests = vec![catalog::l7(), catalog::mp()];
        let (_, stats) = Exploration::run_engine(
            models.clone(),
            tests.clone(),
            || Box::new(mcm_axiomatic::SatChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert!(stats.sat.propagations > 0, "SAT sweep must count work");
        let (_, explicit) = Exploration::run_engine(
            models,
            tests,
            || Box::new(ExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert_eq!(explicit.sat, mcm_sat::SolverStats::default());
    }

    #[test]
    fn single_job_engine_runs_on_the_calling_thread() {
        let models = vec![named::sc(), named::tso()];
        let tests = catalog::all_tests();
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        let (engine, stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(ExplicitChecker::new()),
            &EngineConfig {
                jobs: Some(1),
                ..EngineConfig::default()
            },
            None,
        );
        assert_eq!(seq.verdicts, engine.verdicts);
        assert_eq!(
            stats.checker_calls + stats.prefilter_saved_calls,
            stats.unique_pairs
        );
    }

    #[test]
    fn streaming_engine_matches_materialized_on_a_fixed_suite() {
        let models = vec![named::sc(), named::tso(), named::x86(), named::pso()];
        let tests = catalog::all_tests();
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        // Tiny chunks force many grid sweeps and verdict growth.
        let (streamed, stats) = Exploration::run_engine_streaming(
            models,
            tests.clone(),
            || Box::new(ExplicitChecker::new()),
            &EngineConfig {
                stream_chunk: 3,
                ..EngineConfig::default()
            },
            None,
        );
        assert_eq!(seq.verdicts, streamed.verdicts);
        assert_eq!(streamed.tests.len(), tests.len());
        assert_eq!(stats.tests_streamed, tests.len() as u64);
        assert!(stats.peak_batch <= 3);
        assert_eq!(
            stats.checker_calls + stats.prefilter_saved_calls,
            stats.unique_pairs
        );
    }

    #[test]
    fn streaming_engine_dedups_non_canonical_streams() {
        // Feed every test twice: with canonicalization on, the second
        // copies must be dropped across chunks and the verdicts unchanged.
        let models = vec![named::sc(), named::tso()];
        let tests = catalog::all_tests();
        let doubled: Vec<LitmusTest> =
            tests.iter().chain(tests.iter()).cloned().collect();
        let (streamed, stats) = Exploration::run_engine_streaming(
            models.clone(),
            doubled,
            || Box::new(ExplicitChecker::new()),
            &EngineConfig {
                canonicalize: true,
                stream_chunk: 4,
                ..EngineConfig::default()
            },
            None,
        );
        assert_eq!(stats.tests_streamed, 2 * tests.len() as u64);
        assert!(streamed.tests.len() <= tests.len());
        // Relations over the deduplicated suite agree with the plain run.
        let seq = Exploration::run(models, tests, &ExplicitChecker::new());
        assert_eq!(seq.relation(0, 1), streamed.relation(0, 1));
    }

    #[test]
    fn streaming_engine_uses_the_cache() {
        let models = vec![named::sc(), named::tso(), named::pso()];
        let tests = catalog::all_tests();
        let cache = VerdictCache::new();
        let config = EngineConfig {
            stream_chunk: 5,
            ..EngineConfig::default()
        };
        let (_, cold) = Exploration::run_engine_streaming(
            models.clone(),
            tests.clone(),
            || Box::new(ExplicitChecker::new()),
            &config,
            Some(&cache),
        );
        assert!(cold.checker_calls > 0);
        let (warm_expl, warm) = Exploration::run_engine_streaming(
            models,
            tests,
            || Box::new(ExplicitChecker::new()),
            &config,
            Some(&cache),
        );
        assert_eq!(warm.checker_calls, 0, "warm streamed sweep must be checker-free");
        assert_eq!(warm.cache_hits, warm.unique_pairs);
        assert!(!warm_expl.tests.is_empty());
    }

    #[test]
    fn prefilter_is_sound_and_saves_calls() {
        use mcm_models::DigitModel;
        // M1010/M1110 agree on every test without a same-address W→R po
        // pair; plenty of the catalog qualifies.
        let models: Vec<MemoryModel> = ["M1010", "M1110", "M4044", "M4444"]
            .iter()
            .map(|s| s.parse::<DigitModel>().unwrap().to_model())
            .collect();
        let tests = catalog::all_tests();
        let (on, on_stats) = Exploration::run_engine(
            models.clone(),
            tests.clone(),
            || Box::new(BatchExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        let (off, off_stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(BatchExplicitChecker::new()),
            &EngineConfig {
                prefilter: false,
                ..EngineConfig::default()
            },
            None,
        );
        assert_eq!(on.verdicts, off.verdicts, "the prefilter must be invisible");
        assert_eq!(off_stats.prefilter_groups, 0);
        assert_eq!(off_stats.prefilter_saved_calls, 0);
        assert!(on_stats.prefilter_saved_calls > 0, "some tests must group models");
        assert_eq!(
            on_stats.checker_calls + on_stats.prefilter_saved_calls,
            off_stats.checker_calls
        );
    }

    #[test]
    fn semantically_equal_formulas_share_a_row() {
        use mcm_core::formula::{ArgPos, Atom, Formula};
        // Access(x) spelled two ways: syntactically different, one row.
        let spelled_out = Formula::or([
            Formula::atom(Atom::IsRead(ArgPos::First)),
            Formula::atom(Atom::IsWrite(ArgPos::First)),
        ]);
        let models = vec![
            MemoryModel::new("direct", Formula::atom(Atom::IsAccess(ArgPos::First))),
            MemoryModel::new("spelled", spelled_out),
        ];
        let tests = vec![catalog::l1(), catalog::test_a()];
        let seq = Exploration::run(models.clone(), tests.clone(), &ExplicitChecker::new());
        let (engine, stats) = Exploration::run_engine(
            models,
            tests,
            || Box::new(ExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert_eq!(seq.verdicts, engine.verdicts);
        assert_eq!(stats.distinct_models, 1);
        assert_eq!(stats.semantic_merged_models, 1);
    }

    #[test]
    fn streaming_an_empty_iterator_is_empty() {
        let (expl, stats) = Exploration::run_engine_streaming(
            vec![named::sc()],
            std::iter::empty(),
            || Box::new(ExplicitChecker::new()),
            &EngineConfig::default(),
            None,
        );
        assert!(expl.tests.is_empty());
        assert_eq!(expl.verdicts[0].len(), 0);
        assert_eq!(stats.tests_streamed, 0);
        assert_eq!(stats.peak_batch, 0);
    }
}
