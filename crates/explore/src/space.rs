//! Exploring a space of memory models over a litmus suite (§4.2).

use mcm_axiomatic::{Checker, ExplicitChecker};
use mcm_core::{Execution, LitmusTest, MemoryModel};

use crate::verdict::{Relation, VerdictVector};

/// The result of checking every model against every test.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The models, in input order.
    pub models: Vec<MemoryModel>,
    /// The tests, in input order.
    pub tests: Vec<LitmusTest>,
    /// `verdicts[m]` is model `m`'s vector over `tests`.
    pub verdicts: Vec<VerdictVector>,
}

impl Exploration {
    /// Runs the exploration sequentially with the given checker.
    #[must_use]
    pub fn run(models: Vec<MemoryModel>, tests: Vec<LitmusTest>, checker: &dyn Checker) -> Self {
        let executions: Vec<Execution> = tests.iter().map(LitmusTest::execution).collect();
        let verdicts = models
            .iter()
            .map(|m| verdict_vector(m, &executions, checker))
            .collect();
        Exploration {
            models,
            tests,
            verdicts,
        }
    }

    /// Runs the exploration with the explicit checker, fanning the models
    /// out over all available cores (crossbeam scoped threads).
    #[must_use]
    pub fn run_parallel(models: Vec<MemoryModel>, tests: Vec<LitmusTest>) -> Self {
        let executions: Vec<Execution> = tests.iter().map(LitmusTest::execution).collect();
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(models.len().max(1));
        let chunk_size = models.len().div_ceil(workers.max(1)).max(1);
        let mut verdicts: Vec<Option<VerdictVector>> = vec![None; models.len()];
        crossbeam::thread::scope(|scope| {
            for (chunk_index, (model_chunk, verdict_chunk)) in models
                .chunks(chunk_size)
                .zip(verdicts.chunks_mut(chunk_size))
                .enumerate()
            {
                let executions = &executions;
                let _ = chunk_index;
                scope.spawn(move |_| {
                    let checker = ExplicitChecker::new();
                    for (model, slot) in model_chunk.iter().zip(verdict_chunk.iter_mut()) {
                        *slot = Some(verdict_vector(model, executions, &checker));
                    }
                });
            }
        })
        .expect("exploration workers do not panic");
        Exploration {
            models,
            tests,
            verdicts: verdicts
                .into_iter()
                .map(|v| v.expect("all chunks computed"))
                .collect(),
        }
    }

    /// Number of models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the exploration is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The relation between models `i` and `j`.
    #[must_use]
    pub fn relation(&self, i: usize, j: usize) -> Relation {
        Relation::classify(&self.verdicts[i], &self.verdicts[j])
    }

    /// Indices of tests that distinguish models `i` and `j`.
    #[must_use]
    pub fn distinguishing_tests(&self, i: usize, j: usize) -> Vec<usize> {
        self.verdicts[i].diff_indices(&self.verdicts[j])
    }

    /// Groups model indices with identical verdict vectors, preserving
    /// input order of first members.
    #[must_use]
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for (i, vector) in self.verdicts.iter().enumerate() {
            if let Some(class) = classes
                .iter_mut()
                .find(|c| &self.verdicts[c[0]] == vector)
            {
                class.push(i);
            } else {
                classes.push(vec![i]);
            }
        }
        classes
    }

    /// All unordered pairs of equivalent (but distinct) models.
    #[must_use]
    pub fn equivalent_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for class in self.equivalence_classes() {
            for (a, &i) in class.iter().enumerate() {
                for &j in &class[a + 1..] {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

fn verdict_vector(
    model: &MemoryModel,
    executions: &[Execution],
    checker: &dyn Checker,
) -> VerdictVector {
    let mut vector = VerdictVector::new(executions.len());
    for (i, exec) in executions.iter().enumerate() {
        vector.set(i, checker.check_execution(model, exec).allowed);
    }
    vector
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_models::catalog;
    use mcm_models::named;

    fn small_exploration() -> Exploration {
        let models = vec![named::sc(), named::tso(), named::x86(), named::pso()];
        let tests = vec![catalog::l1(), catalog::l7(), catalog::test_a()];
        Exploration::run(models, tests, &ExplicitChecker::new())
    }

    #[test]
    fn tso_and_x86_are_equivalent() {
        let expl = small_exploration();
        assert_eq!(expl.relation(1, 2), Relation::Equivalent);
        assert_eq!(expl.equivalent_pairs(), vec![(1, 2)]);
        assert_eq!(expl.equivalence_classes().len(), 3);
    }

    #[test]
    fn sc_is_strictly_stronger_than_tso() {
        let expl = small_exploration();
        assert_eq!(expl.relation(0, 1), Relation::StrictlyStronger);
        assert_eq!(expl.relation(1, 0), Relation::StrictlyWeaker);
        let tests = expl.distinguishing_tests(0, 1);
        assert!(!tests.is_empty());
        // All distinguishing tests are allowed by TSO and forbidden by SC.
        for t in tests {
            assert!(expl.verdicts[1].allowed(t));
            assert!(!expl.verdicts[0].allowed(t));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let models = vec![named::sc(), named::tso(), named::pso(), named::rmo()];
        let tests = catalog::all_tests();
        let seq = Exploration::run(
            models.clone(),
            tests.clone(),
            &ExplicitChecker::new(),
        );
        let par = Exploration::run_parallel(models, tests);
        assert_eq!(seq.verdicts, par.verdicts);
    }
}
