//! Fingerprint-keyed memoization of (model, test) verdicts.
//!
//! The §4.2 experiment (and any sweep over a model space) asks the same
//! admissibility question many times: lattice construction, distinguishing-
//! set search and repeated explorations all revisit (model, test) pairs.
//! A [`VerdictCache`] memoizes the boolean verdict keyed by
//!
//! * the **model fingerprint** — a hash of the must-not-reorder formula
//!   only (not the display name), so `TSO` and its digit alias `M4044`
//!   share entries; and
//! * the **test fingerprint** — [`mcm_gen::canon::fingerprint`], the hash
//!   of the test's canonical symmetry-orbit representative, so all
//!   symmetric variants of a test share entries.
//!
//! The cache is sharded (a fixed array of mutex-protected maps indexed by
//! key hash) so concurrent sweep workers do not serialise on one lock, and
//! the parallel engine additionally batches its insertions: workers record
//! newly computed verdicts locally and merge them shard-by-shard when the
//! sweep finishes (see [`crate::space`]).
//!
//! The RAM shards can sit in front of a durable tier (`mcm-store`'s
//! `DiskCache`): entries hydrated from disk are tagged with their
//! provenance so hit counters distinguish `hits_ram` (computed this
//! process) from `hits_disk` (recovered from an earlier process), and a
//! [`DurableSink`] installed with [`VerdictCache::set_sink`] receives
//! every freshly computed verdict for write-through persistence.
//!
//! Keys are 128 bits of hash; a collision would silently reuse a verdict.
//! With 64-bit fingerprints on each side the collision probability across
//! even millions of distinct pairs is negligible (~`n²/2⁶⁵` per side).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError};

use mcm_core::MemoryModel;

/// Number of independent shards; a power of two so the shard index is a
/// mask of the key hash.
const SHARDS: usize = 16;

/// A cache key: (model fingerprint, canonical-test fingerprint).
pub type Key = (u64, u64);

/// One memoized verdict plus its provenance tier.
#[derive(Clone, Copy, Debug)]
struct Slot {
    allowed: bool,
    /// `true` when the entry was hydrated from a durable store rather
    /// than computed by a checker in this process.
    durable: bool,
}

/// A durable write-through target for freshly computed verdicts: the
/// sweep engine merges worker batches into the RAM shards, and any sink
/// installed with [`VerdictCache::set_sink`] sees the same batches so a
/// disk tier can persist them on batch boundaries.
pub trait DurableSink: Send + Sync {
    /// Persists a batch of fresh `(key, allowed)` verdicts. Called after
    /// the RAM shards were updated; entries already present with the same
    /// verdict are filtered out before this is called.
    fn persist(&self, batch: &[(Key, bool)]);
}

/// Result of a tier-aware row lookup ([`VerdictCache::get_row_tiered`]).
#[derive(Clone, Debug, Default)]
pub struct RowLookup {
    /// Per-model verdicts, `None` where the cache had no entry.
    pub verdicts: Vec<Option<bool>>,
    /// Hits answered by entries computed in this process.
    pub hits_ram: u64,
    /// Hits answered by entries hydrated from a durable store.
    pub hits_disk: u64,
}

/// A sharded, thread-safe memo table for (model, test) verdicts.
#[derive(Default)]
pub struct VerdictCache {
    shards: [Mutex<HashMap<Key, Slot>>; SHARDS],
    hits_ram: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    contention: AtomicU64,
    /// Optional durable tier notified of every fresh verdict.
    sink: OnceLock<Arc<dyn DurableSink>>,
    // Lazily resolved handles into the global metric registry, so the
    // lookup path never takes the registry lock after first use.
    obs_hits: OnceLock<Arc<mcm_obs::metrics::Counter>>,
    obs_hits_ram: OnceLock<Arc<mcm_obs::metrics::Counter>>,
    obs_hits_disk: OnceLock<Arc<mcm_obs::metrics::Counter>>,
    obs_misses: OnceLock<Arc<mcm_obs::metrics::Counter>>,
    obs_contention: OnceLock<Arc<mcm_obs::metrics::Counter>>,
}

impl fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerdictCache")
            .field("entries", &self.len())
            .field("hits_ram", &self.hits_ram())
            .field("hits_disk", &self.hits_disk())
            .field("misses", &self.misses())
            .field("has_sink", &self.sink.get().is_some())
            .finish()
    }
}

impl VerdictCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        VerdictCache::default()
    }

    /// Fingerprint of a model: a hash of its formula, ignoring the name.
    #[must_use]
    pub fn model_fingerprint(model: &MemoryModel) -> u64 {
        let mut hasher = DefaultHasher::new();
        model.formula().hash(&mut hasher);
        hasher.finish()
    }

    fn shard(key: Key) -> usize {
        // Mix both halves so shard load stays balanced even when one
        // fingerprint is constant (single-model sweeps).
        ((key.0 ^ key.1.rotate_left(32)) as usize) & (SHARDS - 1)
    }

    /// Locks shard `i`, counting the acquisition as contended when
    /// another worker already holds it (`try_lock` would block). The
    /// count feeds `shard_contention` in [`VerdictCache::counters`]
    /// and the global `mcm_cache_shard_contention_total` series — the
    /// signal that says whether [`SHARDS`] needs to grow.
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, HashMap<Key, Slot>> {
        match self.shards[i].try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                if mcm_obs::enabled() {
                    self.obs_contention
                        .get_or_init(|| {
                            mcm_obs::metrics::counter("mcm_cache_shard_contention_total", &[])
                        })
                        .inc();
                }
                self.shards[i].lock().expect("cache shard poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }

    /// Mirrors a batch of lookup results into the process-wide metric
    /// series scraped by `GET /metricsz`.
    fn observe_lookups(&self, hits_ram: u64, hits_disk: u64, misses: u64) {
        if !mcm_obs::enabled() {
            return;
        }
        if hits_ram + hits_disk > 0 {
            self.obs_hits
                .get_or_init(|| mcm_obs::metrics::counter("mcm_cache_hits_total", &[]))
                .add(hits_ram + hits_disk);
        }
        if hits_ram > 0 {
            self.obs_hits_ram
                .get_or_init(|| mcm_obs::metrics::counter("mcm_cache_hits_ram_total", &[]))
                .add(hits_ram);
        }
        if hits_disk > 0 {
            self.obs_hits_disk
                .get_or_init(|| mcm_obs::metrics::counter("mcm_cache_hits_disk_total", &[]))
                .add(hits_disk);
        }
        if misses > 0 {
            self.obs_misses
                .get_or_init(|| mcm_obs::metrics::counter("mcm_cache_misses_total", &[]))
                .add(misses);
        }
    }

    /// Installs the durable write-through tier. At most one sink can be
    /// installed per cache; returns `false` (and leaves the existing sink
    /// in place) when one was already set.
    pub fn set_sink(&self, sink: Arc<dyn DurableSink>) -> bool {
        self.sink.set(sink).is_ok()
    }

    /// Hands a batch of fresh verdicts to the durable tier, if one is
    /// installed.
    fn persist(&self, fresh: &[(Key, bool)]) {
        if fresh.is_empty() {
            return;
        }
        if let Some(sink) = self.sink.get() {
            sink.persist(fresh);
        }
    }

    /// Pre-loads verdicts recovered from a durable store, tagging them as
    /// disk-tier so later lookups count as `hits_disk`. Does not notify
    /// the sink (the records are already durable) and does not touch the
    /// hit/miss statistics.
    pub fn hydrate(&self, records: impl IntoIterator<Item = (Key, bool)>) {
        let mut by_shard: [Vec<(Key, Slot)>; SHARDS] = Default::default();
        for (key, allowed) in records {
            by_shard[Self::shard(key)].push((
                key,
                Slot {
                    allowed,
                    durable: true,
                },
            ));
        }
        for (i, entries) in by_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            self.lock_shard(i).extend(entries);
        }
    }

    /// Looks a verdict up, recording a hit or miss.
    #[must_use]
    pub fn get(&self, key: Key) -> Option<bool> {
        let found = self.lock_shard(Self::shard(key)).get(&key).copied();
        match found {
            Some(slot) if slot.durable => self.hits_disk.fetch_add(1, Ordering::Relaxed),
            Some(_) => self.hits_ram.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        let (ram, disk) = match found {
            Some(slot) => (u64::from(!slot.durable), u64::from(slot.durable)),
            None => (0, 0),
        };
        self.observe_lookups(ram, disk, u64::from(found.is_none()));
        found.map(|slot| slot.allowed)
    }

    /// Looks up a whole sweep row — every model fingerprint paired with
    /// one test fingerprint — taking each shard lock at most once instead
    /// of once per key. This is the lookup shape of the test-major engine,
    /// whose unit of work is a test row, not a cell. Records one hit or
    /// miss per key.
    #[must_use]
    pub fn get_row(&self, model_fps: &[u64], test_fp: u64) -> Vec<Option<bool>> {
        self.get_row_tiered(model_fps, test_fp).verdicts
    }

    /// [`VerdictCache::get_row`] with the hit counts of the lookup split
    /// by provenance tier, so the sweep engine can attribute row hits to
    /// RAM vs disk in [`crate::SweepStats`].
    #[must_use]
    pub fn get_row_tiered(&self, model_fps: &[u64], test_fp: u64) -> RowLookup {
        let mut out = RowLookup {
            verdicts: vec![None; model_fps.len()],
            ..RowLookup::default()
        };
        let mut by_shard: [Vec<usize>; SHARDS] = Default::default();
        for (i, &model_fp) in model_fps.iter().enumerate() {
            by_shard[Self::shard((model_fp, test_fp))].push(i);
        }
        let mut misses = 0u64;
        for (s, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = self.lock_shard(s);
            for &i in indices {
                match shard.get(&(model_fps[i], test_fp)) {
                    Some(slot) => {
                        out.verdicts[i] = Some(slot.allowed);
                        if slot.durable {
                            out.hits_disk += 1;
                        } else {
                            out.hits_ram += 1;
                        }
                    }
                    None => misses += 1,
                }
            }
        }
        self.hits_ram.fetch_add(out.hits_ram, Ordering::Relaxed);
        self.hits_disk.fetch_add(out.hits_disk, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.observe_lookups(out.hits_ram, out.hits_disk, misses);
        out
    }

    /// Records a verdict (RAM tier; written through to the sink when one
    /// is installed and the verdict is new).
    pub fn insert(&self, key: Key, allowed: bool) {
        let fresh = {
            let mut shard = self.lock_shard(Self::shard(key));
            let prev = shard.insert(
                key,
                Slot {
                    allowed,
                    durable: false,
                },
            );
            prev.is_none_or(|slot| slot.allowed != allowed)
        };
        if fresh {
            self.persist(&[(key, allowed)]);
        }
    }

    /// Merges a batch of verdicts (one worker's sweep-local results),
    /// grouping by shard so each lock is taken at most once. Entries not
    /// already present (or present with a different verdict) are written
    /// through to the durable sink as one batch.
    pub fn merge(&self, batch: impl IntoIterator<Item = (Key, bool)>) {
        let mut by_shard: [Vec<(Key, bool)>; SHARDS] = Default::default();
        for (key, allowed) in batch {
            by_shard[Self::shard(key)].push((key, allowed));
        }
        let mut fresh: Vec<(Key, bool)> = Vec::new();
        for (i, entries) in by_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut shard = self.lock_shard(i);
            for (key, allowed) in entries {
                let prev = shard.insert(
                    key,
                    Slot {
                        allowed,
                        durable: false,
                    },
                );
                if prev.is_none_or(|slot| slot.allowed != allowed) {
                    fresh.push((key, allowed));
                }
            }
        }
        self.persist(&fresh);
    }

    /// Number of memoized pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since construction, both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits_ram() + self.hits_disk()
    }

    /// Lookup hits answered by entries computed in this process.
    #[must_use]
    pub fn hits_ram(&self) -> u64 {
        self.hits_ram.load(Ordering::Relaxed)
    }

    /// Lookup hits answered by entries hydrated from a durable store.
    #[must_use]
    pub fn hits_disk(&self) -> u64 {
        self.hits_disk.load(Ordering::Relaxed)
    }

    /// Total lookup misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Shard-lock acquisitions that found the lock already held (a
    /// measure of worker serialisation on the cache).
    #[must_use]
    pub fn shard_contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// The cache totals as stable `(name, value)` pairs — the structured
    /// view serializable reports and the serve layer's `/statsz` endpoint
    /// render from, mirroring `SweepStats::counters`. The same names,
    /// prefixed `mcm_cache_` and suffixed `_total`, appear in
    /// `/metricsz`. `hits` is the sum of the two tier counters.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("entries", self.len() as u64),
            ("hits", self.hits()),
            ("hits_ram", self.hits_ram()),
            ("hits_disk", self.hits_disk()),
            ("misses", self.misses()),
            ("shard_contention", self.shard_contention()),
        ]
    }

    /// Drops all entries and statistics (the sink, if any, stays
    /// installed).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.hits_ram.store(0, Ordering::Relaxed);
        self.hits_disk.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.contention.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::Formula;

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = VerdictCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get((1, 2)), None);
        cache.insert((1, 2), true);
        cache.insert((1, 3), false);
        assert_eq!(cache.get((1, 2)), Some(true));
        assert_eq!(cache.get((1, 3)), Some(false));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.hits_ram(), 2);
        assert_eq!(cache.hits_disk(), 0);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn get_row_matches_per_key_lookups() {
        let cache = VerdictCache::new();
        let model_fps: Vec<u64> = (0..40).collect();
        for &m in &model_fps {
            if m % 3 != 0 {
                cache.insert((m, 7), m % 2 == 0);
            }
        }
        let row = cache.get_row(&model_fps, 7);
        for (i, &m) in model_fps.iter().enumerate() {
            let expected = (m % 3 != 0).then_some(m % 2 == 0);
            assert_eq!(row[i], expected, "row lookup differs at model {m}");
        }
        // 40 lookups: hits for the inserted keys, misses for the rest.
        assert_eq!(cache.hits() + cache.misses(), 40);
        assert_eq!(cache.misses(), model_fps.iter().filter(|m| *m % 3 == 0).count() as u64);
    }

    #[test]
    fn counters_mirror_the_accessors() {
        let cache = VerdictCache::new();
        cache.insert((1, 2), true);
        let _ = cache.get((1, 2));
        let _ = cache.get((9, 9));
        assert_eq!(
            cache.counters(),
            [
                ("entries", 1),
                ("hits", 1),
                ("hits_ram", 1),
                ("hits_disk", 0),
                ("misses", 1),
                ("shard_contention", 0)
            ]
        );
    }

    #[test]
    fn merge_batches_by_shard() {
        let cache = VerdictCache::new();
        let batch: Vec<(Key, bool)> = (0..100).map(|i| ((i, i * 7), i % 2 == 0)).collect();
        cache.merge(batch);
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.get((4, 28)), Some(true));
        assert_eq!(cache.get((5, 35)), Some(false));
    }

    #[test]
    fn hydrated_entries_count_as_disk_hits() {
        let cache = VerdictCache::new();
        cache.hydrate([((1, 2), true), ((3, 4), false)]);
        cache.insert((5, 6), true);
        assert_eq!(cache.get((1, 2)), Some(true));
        assert_eq!(cache.get((3, 4)), Some(false));
        assert_eq!(cache.get((5, 6)), Some(true));
        assert_eq!(cache.hits_disk(), 2);
        assert_eq!(cache.hits_ram(), 1);
        let row = {
            let cache = VerdictCache::new();
            cache.hydrate([((1, 7), true)]);
            cache.insert((2, 7), false);
            cache.get_row_tiered(&[1, 2, 3], 7)
        };
        assert_eq!(row.verdicts, vec![Some(true), Some(false), None]);
        assert_eq!(row.hits_disk, 1);
        assert_eq!(row.hits_ram, 1);
    }

    #[test]
    fn sink_sees_fresh_verdicts_once() {
        struct Recorder(Mutex<Vec<(Key, bool)>>);
        impl DurableSink for Recorder {
            fn persist(&self, batch: &[(Key, bool)]) {
                self.0.lock().unwrap().extend_from_slice(batch);
            }
        }
        let cache = VerdictCache::new();
        let sink = Arc::new(Recorder(Mutex::new(Vec::new())));
        assert!(cache.set_sink(sink.clone()));
        assert!(!cache.set_sink(sink.clone()), "second sink must be refused");
        cache.hydrate([((9, 9), true)]);
        cache.insert((1, 2), true);
        cache.insert((1, 2), true); // unchanged: not re-persisted
        cache.merge([((1, 2), true), ((3, 4), false)]);
        let seen = sink.0.lock().unwrap().clone();
        assert_eq!(seen, vec![((1, 2), true), ((3, 4), false)]);
    }

    #[test]
    fn model_fingerprint_ignores_the_name() {
        let a = MemoryModel::new("TSO", Formula::always());
        let b = MemoryModel::new("M4044", Formula::always());
        let c = MemoryModel::new("weak", Formula::never());
        assert_eq!(
            VerdictCache::model_fingerprint(&a),
            VerdictCache::model_fingerprint(&b)
        );
        assert_ne!(
            VerdictCache::model_fingerprint(&a),
            VerdictCache::model_fingerprint(&c)
        );
    }
}
