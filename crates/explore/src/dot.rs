//! Graphviz DOT rendering of the model lattice (Figure 4).

use crate::lattice::Lattice;
use crate::space::Exploration;

/// Options for [`render_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Label edges with the distinguishing tests of a preferred set (e.g.
    /// the nine tests of Figure 3); when a covering pair is distinguished
    /// by several, the first preferred test is used, falling back to the
    /// first distinguishing test.
    pub preferred_tests: Vec<usize>,
    /// Rank the strongest models at the top (Figure 4 places SC last /
    /// bottom-right; graphviz `rankdir=BT` with weaker→stronger edges puts
    /// SC on top, which reads naturally).
    pub rankdir_bottom_to_top: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "models".to_string(),
            preferred_tests: Vec::new(),
            rankdir_bottom_to_top: true,
        }
    }
}

/// Renders the lattice as a DOT digraph. Nodes are equivalence classes
/// labelled with every member model's name; edges point from weaker to
/// stronger models, labelled with a distinguishing test, exactly as in
/// Figure 4.
#[must_use]
pub fn render_dot(exploration: &Exploration, lattice: &Lattice, options: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", options.name));
    if options.rankdir_bottom_to_top {
        out.push_str("  rankdir=BT;\n");
    }
    out.push_str("  node [shape=box, fontname=\"Helvetica\"];\n");
    out.push_str("  edge [fontname=\"Helvetica\", fontsize=10];\n");
    for (i, class) in lattice.classes.iter().enumerate() {
        let label = class
            .members
            .iter()
            .map(|&m| exploration.models[m].name().to_string())
            .collect::<Vec<_>>()
            .join("\\n");
        out.push_str(&format!("  c{i} [label=\"{label}\"];\n"));
    }
    for edge in &lattice.edges {
        let label_test = options
            .preferred_tests
            .iter()
            .copied()
            .find(|t| edge.distinguishing.contains(t))
            .or_else(|| edge.distinguishing.first().copied());
        let label = label_test
            .map(|t| exploration.tests[t].name().to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "  c{} -> c{} [label=\"{}\"];\n",
            edge.weaker, edge.stronger, label
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_axiomatic::ExplicitChecker;
    use mcm_models::{catalog, named};

    #[test]
    fn dot_output_contains_nodes_and_labelled_edges() {
        let expl = Exploration::run(
            vec![named::sc(), named::tso(), named::x86(), named::pso()],
            catalog::all_tests(),
            &ExplicitChecker::new(),
        );
        let lattice = Lattice::build(&expl);
        let dot = render_dot(&expl, &lattice, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("rankdir=BT"));
        // TSO and x86 share a node.
        assert!(dot.contains("TSO\\nx86"));
        assert!(dot.contains("SC"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn preferred_tests_label_edges() {
        let tests = catalog::all_tests();
        let l7_index = tests.iter().position(|t| t.name() == "L7").unwrap();
        let expl = Exploration::run(
            vec![named::sc(), named::tso()],
            tests,
            &ExplicitChecker::new(),
        );
        let lattice = Lattice::build(&expl);
        let dot = render_dot(
            &expl,
            &lattice,
            &DotOptions {
                preferred_tests: vec![l7_index],
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("label=\"L7\""));
    }
}
