//! Minimal distinguishing test sets (§4.2: "a set of nine different litmus
//! tests is sufficient to contrast any two non-equivalent memory models").
//!
//! Finding a smallest set of tests that separates every pair of
//! non-equivalent models is a set-cover problem: the universe is the pairs
//! of distinct verdict vectors, and test `t` covers a pair when the two
//! vectors disagree on `t`. We compute a small cover greedily, then prove
//! it minimum with the workspace SAT solver: "a cover of size `k - 1`
//! exists" is encoded as selector variables + coverage clauses + a
//! sequential-counter cardinality bound, and `Unsat` is the minimality
//! certificate. The paper reports the sufficient set; the certificate is
//! our extension.

use mcm_sat::{cardinality, Lit, SatResult, Solver};

use crate::space::Exploration;

/// The distinct-vector pairs and, for each, the tests that separate it.
fn coverage(exploration: &Exploration) -> Vec<Vec<usize>> {
    let classes = exploration.equivalence_classes();
    let mut pairs = Vec::new();
    for (a, ca) in classes.iter().enumerate() {
        for cb in classes.iter().skip(a + 1) {
            let diff = exploration.distinguishing_tests(ca[0], cb[0]);
            debug_assert!(!diff.is_empty(), "distinct classes must differ");
            pairs.push(diff);
        }
    }
    pairs
}

/// Greedy set cover: repeatedly pick the test separating the most
/// still-unseparated pairs. Returns test indices in pick order.
#[must_use]
pub fn greedy_distinguishing_set(exploration: &Exploration) -> Vec<usize> {
    let pairs = coverage(exploration);
    let num_tests = exploration.tests.len();
    let mut uncovered: Vec<&Vec<usize>> = pairs.iter().collect();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let mut counts = vec![0usize; num_tests];
        for pair in &uncovered {
            for &t in *pair {
                counts[t] += 1;
            }
        }
        let best = (0..num_tests)
            .max_by_key(|&t| counts[t])
            .expect("non-empty test list");
        assert!(counts[best] > 0, "uncovered pair with no separating test");
        chosen.push(best);
        uncovered.retain(|pair| !pair.contains(&best));
    }
    chosen
}

/// Whether a set of tests separates every pair of non-equivalent models.
#[must_use]
pub fn is_sufficient(exploration: &Exploration, tests: &[usize]) -> bool {
    coverage(exploration)
        .iter()
        .all(|pair| pair.iter().any(|t| tests.contains(t)))
}

/// Decides whether *some* cover of size at most `k` exists, by SAT.
#[must_use]
pub fn cover_of_size_exists(exploration: &Exploration, k: usize) -> bool {
    let pairs = coverage(exploration);
    if pairs.is_empty() {
        return true;
    }
    let num_tests = exploration.tests.len();
    let mut solver = Solver::new();
    let selectors: Vec<Lit> = (0..num_tests).map(|_| solver.new_var().positive()).collect();
    for pair in &pairs {
        let clause: Vec<Lit> = pair.iter().map(|&t| selectors[t]).collect();
        solver.add_clause(&clause);
    }
    cardinality::add_at_most_k(&mut solver, &selectors, k);
    solver.solve() == SatResult::Sat
}

/// The minimal *length* (total memory accesses) of a test distinguishing
/// models `i` and `j` within the exploration's suite, or `None` when the
/// suite does not separate them.
///
/// This is the exhaustive-sweep answer to the paper's central question:
/// run it over a streamed orbit-leader enumeration
/// (`mcm_gen::stream::leaders`) and it reports, per pair, how long a
/// litmus test needs to be. The synthesis engine (`mcm-synth`) re-derives
/// the same numbers by CEGIS and the two are cross-validated against each
/// other.
#[must_use]
pub fn minimal_distinguishing_length(
    exploration: &Exploration,
    i: usize,
    j: usize,
) -> Option<usize> {
    exploration
        .distinguishing_tests(i, j)
        .into_iter()
        .map(|t| exploration.tests[t].program().access_count())
        .min()
}

/// The full pairwise matrix of [`minimal_distinguishing_length`]:
/// `matrix[i][j]` for every ordered pair (`None` on the diagonal).
#[must_use]
pub fn minimal_length_matrix(exploration: &Exploration) -> Vec<Vec<Option<usize>>> {
    let n = exploration.len();
    let mut matrix = vec![vec![None; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) / (j, i) fill
    for i in 0..n {
        for j in (i + 1)..n {
            let min = minimal_distinguishing_length(exploration, i, j);
            matrix[i][j] = min;
            matrix[j][i] = min;
        }
    }
    matrix
}

/// A minimum distinguishing set together with a minimality certificate.
#[derive(Clone, Debug)]
pub struct MinimalSet {
    /// The chosen test indices (into [`Exploration::tests`]).
    pub tests: Vec<usize>,
    /// `true` when the SAT solver proved no smaller cover exists.
    pub proved_minimum: bool,
}

/// Computes a minimum distinguishing set: greedy cover, then SAT queries
/// shrinking the bound until `Unsat` certifies minimality.
#[must_use]
pub fn minimal_distinguishing_set(exploration: &Exploration) -> MinimalSet {
    let greedy = greedy_distinguishing_set(exploration);
    let mut best = greedy;
    // Try to find strictly smaller covers via SAT, extracting the model.
    while !best.is_empty() && cover_of_size_exists(exploration, best.len() - 1) {
        best = extract_cover(exploration, best.len() - 1)
            .expect("SAT said a smaller cover exists");
    }
    MinimalSet {
        proved_minimum: true, // the loop exits on an Unsat certificate
        tests: best,
    }
}

/// Extracts an actual cover of size ≤ `k` from a satisfying assignment.
fn extract_cover(exploration: &Exploration, k: usize) -> Option<Vec<usize>> {
    let pairs = coverage(exploration);
    let num_tests = exploration.tests.len();
    let mut solver = Solver::new();
    let selectors: Vec<Lit> = (0..num_tests).map(|_| solver.new_var().positive()).collect();
    for pair in &pairs {
        let clause: Vec<Lit> = pair.iter().map(|&t| selectors[t]).collect();
        solver.add_clause(&clause);
    }
    cardinality::add_at_most_k(&mut solver, &selectors, k);
    if solver.solve() != SatResult::Sat {
        return None;
    }
    Some(
        (0..num_tests)
            .filter(|&t| solver.lit_value_opt(selectors[t]) == Some(true))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_axiomatic::ExplicitChecker;
    use mcm_models::{catalog, named};

    fn exploration() -> Exploration {
        Exploration::run(
            vec![
                named::sc(),
                named::tso(),
                named::pso(),
                named::ibm370(),
                named::rmo(),
            ],
            catalog::all_tests(),
            &ExplicitChecker::new(),
        )
    }

    #[test]
    fn greedy_cover_is_sufficient() {
        let expl = exploration();
        let cover = greedy_distinguishing_set(&expl);
        assert!(is_sufficient(&expl, &cover));
        assert!(!cover.is_empty());
        // Dropping the last test breaks sufficiency or was redundant; at
        // minimum the empty set cannot suffice for >1 class.
        assert!(!is_sufficient(&expl, &[]));
    }

    #[test]
    fn minimal_set_is_no_larger_than_greedy_and_sufficient() {
        let expl = exploration();
        let greedy = greedy_distinguishing_set(&expl);
        let minimal = minimal_distinguishing_set(&expl);
        assert!(minimal.tests.len() <= greedy.len());
        assert!(minimal.proved_minimum);
        assert!(is_sufficient(&expl, &minimal.tests));
        // And the SAT side agrees no smaller cover exists.
        assert!(!cover_of_size_exists(&expl, minimal.tests.len() - 1));
        assert!(cover_of_size_exists(&expl, minimal.tests.len()));
    }

    #[test]
    fn minimal_lengths_are_short_and_symmetric() {
        let expl = exploration();
        let matrix = minimal_length_matrix(&expl);
        // SC vs TSO is separated by a four-access test (SB / Test A's
        // six-access variant exists, but L7 wins).
        let sc = 0;
        let tso = 1;
        assert_eq!(matrix[sc][tso], Some(4));
        assert_eq!(matrix[sc][tso], matrix[tso][sc]);
        assert_eq!(
            matrix[sc][tso],
            minimal_distinguishing_length(&expl, sc, tso)
        );
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(row[i], None, "diagonal must be empty");
        }
    }

    #[test]
    fn single_model_needs_no_tests() {
        let expl = Exploration::run(
            vec![named::sc()],
            catalog::all_tests(),
            &ExplicitChecker::new(),
        );
        let minimal = minimal_distinguishing_set(&expl);
        assert!(minimal.tests.is_empty());
        assert!(cover_of_size_exists(&expl, 0));
    }
}
