//! Text and CSV reports of an exploration.

use std::fmt::Write as _;

use crate::paper::SpaceReport;
use crate::space::{Exploration, SweepStats};

/// Renders the full §4.2 report as human-readable text: space size,
/// equivalence classes, equivalent pairs, the minimum distinguishing set
/// and the lattice edge list.
#[must_use]
pub fn text(report: &SpaceReport) -> String {
    let mut out = String::new();
    let expl = &report.exploration;
    let _ = writeln!(
        out,
        "explored {} models against {} litmus tests",
        expl.models.len(),
        expl.tests.len()
    );
    let _ = writeln!(
        out,
        "equivalence classes: {}",
        report.lattice.classes.len()
    );
    let _ = writeln!(out, "equivalent pairs: {}", report.equivalent_pairs.len());
    for (a, b) in &report.equivalent_pairs {
        let _ = writeln!(out, "  {a} == {b}");
    }
    let names: Vec<&str> = report
        .minimal_set
        .tests
        .iter()
        .map(|&t| expl.tests[t].name())
        .collect();
    let _ = writeln!(
        out,
        "minimum distinguishing set ({} tests, SAT-certified: {}): {}",
        report.minimal_set.tests.len(),
        report.minimal_set.proved_minimum,
        names.join(", ")
    );
    let _ = writeln!(
        out,
        "the paper's nine tests L1-L9 are sufficient: {}",
        report.nine_tests_sufficient
    );
    let _ = writeln!(out, "lattice (weaker -> stronger, covering edges):");
    for edge in &report.lattice.edges {
        let weaker = class_label(expl, &report.lattice.classes[edge.weaker].members);
        let stronger = class_label(expl, &report.lattice.classes[edge.stronger].members);
        let label = edge
            .distinguishing
            .iter()
            .find(|t| report.nine_test_indices.contains(t))
            .or_else(|| edge.distinguishing.first())
            .map(|&t| expl.tests[t].name())
            .unwrap_or("?");
        let _ = writeln!(out, "  {weaker} --[{label}]--> {stronger}");
    }
    out
}

fn class_label(expl: &Exploration, members: &[usize]) -> String {
    members
        .iter()
        .map(|&m| expl.models[m].name().to_string())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the layer-by-layer sweep counters as the standard multi-line
/// stats block: pair reduction, batching amortization (when the batched
/// checkers ran) and SAT-solver totals (when a solver-backed checker ran).
/// Shared by the CLI's text reports so every sweep prints identically.
#[must_use]
pub fn sweep_stats_text(stats: &SweepStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} pairs -> {} unique ({} models x {} canonical tests), \
         {} cache hits, {} checker calls ({:.1}x reduction)",
        stats.total_pairs,
        stats.unique_pairs,
        stats.distinct_models,
        stats.canonical_tests,
        stats.cache_hits,
        stats.checker_calls,
        stats.reduction_factor(),
    );
    if stats.semantic_merged_models > 0 || stats.prefilter_saved_calls > 0 {
        let _ = writeln!(
            out,
            "sweep analysis: {} models merged semantically, {} prefilter groups \
             saved {} checker calls",
            stats.semantic_merged_models,
            stats.prefilter_groups,
            stats.prefilter_saved_calls,
        );
    }
    if stats.batch.rows > 0 {
        let _ = writeln!(
            out,
            "sweep batching: {} test rows, {} model verdicts in {} groups \
             ({:.1}x row collapse), {} shared candidates, {} assumption solves",
            stats.batch.rows,
            stats.batch.models_checked,
            stats.batch.model_groups,
            stats.batch.row_collapse(),
            stats.batch.shared_candidates,
            stats.batch.assumption_solves,
        );
    }
    if stats.sat != mcm_sat::SolverStats::default() {
        let _ = writeln!(
            out,
            "sweep solver: {} decisions, {} propagations, {} conflicts, {} restarts",
            stats.sat.decisions,
            stats.sat.propagations,
            stats.sat.conflicts,
            stats.sat.restarts,
        );
    }
    out
}

/// One-line summary of a streaming sweep: how much was pulled from the
/// stream, how many orbit leaders were kept, and the memory high-water
/// mark (the largest chunk ever materialized at once).
#[must_use]
pub fn streaming_summary(stats: &SweepStats) -> String {
    let mut line = format!(
        "streamed {} tests -> {} kept ({} distinct models, peak {} tests in memory), \
         {} cache hits, {} checker calls ({:.1}x reduction)",
        stats.tests_streamed,
        stats.canonical_tests,
        stats.distinct_models,
        stats.peak_batch,
        stats.cache_hits,
        stats.checker_calls,
        stats.reduction_factor(),
    );
    if stats.semantic_merged_models > 0 || stats.prefilter_saved_calls > 0 {
        line.push_str(&format!(
            "; {} models merged semantically, prefilter saved {} calls",
            stats.semantic_merged_models, stats.prefilter_saved_calls,
        ));
    }
    if stats.batch.rows > 0 {
        line.push_str(&format!(
            "; batched {} rows into {} model groups ({:.1}x row collapse)",
            stats.batch.rows,
            stats.batch.model_groups,
            stats.batch.row_collapse(),
        ));
    }
    line
}

/// Renders a pairwise minimal-distinguishing-length matrix
/// (`matrix[i][j]` = fewest total accesses separating models `i` and `j`,
/// `None` = not separated) as a compact numbered table with a legend.
///
/// Shared by the exhaustive sweep (`distinguish::minimal_length_matrix`)
/// and the synthesis engine's CEGIS-derived matrix, so the two reports are
/// directly comparable.
#[must_use]
pub fn length_matrix_text(names: &[String], matrix: &[Vec<Option<usize>>]) -> String {
    let n = names.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pairwise minimal distinguishing length (total accesses; '-' = not \
         distinguishable within bounds):"
    );
    let _ = write!(out, "      ");
    for j in 0..n {
        let _ = write!(out, "{j:>3}");
    }
    out.push('\n');
    for (i, row) in matrix.iter().enumerate() {
        let _ = write!(out, "  {i:>3} ");
        for (j, cell) in row.iter().enumerate() {
            match (i == j, cell) {
                (true, _) => {
                    let _ = write!(out, "  .");
                }
                (false, Some(len)) => {
                    let _ = write!(out, "{len:>3}");
                }
                (false, None) => {
                    let _ = write!(out, "  -");
                }
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "legend:");
    for (i, name) in names.iter().enumerate() {
        let _ = writeln!(out, "  {i:>3} = {name}");
    }
    out
}

/// Renders the verdict matrix as CSV: one row per model, one column per
/// test, cells `allowed` / `forbidden`.
#[must_use]
pub fn csv_matrix(expl: &Exploration) -> String {
    let mut out = String::from("model");
    for test in &expl.tests {
        let _ = write!(out, ",{}", test.name());
    }
    out.push('\n');
    for (m, model) in expl.models.iter().enumerate() {
        let _ = write!(out, "{}", model.name().replace(',', ";"));
        for t in 0..expl.tests.len() {
            let _ = write!(
                out,
                ",{}",
                if expl.verdicts[m].allowed(t) {
                    "allowed"
                } else {
                    "forbidden"
                }
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use mcm_axiomatic::ExplicitChecker;
    use mcm_models::{catalog, named};

    #[test]
    fn text_report_mentions_the_headline_numbers() {
        let expl = Exploration::run(
            paper::digit_space_models(false),
            paper::comparison_tests(false),
            &ExplicitChecker::new(),
        );
        let report = paper::report_from(expl);
        let text = text(&report);
        assert!(text.contains("36 models"));
        assert!(text.contains("equivalence classes: 30"));
        assert!(text.contains("equivalent pairs: 6"));
        assert!(text.contains("-->"));
    }

    #[test]
    fn streaming_summary_reads_like_a_sentence() {
        let stats = crate::space::SweepStats {
            total_pairs: 200,
            unique_pairs: 100,
            cache_hits: 40,
            cache_hits_disk: 0,
            checker_calls: 60,
            canonical_tests: 50,
            distinct_models: 2,
            tests_streamed: 100,
            peak_batch: 8,
            semantic_merged_models: 1,
            prefilter_groups: 30,
            prefilter_saved_calls: 10,
            sat: Default::default(),
            batch: mcm_axiomatic::BatchStats {
                rows: 50,
                models_checked: 100,
                model_groups: 25,
                ..Default::default()
            },
        };
        let line = streaming_summary(&stats);
        assert!(line.contains("streamed 100 tests"));
        assert!(line.contains("50 kept"));
        assert!(line.contains("peak 8 tests in memory"));
        assert!(line.contains("60 checker calls"));
        assert!(line.contains("1 models merged semantically"));
        assert!(line.contains("prefilter saved 10 calls"));
        assert!(line.contains("batched 50 rows into 25 model groups"));
        assert!(line.contains("4.0x row collapse"));
    }

    #[test]
    fn length_matrix_renders_cells_and_legend() {
        let names = vec!["SC".to_string(), "TSO".to_string(), "PSO".to_string()];
        let matrix = vec![
            vec![None, Some(4), Some(4)],
            vec![Some(4), None, None],
            vec![Some(4), None, None],
        ];
        let text = length_matrix_text(&names, &matrix);
        assert!(text.contains("minimal distinguishing length"));
        assert!(text.contains("  4"));
        assert!(text.contains("  -"));
        assert!(text.contains("0 = SC"));
        assert!(text.contains("2 = PSO"));
    }

    #[test]
    fn csv_matrix_is_rectangular() {
        let expl = Exploration::run(
            vec![named::sc(), named::tso()],
            catalog::nine_tests(),
            &ExplicitChecker::new(),
        );
        let csv = csv_matrix(&expl);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 models
        let columns = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), columns);
        }
        assert!(lines[1].starts_with("SC,"));
        assert!(csv.contains("forbidden"));
    }
}
