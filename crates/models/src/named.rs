//! The named hardware models of §2.4, written exactly as the paper writes
//! their must-not-reorder functions.
//!
//! The integration suite verifies (with the comparison tool itself) that
//! each of these coincides with its digit-model counterpart: TSO ≡ M4044,
//! PSO ≡ M1044, IBM370 ≡ M4144, SC ≡ M4444, RMO (without control deps)
//! ≡ M1032, Alpha-style ≡ M1030.

use mcm_core::{ArgPos, Atom, Formula, MemoryModel};

use ArgPos::{First, Second};

fn write_x() -> Formula {
    Formula::atom(Atom::IsWrite(First))
}

fn write_y() -> Formula {
    Formula::atom(Atom::IsWrite(Second))
}

fn read_x() -> Formula {
    Formula::atom(Atom::IsRead(First))
}

fn read_y() -> Formula {
    Formula::atom(Atom::IsRead(Second))
}

fn same_addr() -> Formula {
    Formula::atom(Atom::SameAddr)
}

fn data_dep() -> Formula {
    Formula::atom(Atom::DataDep)
}

fn ctrl_dep() -> Formula {
    Formula::atom(Atom::CtrlDep)
}

/// Sequential consistency: no reordering at all (`F = True`; see the note
/// on the paper's `F_SC` typo in [`mcm_core::formula::Formula::Const`]).
#[must_use]
pub fn sc() -> MemoryModel {
    MemoryModel::new("SC", Formula::always())
}

/// IBM 370: writes may pass later reads **except** reads of the same
/// address; everything else stays ordered.
///
/// `F(x,y) = (Write(x) ∧ Read(y) ∧ SameAddr) ∨ (Write(x) ∧ Write(y)) ∨
/// Read(x) ∨ Fence(x) ∨ Fence(y)`.
#[must_use]
pub fn ibm370() -> MemoryModel {
    MemoryModel::new(
        "IBM370",
        Formula::or([
            Formula::and([write_x(), read_y(), same_addr()]),
            Formula::and([write_x(), write_y()]),
            read_x(),
            Formula::fence_either(),
        ]),
    )
}

/// SPARC TSO: writes may pass later reads even of the same address (load
/// forwarding).
///
/// `F(x,y) = (Write(x) ∧ Write(y)) ∨ Read(x) ∨ Fence(x) ∨ Fence(y)`.
#[must_use]
pub fn tso() -> MemoryModel {
    MemoryModel::new(
        "TSO",
        Formula::or([
            Formula::and([write_x(), write_y()]),
            read_x(),
            Formula::fence_either(),
        ]),
    )
}

/// Intel x86 (the paper treats it as TSO).
#[must_use]
pub fn x86() -> MemoryModel {
    tso().renamed("x86")
}

/// SPARC PSO: like TSO, but writes to *different* addresses may also
/// reorder with each other.
///
/// `F(x,y) = (Write(x) ∧ Write(y) ∧ SameAddr) ∨ Read(x) ∨ Fence(x) ∨
/// Fence(y)`.
#[must_use]
pub fn pso() -> MemoryModel {
    MemoryModel::new(
        "PSO",
        Formula::or([
            Formula::and([write_x(), write_y(), same_addr()]),
            read_x(),
            Formula::fence_either(),
        ]),
    )
}

/// SPARC RMO as the paper writes it: everything reorders except fences,
/// dependent instructions and accesses before a same-address write.
///
/// `F(x,y) = (Write(y) ∧ SameAddr) ∨ Fence(x) ∨ Fence(y) ∨ DataDep ∨
/// ControlDep`.
#[must_use]
pub fn rmo() -> MemoryModel {
    MemoryModel::new(
        "RMO",
        Formula::or([
            Formula::and([write_y(), same_addr()]),
            Formula::fence_either(),
            data_dep(),
            ctrl_dep(),
        ]),
    )
}

/// RMO without its dependency clauses — the `M1010` point of Figure 4.
#[must_use]
pub fn rmo_without_dependencies() -> MemoryModel {
    MemoryModel::new(
        "RMO-nodep",
        Formula::or([
            Formula::and([write_y(), same_addr()]),
            Formula::fence_either(),
        ]),
    )
}

/// An Alpha-style model: same-address coherence and read-to-write
/// dependencies order execution, but dependent *reads* do not (the famous
/// Alpha relaxation) — `M1030` in digit terms.
///
/// `F(x,y) = (Write(y) ∧ (SameAddr ∨ DataDep)) ∨ Fence(x) ∨ Fence(y)`.
#[must_use]
pub fn alpha() -> MemoryModel {
    MemoryModel::new(
        "Alpha",
        Formula::or([
            Formula::and([write_y(), Formula::or([same_addr(), data_dep()])]),
            Formula::fence_either(),
        ]),
    )
}

/// Every named model, for catalog listings.
#[must_use]
pub fn all_named() -> Vec<MemoryModel> {
    vec![
        sc(),
        tso(),
        x86(),
        pso(),
        ibm370(),
        rmo(),
        rmo_without_dependencies(),
        alpha(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_have_distinct_names() {
        let models = all_named();
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        let mut deduped: Vec<&str> = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn formulas_match_paper_text() {
        assert_eq!(sc().formula().to_string(), "True");
        assert_eq!(
            tso().formula().to_string(),
            "Write(x) ∧ Write(y) ∨ Read(x) ∨ Fence(x) ∨ Fence(y)"
        );
        assert!(ibm370().formula().to_string().contains("SameAddr"));
        assert!(rmo().formula().uses_dependencies());
        assert!(!rmo_without_dependencies().formula().uses_dependencies());
    }

    #[test]
    fn x86_is_tso_renamed() {
        assert_eq!(x86().formula(), tso().formula());
        assert_eq!(x86().name(), "x86");
    }
}
