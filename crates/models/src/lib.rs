//! # mcm-models
//!
//! Concrete memory models and litmus tests:
//!
//! * [`named`] — SC, TSO, x86, PSO, IBM370, RMO and an Alpha-style model,
//!   with must-not-reorder functions transcribed from the paper's §2.4;
//! * [`choice`] / [`digit`] — the §4.2 exploration space: per-pair
//!   reordering choices and the 90 valid `M{ww}{wr}{rw}{rr}` digit models
//!   (36 without dependency discrimination);
//! * [`catalog`] — Figure 1's Test A, the nine contrasting tests L1–L9 of
//!   Figure 3, and the classic SB/MP/LB/CoRR/IRIW shapes.
//!
//! ## Example
//!
//! ```
//! use mcm_models::digit::DigitModel;
//!
//! let tso: DigitModel = "M4044".parse().unwrap();
//! assert_eq!(tso.conventional_name(), Some("TSO/x86"));
//! assert_eq!(DigitModel::all().len(), 90);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod choice;
pub mod digit;
pub mod named;

pub use choice::ReorderChoice;
pub use digit::{DigitModel, InvalidDigitModel};
