//! The digit model space `M{ww}{wr}{rw}{rr}` explored in §4.2.
//!
//! A digit model assigns one [`ReorderChoice`] to each of the four access
//! pair kinds; its must-not-reorder function is
//!
//! ```text
//! F(x,y) =  Fence(x) ∨ Fence(y)
//!        ∨ (Write(x) ∧ Write(y) ∧ cond_ww)
//!        ∨ (Write(x) ∧ Read(y)  ∧ cond_wr)
//!        ∨ (Read(x)  ∧ Write(y) ∧ cond_rw)
//!        ∨ (Read(x)  ∧ Read(y)  ∧ cond_rr)
//! ```
//!
//! Not every digit combination is meaningful (§4.2): reordering same-address
//! write-write or read-write pairs would violate single-thread consistency,
//! and writes generate no dependencies, so the valid choices are
//!
//! * `ww ∈ {1, 4}` (2 choices),
//! * `wr ∈ {0, 1, 4}` (3),
//! * `rw ∈ {1, 3, 4}` (3),
//! * `rr ∈ {0, 1, 2, 3, 4}` (5),
//!
//! for a total of **90 models**; restricting to dependency-free digits
//! (`{0, 1, 4}`) leaves **36**.

use std::fmt;
use std::str::FromStr;

use mcm_core::{ArgPos, Atom, Formula, MemoryModel};

use crate::choice::ReorderChoice;

/// A model in the §4.2 space, identified by its four reorder choices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DigitModel {
    /// Write-write choice (valid: `DiffAddr`, `Never`).
    pub ww: ReorderChoice,
    /// Write-read choice (valid: `Always`, `DiffAddr`, `Never`).
    pub wr: ReorderChoice,
    /// Read-write choice (valid: `DiffAddr`, `DiffAddrNoDep`, `Never`).
    pub rw: ReorderChoice,
    /// Read-read choice (all five valid).
    pub rr: ReorderChoice,
}

/// Error for invalid digit-model names or digit combinations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidDigitModel(String);

impl fmt::Display for InvalidDigitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit model: {}", self.0)
    }
}

impl std::error::Error for InvalidDigitModel {}

impl DigitModel {
    /// The valid write-write choices.
    pub const WW_CHOICES: [ReorderChoice; 2] = [ReorderChoice::DiffAddr, ReorderChoice::Never];
    /// The valid write-read choices.
    pub const WR_CHOICES: [ReorderChoice; 3] = [
        ReorderChoice::Always,
        ReorderChoice::DiffAddr,
        ReorderChoice::Never,
    ];
    /// The valid read-write choices.
    pub const RW_CHOICES: [ReorderChoice; 3] = [
        ReorderChoice::DiffAddr,
        ReorderChoice::DiffAddrNoDep,
        ReorderChoice::Never,
    ];
    /// The valid read-read choices.
    pub const RR_CHOICES: [ReorderChoice; 5] = ReorderChoice::ALL;

    /// Creates a digit model, validating the §4.2 choice restrictions.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDigitModel`] if a choice is outside its valid set
    /// (e.g. `ww = 0`, which would let same-address writes reorder and
    /// break single-thread consistency).
    pub fn new(
        ww: ReorderChoice,
        wr: ReorderChoice,
        rw: ReorderChoice,
        rr: ReorderChoice,
    ) -> Result<Self, InvalidDigitModel> {
        if !Self::WW_CHOICES.contains(&ww) {
            return Err(InvalidDigitModel(format!("ww digit {} not in {{1,4}}", ww.digit())));
        }
        if !Self::WR_CHOICES.contains(&wr) {
            return Err(InvalidDigitModel(format!("wr digit {} not in {{0,1,4}}", wr.digit())));
        }
        if !Self::RW_CHOICES.contains(&rw) {
            return Err(InvalidDigitModel(format!("rw digit {} not in {{1,3,4}}", rw.digit())));
        }
        if !Self::RR_CHOICES.contains(&rr) {
            return Err(InvalidDigitModel(format!("rr digit {} invalid", rr.digit())));
        }
        Ok(DigitModel { ww, wr, rw, rr })
    }

    /// The canonical name, e.g. `M4044`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "M{}{}{}{}",
            self.ww.digit(),
            self.wr.digit(),
            self.rw.digit(),
            self.rr.digit()
        )
    }

    /// The well-known name of this model, if it has one (paper Figure 4).
    #[must_use]
    pub fn conventional_name(&self) -> Option<&'static str> {
        match self.name().as_str() {
            "M4444" => Some("SC"),
            "M4044" => Some("TSO/x86"),
            "M1044" => Some("PSO"),
            "M4144" => Some("IBM370"),
            "M1010" => Some("RMO (no deps)"),
            "M1032" => Some("RMO"),
            "M1030" => Some("Alpha"),
            _ => None,
        }
    }

    /// Whether any choice discriminates on data dependencies.
    #[must_use]
    pub fn uses_dependencies(&self) -> bool {
        [self.ww, self.wr, self.rw, self.rr]
            .iter()
            .any(|c| c.uses_dependencies())
    }

    /// Builds the must-not-reorder function (see the module docs).
    #[must_use]
    pub fn formula(&self) -> Formula {
        use ArgPos::{First, Second};
        let pair = |a: Atom, b: Atom, cond: Formula| Formula::pair(a, b, cond);
        Formula::or([
            Formula::fence_either(),
            pair(
                Atom::IsWrite(First),
                Atom::IsWrite(Second),
                self.ww.condition(),
            ),
            pair(
                Atom::IsWrite(First),
                Atom::IsRead(Second),
                self.wr.condition(),
            ),
            pair(
                Atom::IsRead(First),
                Atom::IsWrite(Second),
                self.rw.condition(),
            ),
            pair(
                Atom::IsRead(First),
                Atom::IsRead(Second),
                self.rr.condition(),
            ),
        ])
    }

    /// Materialises the [`MemoryModel`] (named `M####`).
    #[must_use]
    pub fn to_model(&self) -> MemoryModel {
        MemoryModel::new(self.name(), self.formula())
    }

    /// All 90 valid digit models, in lexicographic digit order.
    #[must_use]
    pub fn all() -> Vec<DigitModel> {
        let mut out = Vec::with_capacity(90);
        for ww in Self::WW_CHOICES {
            for wr in Self::WR_CHOICES {
                for rw in Self::RW_CHOICES {
                    for rr in Self::RR_CHOICES {
                        out.push(DigitModel { ww, wr, rw, rr });
                    }
                }
            }
        }
        out
    }

    /// The 36 dependency-free models (digits from `{0, 1, 4}` only) —
    /// the space drawn in Figure 4.
    #[must_use]
    pub fn all_without_dependencies() -> Vec<DigitModel> {
        Self::all()
            .into_iter()
            .filter(|m| !m.uses_dependencies())
            .collect()
    }
}

impl FromStr for DigitModel {
    type Err = InvalidDigitModel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix('M')
            .ok_or_else(|| InvalidDigitModel(format!("`{s}` does not start with M")))?;
        let ds: Vec<u8> = digits
            .chars()
            .map(|c| {
                c.to_digit(10)
                    .map(|d| d as u8)
                    .ok_or_else(|| InvalidDigitModel(format!("`{s}` has a non-digit")))
            })
            .collect::<Result<_, _>>()?;
        if ds.len() != 4 {
            return Err(InvalidDigitModel(format!("`{s}` must have four digits")));
        }
        let choice = |d: u8| {
            ReorderChoice::from_digit(d)
                .ok_or_else(|| InvalidDigitModel(format!("digit {d} out of range")))
        };
        DigitModel::new(choice(ds[0])?, choice(ds[1])?, choice(ds[2])?, choice(ds[3])?)
    }
}

impl fmt::Display for DigitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        if let Some(conventional) = self.conventional_name() {
            write!(f, " ({conventional})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_ninety_models() {
        let all = DigitModel::all();
        assert_eq!(all.len(), 90);
        let mut names: Vec<String> = all.iter().map(DigitModel::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 90, "names are unique");
    }

    #[test]
    fn thirty_six_without_dependencies() {
        let nodep = DigitModel::all_without_dependencies();
        assert_eq!(nodep.len(), 36);
        assert!(nodep.iter().all(|m| !m.uses_dependencies()));
        assert!(nodep.iter().all(|m| !m.formula().uses_dependencies()));
    }

    #[test]
    fn names_parse_back() {
        for model in DigitModel::all() {
            let parsed: DigitModel = model.name().parse().unwrap();
            assert_eq!(parsed, model);
        }
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        assert!("M0044".parse::<DigitModel>().is_err()); // ww=0
        assert!("M4244".parse::<DigitModel>().is_err()); // wr=2
        assert!("M4004".parse::<DigitModel>().is_err()); // rw=0
        assert!("M4042".parse::<DigitModel>().is_ok()); // rr=2 is fine
        assert!("M404".parse::<DigitModel>().is_err()); // too short
        assert!("4044".parse::<DigitModel>().is_err()); // missing M
        assert!("M40x4".parse::<DigitModel>().is_err()); // non-digit
        assert!("M4054".parse::<DigitModel>().is_err()); // digit 5
    }

    #[test]
    fn conventional_names_match_the_paper() {
        let named: Vec<(String, &str)> = DigitModel::all()
            .iter()
            .filter_map(|m| m.conventional_name().map(|n| (m.name(), n)))
            .collect();
        assert!(named.contains(&("M4444".to_string(), "SC")));
        assert!(named.contains(&("M4044".to_string(), "TSO/x86")));
        assert!(named.contains(&("M1044".to_string(), "PSO")));
        assert!(named.contains(&("M4144".to_string(), "IBM370")));
        assert!(named.contains(&("M1010".to_string(), "RMO (no deps)")));
    }

    #[test]
    fn formula_mentions_dependencies_only_when_digits_do() {
        let tso: DigitModel = "M4044".parse().unwrap();
        assert!(!tso.formula().uses_dependencies());
        let rmo: DigitModel = "M1032".parse().unwrap();
        assert!(rmo.formula().uses_dependencies());
    }

    #[test]
    fn display_includes_conventional_name() {
        let sc: DigitModel = "M4444".parse().unwrap();
        assert_eq!(sc.to_string(), "M4444 (SC)");
        let anon: DigitModel = "M1111".parse().unwrap();
        assert_eq!(anon.to_string(), "M1111");
    }
}
