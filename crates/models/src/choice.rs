//! The per-pair reordering choices of §4.2.
//!
//! For each ordered pair of access kinds (write-write, write-read,
//! read-write, read-read), a model in the explored space picks one of five
//! options for when reordering is **allowed**:
//!
//! | digit | reordering allowed …                 | must-not-reorder condition |
//! |-------|--------------------------------------|----------------------------|
//! | 0     | always                               | `False`                    |
//! | 1     | for accesses to different addresses  | `SameAddr(x,y)`            |
//! | 2     | when there are no data dependencies  | `DataDep(x,y)`             |
//! | 3     | different addresses **and** no deps  | `SameAddr ∨ DataDep`       |
//! | 4     | never                                | `True`                     |

use std::fmt;

use mcm_core::{Atom, Formula};

/// One of the five reordering options (digits 0–4 of a model name).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ReorderChoice {
    /// 0 — reordering always allowed.
    Always,
    /// 1 — reordering allowed only for accesses to different addresses.
    DiffAddr,
    /// 2 — reordering allowed only when there is no data dependency.
    NoDep,
    /// 3 — reordering allowed only for different addresses with no deps.
    DiffAddrNoDep,
    /// 4 — reordering never allowed.
    Never,
}

impl ReorderChoice {
    /// All five choices, in digit order.
    pub const ALL: [ReorderChoice; 5] = [
        ReorderChoice::Always,
        ReorderChoice::DiffAddr,
        ReorderChoice::NoDep,
        ReorderChoice::DiffAddrNoDep,
        ReorderChoice::Never,
    ];

    /// The digit used in model names (`M4044` etc.).
    #[must_use]
    pub fn digit(self) -> u8 {
        match self {
            ReorderChoice::Always => 0,
            ReorderChoice::DiffAddr => 1,
            ReorderChoice::NoDep => 2,
            ReorderChoice::DiffAddrNoDep => 3,
            ReorderChoice::Never => 4,
        }
    }

    /// Inverse of [`ReorderChoice::digit`].
    #[must_use]
    pub fn from_digit(digit: u8) -> Option<Self> {
        Self::ALL.get(usize::from(digit)).copied()
    }

    /// The *must-not-reorder* condition this choice contributes for its
    /// access-kind pair (see the module table).
    #[must_use]
    pub fn condition(self) -> Formula {
        match self {
            ReorderChoice::Always => Formula::never(),
            ReorderChoice::DiffAddr => Formula::atom(Atom::SameAddr),
            ReorderChoice::NoDep => Formula::atom(Atom::DataDep),
            ReorderChoice::DiffAddrNoDep => Formula::or([
                Formula::atom(Atom::SameAddr),
                Formula::atom(Atom::DataDep),
            ]),
            ReorderChoice::Never => Formula::always(),
        }
    }

    /// Whether the choice discriminates on data dependencies (digits 2, 3).
    #[must_use]
    pub fn uses_dependencies(self) -> bool {
        matches!(self, ReorderChoice::NoDep | ReorderChoice::DiffAddrNoDep)
    }
}

impl fmt::Display for ReorderChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ReorderChoice::Always => "always",
            ReorderChoice::DiffAddr => "different addresses",
            ReorderChoice::NoDep => "no data dependencies",
            ReorderChoice::DiffAddrNoDep => "different addresses and no data dependencies",
            ReorderChoice::Never => "never",
        };
        write!(f, "{text}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_round_trip() {
        for choice in ReorderChoice::ALL {
            assert_eq!(ReorderChoice::from_digit(choice.digit()), Some(choice));
        }
        assert_eq!(ReorderChoice::from_digit(5), None);
    }

    #[test]
    fn dependency_usage() {
        assert!(!ReorderChoice::Always.uses_dependencies());
        assert!(!ReorderChoice::DiffAddr.uses_dependencies());
        assert!(ReorderChoice::NoDep.uses_dependencies());
        assert!(ReorderChoice::DiffAddrNoDep.uses_dependencies());
        assert!(!ReorderChoice::Never.uses_dependencies());
    }

    #[test]
    fn conditions_have_expected_shape() {
        assert_eq!(ReorderChoice::Always.condition(), Formula::never());
        assert_eq!(ReorderChoice::Never.condition(), Formula::always());
        assert!(ReorderChoice::NoDep.condition().uses_dependencies());
        assert!(!ReorderChoice::DiffAddr.condition().uses_dependencies());
    }
}
