//! The paper's litmus tests (Figures 1 and 3) plus the classic suite.
//!
//! Tests L1–L9 are transcribed exactly from Figure 3; §4.2 proves they
//! suffice to contrast every pair of non-equivalent models in the explored
//! space. Test A is Figure 1's TSO example. The classic tests (SB, MP, LB,
//! CoRR, IRIW) are standard names for shapes the paper uses anonymously and
//! serve to validate the checkers against community folklore.

use mcm_core::{LitmusTest, Loc, Outcome, Program, Reg, RegExpr, ThreadId, Value};

const T1: ThreadId = ThreadId(0);
const T2: ThreadId = ThreadId(1);
const T3: ThreadId = ThreadId(2);
const T4: ThreadId = ThreadId(3);

fn must(test: Result<LitmusTest, mcm_core::CoreError>) -> LitmusTest {
    test.expect("catalog tests are well-formed by construction")
}

/// Figure 1's "Test A": allowed under TSO thanks to load forwarding,
/// forbidden under SC.
///
/// ```text
/// T1                | T2
/// Write X <- 1      | Write Y <- 2
/// Fence             | Read Y -> r2
/// Read Y -> r1      | Read X -> r3
/// Outcome: r1 = 0; r2 = 2; r3 = 0
/// ```
#[must_use]
pub fn test_a() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .fence()
        .read(Loc::Y, Reg(1))
        .thread()
        .write(Loc::Y, Value(2))
        .read(Loc::Y, Reg(2))
        .read(Loc::X, Reg(3))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(0))
        .constrain(T2, Reg(2), Value(2))
        .constrain(T2, Reg(3), Value(0));
    must(LitmusTest::new("TestA", program, outcome))
        .with_description("Figure 1: TSO load forwarding (allowed under TSO, forbidden under SC)")
}

/// L1 — write-write reordering, observed through a fenced reader.
#[must_use]
pub fn l1() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .write(Loc::Y, Value(1))
        .thread()
        .read(Loc::Y, Reg(1))
        .fence()
        .read(Loc::X, Reg(2))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T2, Reg(1), Value(1))
        .constrain(T2, Reg(2), Value(0));
    must(LitmusTest::new("L1", program, outcome))
        .with_description("write-write reordering to different addresses")
}

/// L2 — same-address read-read reordering (coherence of reads).
#[must_use]
pub fn l2() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .write(Loc::X, Value(2))
        .thread()
        .read(Loc::X, Reg(1))
        .read(Loc::X, Reg(2))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T2, Reg(1), Value(2))
        .constrain(T2, Reg(2), Value(0));
    must(LitmusTest::new("L2", program, outcome))
        .with_description("read-read reordering to the same address")
}

/// L3 — independent read-read reordering (message passing with a fenced
/// writer).
#[must_use]
pub fn l3() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .fence()
        .write(Loc::Y, Value(2))
        .thread()
        .read(Loc::Y, Reg(1))
        .read(Loc::X, Reg(2))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T2, Reg(1), Value(2))
        .constrain(T2, Reg(2), Value(0));
    must(LitmusTest::new("L3", program, outcome))
        .with_description("read-read reordering to different addresses")
}

/// L4 — *dependent* read-read reordering: the second read's address depends
/// on the first (`t1 = r1 - r1 + X`).
#[must_use]
pub fn l4() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .fence()
        .write(Loc::Y, Value(2))
        .thread()
        .read(Loc::Y, Reg(1))
        .dep_addr(Reg(2), Reg(1), Loc::X)
        .read_indirect(Reg(2), Reg(3))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T2, Reg(1), Value(2))
        .constrain(T2, Reg(3), Value(0));
    must(LitmusTest::new("L4", program, outcome))
        .with_description("dependent read-read reordering (address dependency)")
}

/// L5 — independent read-write reordering (load buffering).
#[must_use]
pub fn l5() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .read(Loc::X, Reg(1))
        .write(Loc::Y, Value(1))
        .thread()
        .read(Loc::Y, Reg(2))
        .write(Loc::X, Value(1))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(1))
        .constrain(T2, Reg(2), Value(1));
    must(LitmusTest::new("L5", program, outcome))
        .with_description("read-write reordering to different addresses")
}

/// L6 — *dependent* read-write reordering: each write's value depends on
/// the preceding read (`t = r - r + 1`).
#[must_use]
pub fn l6() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .read(Loc::X, Reg(1))
        .dep_const(Reg(3), Reg(1), Value(1))
        .write_expr(Loc::Y, RegExpr::Reg(Reg(3)))
        .thread()
        .read(Loc::Y, Reg(2))
        .dep_const(Reg(4), Reg(2), Value(1))
        .write_expr(Loc::X, RegExpr::Reg(Reg(4)))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(1))
        .constrain(T2, Reg(2), Value(1));
    must(LitmusTest::new("L6", program, outcome))
        .with_description("dependent read-write reordering (data dependency)")
}

/// L7 — write-read reordering to different addresses (store buffering).
#[must_use]
pub fn l7() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .read(Loc::Y, Reg(1))
        .thread()
        .write(Loc::Y, Value(1))
        .read(Loc::X, Reg(2))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(0))
        .constrain(T2, Reg(2), Value(0));
    must(LitmusTest::new("L7", program, outcome))
        .with_description("write-read reordering to different addresses (store buffering)")
}

/// L8 — write-read reordering to the *same* address, witnessed through a
/// dependent read chain (the Case 5.1 template of Theorem 1).
#[must_use]
pub fn l8() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .read(Loc::X, Reg(1))
        .dep_addr(Reg(2), Reg(1), Loc::Y)
        .read_indirect(Reg(2), Reg(3))
        .thread()
        .write(Loc::Y, Value(1))
        .read(Loc::Y, Reg(4))
        .dep_addr(Reg(5), Reg(4), Loc::X)
        .read_indirect(Reg(5), Reg(6))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(1))
        .constrain(T1, Reg(3), Value(0))
        .constrain(T2, Reg(4), Value(1))
        .constrain(T2, Reg(6), Value(0));
    must(LitmusTest::new("L8", program, outcome))
        .with_description("write-read reordering to the same address (read-read closing segment)")
}

/// L9 — write-read reordering to the *same* address, witnessed through a
/// dependent write (the Case 5.2 template of Theorem 1).
#[must_use]
pub fn l9() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .read(Loc::X, Reg(1))
        .dep_const(Reg(2), Reg(1), Value(1))
        .write_expr(Loc::Y, RegExpr::Reg(Reg(2)))
        .thread()
        .read(Loc::Y, Reg(3))
        .dep_const(Reg(4), Reg(3), Value(2))
        .write_expr(Loc::X, RegExpr::Reg(Reg(4)))
        .read(Loc::X, Reg(5))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T1, Reg(1), Value(1))
        .constrain(T2, Reg(3), Value(1))
        .constrain(T2, Reg(5), Value(1));
    must(LitmusTest::new("L9", program, outcome))
        .with_description("write-read reordering to the same address (read-write closing segment)")
}

/// The nine contrasting litmus tests of Figure 3, in order.
#[must_use]
pub fn nine_tests() -> Vec<LitmusTest> {
    vec![l1(), l2(), l3(), l4(), l5(), l6(), l7(), l8(), l9()]
}

// ---------------------------------------------------------------------------
// Classic community tests, for checker validation.
// ---------------------------------------------------------------------------

/// Store buffering (identical shape to [`l7`], community name).
#[must_use]
pub fn sb() -> LitmusTest {
    l7().renamed("SB").with_description("store buffering (SB)")
}

/// Message passing: is the reader guaranteed to see the data once it sees
/// the flag?
#[must_use]
pub fn mp() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .write(Loc::Y, Value(1))
        .thread()
        .read(Loc::Y, Reg(1))
        .read(Loc::X, Reg(2))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T2, Reg(1), Value(1))
        .constrain(T2, Reg(2), Value(0));
    must(LitmusTest::new("MP", program, outcome)).with_description("message passing (MP)")
}

/// Load buffering (identical shape to [`l5`], community name).
#[must_use]
pub fn lb() -> LitmusTest {
    l5().renamed("LB").with_description("load buffering (LB)")
}

/// Coherence of reads: two reads of the same location must not see writes
/// in opposite orders (identical shape to [`l2`], community name).
#[must_use]
pub fn corr() -> LitmusTest {
    l2().renamed("CoRR").with_description("coherence of read-read (CoRR)")
}

/// Independent reads of independent writes: do two readers agree on the
/// order of two independent writes? Forbidden throughout the paper's class
/// (writes are atomic — §2.2 excludes non-store-atomic models like
/// PowerPC), even in the weakest model, once each reader's reads are
/// fenced.
#[must_use]
pub fn iriw_fenced() -> LitmusTest {
    let program = Program::builder()
        .thread()
        .write(Loc::X, Value(1))
        .thread()
        .write(Loc::Y, Value(1))
        .thread()
        .read(Loc::X, Reg(1))
        .fence()
        .read(Loc::Y, Reg(2))
        .thread()
        .read(Loc::Y, Reg(3))
        .fence()
        .read(Loc::X, Reg(4))
        .build()
        .expect("valid");
    let outcome = Outcome::new()
        .constrain(T3, Reg(1), Value(1))
        .constrain(T3, Reg(2), Value(0))
        .constrain(T4, Reg(3), Value(1))
        .constrain(T4, Reg(4), Value(0));
    must(LitmusTest::new("IRIW+fences", program, outcome))
        .with_description("independent reads of independent writes, fenced readers")
}

/// Every catalog test (paper tests first, classics after).
#[must_use]
pub fn all_tests() -> Vec<LitmusTest> {
    sections()
        .into_iter()
        .flat_map(|section| section.tests)
        .collect()
}

/// One named group of catalog tests — the structured view of the catalog
/// that serializable reports render from.
#[derive(Clone, Debug)]
pub struct CatalogSection {
    /// Stable section identifier (`figure1`, `figure3`, `classics`).
    pub name: &'static str,
    /// Where the tests come from in the paper (or the community).
    pub title: &'static str,
    /// The tests of the section, in catalog order.
    pub tests: Vec<LitmusTest>,
}

/// The catalog grouped by provenance: Figure 1's Test A, the nine
/// contrasting tests of Figure 3, and the classic community tests.
/// Flattening the sections in order yields exactly [`all_tests`].
#[must_use]
pub fn sections() -> Vec<CatalogSection> {
    vec![
        CatalogSection {
            name: "figure1",
            title: "Figure 1: Test A (TSO load forwarding)",
            tests: vec![test_a()],
        },
        CatalogSection {
            name: "figure3",
            title: "Figure 3: the nine contrasting litmus tests",
            tests: nine_tests(),
        },
        CatalogSection {
            name: "classics",
            title: "classic community tests",
            tests: vec![sb(), mp(), lb(), corr(), iriw_fenced()],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_access_counts_respect_theorem1() {
        for test in nine_tests() {
            assert!(
                test.program().access_count() <= 6,
                "{} has more than six accesses",
                test.name()
            );
            assert_eq!(test.program().threads.len(), 2, "{}", test.name());
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<String> = all_tests().iter().map(|t| t.name().to_string()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn l4_and_l8_have_address_dependencies() {
        for test in [l4(), l8()] {
            let exec = test.execution();
            let deps = exec
                .events()
                .iter()
                .flat_map(|x| exec.events().iter().map(move |y| (x.id, y.id)))
                .filter(|(x, y)| exec.addr_dep(*x, *y))
                .count();
            assert!(deps > 0, "{} should contain an address dependency", test.name());
        }
    }

    #[test]
    fn l6_and_l9_have_value_dependencies() {
        for test in [l6(), l9()] {
            let exec = test.execution();
            let deps = exec
                .events()
                .iter()
                .flat_map(|x| exec.events().iter().map(move |y| (x.id, y.id)))
                .filter(|(x, y)| exec.value_dep(*x, *y))
                .count();
            assert!(deps > 0, "{} should contain a data dependency", test.name());
        }
    }

    #[test]
    fn outcomes_render_like_the_paper() {
        assert_eq!(l7().outcome().to_string(), "T1:r1=0; T2:r2=0");
        assert_eq!(
            test_a().outcome().to_string(),
            "T1:r1=0; T2:r2=2; T2:r3=0"
        );
    }

    #[test]
    fn executions_derive_for_all_catalog_tests() {
        for test in all_tests() {
            let exec = test.execution();
            assert!(!exec.events().is_empty(), "{}", test.name());
        }
    }
}
