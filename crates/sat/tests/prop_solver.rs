//! Property tests: the CDCL solver agrees with the brute-force oracle on
//! random small CNF instances, and models returned on Sat actually satisfy
//! every clause.

use mcm_sat::naive::solve_brute_force;
use mcm_sat::{Lit, SatResult, Solver, Var};
use proptest::prelude::*;

/// Strategy producing (num_vars, clauses) with small, adversarial shapes.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (1usize..=10).prop_flat_map(|num_vars| {
        let lit = (0..num_vars, proptest::bool::ANY)
            .prop_map(|(v, pos)| Var::from_index(v).lit(pos));
        let clause = proptest::collection::vec(lit, 1..=4);
        let clauses = proptest::collection::vec(clause, 0..=30);
        clauses.prop_map(move |cs| (num_vars, cs))
    })
}

fn cdcl_solve(num_vars: usize, clauses: &[Vec<Lit>]) -> (SatResult, Option<Vec<bool>>) {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause);
    }
    let result = solver.solve();
    let model = (result == SatResult::Sat).then(|| solver.model());
    (result, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cdcl_matches_brute_force((num_vars, clauses) in cnf_strategy()) {
        let reference = solve_brute_force(num_vars, &clauses);
        let (result, model) = cdcl_solve(num_vars, &clauses);
        prop_assert_eq!(result.is_sat(), reference.is_some());
        if let Some(model) = model {
            for clause in &clauses {
                prop_assert!(
                    clause.iter().any(|l| l.apply(model[l.var().index()])),
                    "returned model violates clause {:?}",
                    clause
                );
            }
        }
    }

    #[test]
    fn assumptions_match_added_units((num_vars, clauses) in cnf_strategy(), seed in 0u64..1000) {
        // Solving with assumptions must agree with solving with those
        // assumptions added as unit clauses.
        let assumed_var = (seed as usize) % num_vars;
        let polarity = seed % 2 == 0;
        let assumption = Var::from_index(assumed_var).lit(polarity);

        let mut with_assumption = Solver::new();
        for _ in 0..num_vars {
            with_assumption.new_var();
        }
        for clause in &clauses {
            with_assumption.add_clause(clause);
        }
        let a = with_assumption.solve_with_assumptions(&[assumption]);

        let mut with_unit = Solver::new();
        for _ in 0..num_vars {
            with_unit.new_var();
        }
        for clause in &clauses {
            with_unit.add_clause(clause);
        }
        with_unit.add_clause(&[assumption]);
        let b = with_unit.solve();

        prop_assert_eq!(a, b);
    }

    #[test]
    fn solver_is_reusable_across_queries((num_vars, clauses) in cnf_strategy()) {
        // Solving twice in a row gives the same answer.
        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for clause in &clauses {
            solver.add_clause(clause);
        }
        let first = solver.solve();
        let second = solver.solve();
        prop_assert_eq!(first, second);
    }
}
