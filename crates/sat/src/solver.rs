//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This is the workspace's substitute for MiniSat (paper §4.1): two-literal
//! watching for unit propagation, VSIDS decision heuristic with phase saving,
//! first-UIP conflict analysis with non-chronological backjumping, Luby
//! restarts and activity-based deletion of learnt clauses.

use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};

/// Result of a satisfiability query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it via [`Solver::value`] or
    /// [`Solver::model`].
    Sat,
    /// The clause set (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the query was satisfiable.
    #[must_use]
    pub fn is_sat(self) -> bool {
        matches!(self, SatResult::Sat)
    }
}

/// Counters describing the work a [`Solver`] has performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decision literals picked.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently retained.
    pub learnt_clauses: u64,
}

impl SolverStats {
    /// Adds `other`'s counters into `self` — used to total the work of
    /// many solver instances (one per query, or one per worker thread).
    /// `learnt_clauses` is a gauge, not a counter; the sum reports the
    /// retained clauses across all absorbed solvers.
    pub fn absorb(&mut self, other: SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
    }

    /// The counters as stable `(name, value)` pairs — the structured view
    /// serializable reports render from, so field names live in one place.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 5] {
        [
            ("decisions", self.decisions),
            ("propagations", self.propagations),
            ("conflicts", self.conflicts),
            ("restarts", self.restarts),
            ("learnt_clauses", self.learnt_clauses),
        ]
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

type ClauseRef = usize;

#[derive(Clone, Copy, Debug)]
struct Watch {
    clause: ClauseRef,
    /// The *other* watched literal, used as a quick satisfiability probe.
    blocker: Lit,
}

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// # Examples
///
/// ```
/// use mcm_sat::{Solver, SatResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause(&[a.positive(), b.positive()]);
/// solver.add_clause(&[a.negative()]);
/// assert_eq!(solver.solve(), SatResult::Sat);
/// assert_eq!(solver.value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by `Lit::code()`: clauses that watch the literal's
    /// *negation* (i.e. must be inspected when that literal becomes false).
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable, if propagated.
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    saved_phase: Vec<bool>,
    /// Set when an empty clause is added or a top-level conflict is found.
    unsat: bool,
    cla_inc: f64,
    num_learnt: usize,
    stats: SolverStats,
    seen: Vec<bool>,
    /// Assumption literals for the current `solve_with_assumptions` call.
    assumptions: Vec<Lit>,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLAUSE_DECAY: f64 = 1.0 / 0.999;
const RESCALE_THRESHOLD: f64 = 1e100;
const LUBY_UNIT: u64 = 128;

impl Solver {
    /// Creates an empty solver with no variables and no clauses.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assign.len()).expect("too many variables"));
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses currently stored (problem + learnt, minus deleted).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats;
        stats.learnt_clauses = self.num_learnt as u64;
        stats
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already known to be unsatisfiable at
    /// the top level after this clause (e.g. the clause is empty, or it
    /// contradicts earlier unit clauses); the solver remains usable and
    /// [`Solver::solve`] will report [`SatResult::Unsat`].
    ///
    /// Tautological clauses (containing `x` and `!x`) are silently dropped;
    /// duplicate literals are merged.
    ///
    /// # Panics
    ///
    /// Panics if any literal mentions a variable not allocated via
    /// [`Solver::new_var`].
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at the top level"
        );
        if self.unsat {
            return false;
        }
        for lit in lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal {lit} uses an unallocated variable"
            );
        }
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, &lit) in sorted.iter().enumerate() {
            if i + 1 < sorted.len() && sorted[i + 1] == !lit {
                return true; // tautology: x and !x both present
            }
            match self.lit_value(lit) {
                LBool::True => return true, // already satisfied at top level
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(lit),
            }
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                // Simplification sorted the literals, which would make
                // every clause watch its two smallest-coded literals;
                // problem sets with many overlapping clauses (blocking
                // clauses especially) would then funnel all watches onto
                // the same variables and propagation would degrade to a
                // linear scan of one giant watch list. Rotating by a
                // per-clause offset spreads the watches evenly. (Any two
                // distinct literals are valid initial watches.)
                let offset = self.clauses.len() % simplified.len();
                simplified.rotate_left(offset);
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions act like temporary unit clauses: they hold for this call
    /// only, which makes incremental queries ("is this test admissible if I
    /// force these orderings?") cheap.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        // Clear any assignment left over from a previous (Sat) call.
        self.cancel_until(0);
        self.assumptions = assumptions.to_vec();
        let result = self.search();
        // Leave the model intact on Sat but pop all decision levels so the
        // solver can be reused; values are snapshotted by `model` callers
        // before further mutation.
        if result == SatResult::Unsat {
            self.cancel_until(0);
        }
        self.assumptions.clear();
        result
    }

    /// Adds a blocking clause forbidding the most recent satisfying
    /// assignment, restricted to `vars`.
    ///
    /// The clause is the disjunction of the negated model values of `vars`
    /// (variables left unassigned by the model count as `false`, matching
    /// [`Solver::model`]). Typical use is model enumeration: solve, read
    /// the model, block it, solve again.
    ///
    /// Returns `false` when the solver becomes unsatisfiable at the top
    /// level as a result (e.g. blocking the only model of a single
    /// variable).
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or mentions an unallocated variable.
    pub fn block_model(&mut self, vars: &[Var]) -> bool {
        self.block_model_with(vars, &[])
    }

    /// [`Solver::block_model`] with extra guard literals appended to the
    /// blocking clause.
    ///
    /// Guards make the clause conditional: pass (the negations of) a set
    /// of activation literals and the model is only excluded while those
    /// activations hold — the idiom used by the synthesis engine to block
    /// a candidate under one size-indexed slot configuration without
    /// affecting others.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or any literal mentions an unallocated
    /// variable.
    pub fn block_model_with(&mut self, vars: &[Var], guard: &[Lit]) -> bool {
        assert!(!vars.is_empty(), "blocking an empty model is ill-defined");
        let mut clause: Vec<Lit> = vars
            .iter()
            .map(|&v| v.lit(!self.value(v).unwrap_or(false)))
            .collect();
        clause.extend_from_slice(guard);
        // A model leaves the trail at a positive decision level; clauses
        // may only be added at the top, so retract the assignment first
        // (callers snapshot the model before blocking it).
        self.cancel_until(0);
        self.add_clause(&clause)
    }

    /// The value of `var` in the most recent satisfying assignment.
    ///
    /// Returns `None` before a successful [`Solver::solve`] call, after the
    /// solver state has been mutated, or for unassigned variables.
    #[must_use]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.assign[var.index()].to_option()
    }

    /// The value of `lit` in the most recent satisfying assignment.
    #[must_use]
    pub fn lit_value_opt(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| lit.apply(v))
    }

    /// Snapshot of the full model after [`SatResult::Sat`].
    ///
    /// Unassigned variables (possible when they occur in no clause) default
    /// to `false`.
    #[must_use]
    pub fn model(&self) -> Vec<bool> {
        self.assign
            .iter()
            .map(|v| v.to_option().unwrap_or(false))
            .collect()
    }

    fn search(&mut self) -> SatResult {
        let mut restarts = 0u64;
        loop {
            let budget = luby(restarts) * LUBY_UNIT;
            match self.search_until(budget) {
                Some(result) => return result,
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Runs CDCL until a result, or `None` after `conflict_budget` conflicts.
    fn search_until(&mut self, conflict_budget: u64) -> Option<SatResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(SatResult::Unsat);
                }
                let (learnt, backtrack_level) = self.analyze(confl);
                self.cancel_until(backtrack_level);
                self.record_learnt(learnt);
                self.decay_activities();
            } else {
                if conflicts >= conflict_budget {
                    return None;
                }
                if self.num_learnt > 2 * self.clauses.len().max(100) {
                    self.reduce_learnt();
                }
                // Extend with assumptions first, then decide.
                match self.pick_branch() {
                    BranchOutcome::Done => return Some(SatResult::Sat),
                    BranchOutcome::AssumptionConflict => return Some(SatResult::Unsat),
                    BranchOutcome::Decided => {}
                }
            }
        }
    }

    fn pick_branch(&mut self) -> BranchOutcome {
        // Honour pending assumptions before free decisions.
        while self.decision_level() < self.assumptions.len() {
            let lit = self.assumptions[self.decision_level()];
            match self.lit_value(lit) {
                LBool::True => {
                    // Already implied; open a dummy level so indices line up.
                    self.trail_lim.push(self.trail.len());
                }
                LBool::False => return BranchOutcome::AssumptionConflict,
                LBool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(lit, None);
                    return BranchOutcome::Decided;
                }
            }
        }
        loop {
            match self.order.pop(&self.activity) {
                None => return BranchOutcome::Done,
                Some(var) => {
                    if self.assign[var.index()] == LBool::Undef {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = var.lit(self.saved_phase[var.index()]);
                        self.enqueue(lit, None);
                        return BranchOutcome::Decided;
                    }
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(lit.is_positive()),
            LBool::False => LBool::from_bool(!lit.is_positive()),
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let idx = lit.var().index();
        self.assign[idx] = LBool::from_bool(lit.is_positive());
        self.level[idx] = self.decision_level() as u32;
        self.reason[idx] = reason;
        self.saved_phase[idx] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Unit propagation; returns a conflicting clause if one arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // `lit` just became true, so `!lit` became false; visit every
            // clause watching `!lit`. Watches for a literal `w` are stored at
            // index `(!w).code()`, so that list is `watches[lit.code()]`.
            let false_lit = !lit;
            let mut watches = std::mem::take(&mut self.watches[lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watches.len() {
                let watch = watches[i];
                if self.lit_value(watch.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = watch.clause;
                if self.clauses[cref].deleted {
                    watches.swap_remove(i);
                    continue;
                }
                // Normalise so lits[1] is the falsified watched literal.
                {
                    let clause = &mut self.clauses[cref];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != watch.blocker && self.lit_value(first) == LBool::True {
                    watches[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch in place of `false_lit`.
                // A replacement candidate is never `false_lit` itself (it is
                // false), so these pushes never touch the list taken above.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let candidate = self.clauses[cref].lits[k];
                    if self.lit_value(candidate) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!candidate).code()].push(Watch {
                            clause: cref,
                            blocker: first,
                        });
                        watches.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            debug_assert!(self.watches[lit.code()].is_empty());
            self.watches[lit.code()] = watches;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut cref = confl;
        let mut trail_idx = self.trail.len();
        // The literal currently being resolved on (`None` only for the
        // initial conflict clause, where every literal is inspected).
        let mut resolved: Option<Lit> = None;
        let current = self.decision_level() as u32;
        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clauses[cref].lits.clone();
            for &q in &lits {
                if resolved == Some(q) {
                    continue;
                }
                let v = q.var().index();
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                self.seen[v] = true;
                self.bump_var(q.var());
                if self.level[v] == current {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            self.seen[p.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                resolved = Some(p);
                break;
            }
            cref = self.reason[p.var().index()].expect("non-decision literal has a reason");
            resolved = Some(p);
        }
        let asserting = !resolved.expect("conflict analysis found a UIP");
        // Clause minimisation: drop literals implied by the rest of the clause.
        let minimized = self.minimize_learnt(&learnt);
        for &lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        let mut clause = Vec::with_capacity(minimized.len() + 1);
        clause.push(asserting);
        clause.extend(minimized);
        let backtrack = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()] as usize)
            .max()
            .unwrap_or(0);
        // Move a literal of the backtrack level into position 1 so the watch
        // invariant (positions 0 and 1 are the last to be falsified) holds.
        if clause.len() > 2 {
            let max_idx = clause[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var().index()])
                .map(|(i, _)| i + 1)
                .expect("non-unit learnt clause");
            clause.swap(1, max_idx);
        }
        (clause, backtrack)
    }

    /// Local clause minimisation: a literal can be removed if its reason
    /// clause's literals are all already in the learnt clause (or level 0).
    fn minimize_learnt(&self, learnt: &[Lit]) -> Vec<Lit> {
        let in_clause: Vec<usize> = learnt.iter().map(|l| l.var().index()).collect();
        learnt
            .iter()
            .copied()
            .filter(|&lit| {
                let v = lit.var().index();
                match self.reason[v] {
                    None => true, // decision: keep
                    Some(cref) => !self.clauses[cref].lits.iter().all(|&q| {
                        q == !lit
                            || self.level[q.var().index()] == 0
                            || in_clause.contains(&q.var().index())
                    }),
                }
            })
            .collect()
    }

    fn record_learnt(&mut self, clause: Vec<Lit>) {
        debug_assert!(!clause.is_empty());
        if clause.len() == 1 {
            self.enqueue(clause[0], None);
            return;
        }
        let asserting = clause[0];
        let cref = self.attach_clause(clause, true);
        self.enqueue(asserting, Some(cref));
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watch {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            clause: cref,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnt += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: self.cla_inc,
            deleted: false,
        });
        cref
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > RESCALE_THRESHOLD {
            for a in &mut self.activity {
                *a /= RESCALE_THRESHOLD;
            }
            self.var_inc /= RESCALE_THRESHOLD;
            self.order.rescaled();
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let clause = &mut self.clauses[cref];
        if !clause.learnt {
            return;
        }
        clause.activity += self.cla_inc;
        if clause.activity > RESCALE_THRESHOLD {
            for c in &mut self.clauses {
                c.activity /= RESCALE_THRESHOLD;
            }
            self.cla_inc /= RESCALE_THRESHOLD;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc *= VAR_DECAY;
        self.cla_inc *= CLAUSE_DECAY;
    }

    /// Deletes the less active half of the learnt clauses (those not
    /// currently acting as a reason for an assignment).
    fn reduce_learnt(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && !self.clauses[i].deleted)
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("activities are finite")
        });
        let mut locked = vec![false; self.clauses.len()];
        for reason in self.reason.iter().flatten() {
            locked[*reason] = true;
        }
        let is_locked = |cref: ClauseRef| locked[cref];
        let half = learnt_refs.len() / 2;
        for &cref in learnt_refs.iter().take(half) {
            if self.clauses[cref].lits.len() > 2 && !is_locked(cref) {
                self.clauses[cref].deleted = true;
                self.num_learnt -= 1;
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BranchOutcome {
    Decided,
    Done,
    AssumptionConflict,
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
#[must_use]
pub fn luby(i: u64) -> u64 {
    // Find the finite subsequence containing index i, then the value.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert!(!s.add_clause(&[v.negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive(), v.negative()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let vs = lits(&mut s, 5);
        for w in vs.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        s.add_clause(&[vs[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for v in vs {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in 0..2 {
            for (i, row) in p.iter().enumerate() {
                for other in p.iter().skip(i + 1) {
                    s.add_clause(&[row[j].negative(), other[j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_five_into_four_is_unsat() {
        let n = 5usize;
        let m = 4usize;
        let mut s = Solver::new();
        let vars: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &vars {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..m {
            for (i, row) in vars.iter().enumerate() {
                for other in vars.iter().skip(i + 1) {
                    s.add_clause(&[row[j].negative(), other[j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.negative(), b.negative()]),
            SatResult::Unsat
        );
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let vs = lits(&mut s, 8);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![vs[0].positive(), vs[1].negative(), vs[2].positive()],
            vec![vs[3].negative(), vs[4].positive()],
            vec![vs[5].positive(), vs[6].positive(), vs[7].negative()],
            vec![vs[0].negative(), vs[7].positive()],
            vec![vs[2].negative(), vs[3].positive()],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        let model = s.model();
        for c in &clauses {
            assert!(c.iter().any(|l| l.apply(model[l.var().index()])));
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 = 1 => x1 = 0, x2 = 1.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[a.positive(), b.positive()]);
            s.add_clause(&[a.negative(), b.negative()]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn block_model_enumerates_all_models() {
        // x ∨ y has exactly three models over {x, y}.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[x.positive(), y.positive()]);
        let mut models = Vec::new();
        while s.solve() == SatResult::Sat {
            models.push((s.value(x).unwrap_or(false), s.value(y).unwrap_or(false)));
            if !s.block_model(&[x, y]) {
                break;
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        models.sort_unstable();
        assert_eq!(models, vec![(false, true), (true, false), (true, true)]);
    }

    #[test]
    fn guarded_blocking_clause_only_applies_under_the_guard() {
        let mut s = Solver::new();
        let x = s.new_var();
        let g = s.new_var();
        s.add_clause(&[x.positive()]);
        assert_eq!(s.solve_with_assumptions(&[g.positive()]), SatResult::Sat);
        // Block x=true only while g holds.
        assert!(s.block_model_with(&[x], &[g.negative()]));
        assert_eq!(s.solve_with_assumptions(&[g.positive()]), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[g.negative()]), SatResult::Sat);
        assert_eq!(s.value(x), Some(true));
    }

    #[test]
    fn solver_is_reusable_after_unsat_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }
}
