//! Indexed max-heap over variables, ordered by VSIDS activity.
//!
//! The solver needs a priority queue supporting `increase-key` (when a
//! variable's activity is bumped) and membership tests (a variable leaves the
//! queue when assigned and re-enters on backtracking), which the standard
//! library's `BinaryHeap` does not provide.

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array.
#[derive(Clone, Debug, Default)]
pub(crate) struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NOT_IN_HEAP`.
    position: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl VarHeap {
    /// Registers a new variable (initially outside the heap).
    pub(crate) fn grow(&mut self) {
        self.position.push(NOT_IN_HEAP);
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.position[var.index()] != NOT_IN_HEAP
    }

    /// Inserts `var` if absent.
    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var.0);
        self.position[var.index()] = pos as u32;
        self.sift_up(pos, activity);
    }

    /// Removes and returns the most active variable.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        self.position[top as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores the heap property after `var`'s activity increased.
    pub(crate) fn update(&mut self, var: Var, activity: &[f64]) {
        let pos = self.position[var.index()];
        if pos != NOT_IN_HEAP {
            self.sift_up(pos as usize, activity);
        }
    }

    /// Rebuilds the heap after all activities were rescaled.
    ///
    /// Rescaling divides every activity by the same constant so the relative
    /// order is untouched; nothing to do, but kept for clarity at call sites.
    pub(crate) fn rescaled(&mut self) {}

    fn less(&self, a: usize, b: usize, activity: &[f64]) -> bool {
        // Max-heap: parent must have the *greater* activity.
        activity[self.heap[a] as usize] < activity[self.heap[b] as usize]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as u32;
        self.position[self.heap[b] as usize] = b as u32;
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(parent, pos, activity) {
                self.swap(parent, pos);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len() && self.less(best, left, activity) {
                best = left;
            }
            if right < self.heap.len() && self.less(best, right, activity) {
                best = right;
            }
            if best == pos {
                return;
            }
            self.swap(pos, best);
            pos = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::default();
        for _ in 0..4 {
            heap.grow();
        }
        for i in 0..4 {
            heap.insert(var(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop(&activity).map(Var::index))
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::default();
        heap.grow();
        heap.grow();
        heap.insert(var(0), &activity);
        heap.insert(var(0), &activity);
        heap.insert(var(1), &activity);
        assert_eq!(heap.pop(&activity), Some(var(1)));
        assert_eq!(heap.pop(&activity), Some(var(0)));
        assert_eq!(heap.pop(&activity), None);
    }

    #[test]
    fn update_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::default();
        for _ in 0..3 {
            heap.grow();
        }
        for i in 0..3 {
            heap.insert(var(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(var(0), &activity);
        assert_eq!(heap.pop(&activity), Some(var(0)));
    }

    #[test]
    fn membership_tracks_pop_and_reinsert() {
        let activity = vec![1.0];
        let mut heap = VarHeap::default();
        heap.grow();
        heap.insert(var(0), &activity);
        assert!(heap.contains(var(0)));
        heap.pop(&activity);
        assert!(!heap.contains(var(0)));
        heap.insert(var(0), &activity);
        assert!(heap.contains(var(0)));
    }
}
