//! DIMACS CNF parsing and printing.
//!
//! Supports the classic `p cnf <vars> <clauses>` header, `c` comment lines,
//! and clauses terminated by `0`. Useful for debugging the solver against
//! external tools and for exporting the litmus admissibility encodings.

use std::error::Error;
use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A CNF formula as parsed from DIMACS text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared (or inferred).
    pub num_vars: usize,
    /// The clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads this formula into a fresh [`Solver`].
    #[must_use]
    pub fn into_solver(&self) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }

    /// Renders the formula in DIMACS format.
    #[must_use]
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let n = lit.var().index() as i64 + 1;
                let signed = if lit.is_positive() { n } else { -n };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Error from [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// literals out of the declared range, or a clause missing its `0`
/// terminator.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut max_var = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let err = |message: &str| ParseDimacsError {
            line: lineno,
            message: message.to_string(),
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(err("duplicate problem line"));
            }
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(err("problem line must be `p cnf <vars> <clauses>`"));
            }
            let vars: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("missing or invalid variable count"))?;
            let ncl: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("missing or invalid clause count"))?;
            num_vars = Some(vars);
            declared_clauses = Some(ncl);
            continue;
        }
        for token in line.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| err(&format!("invalid literal `{token}`")))?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                // Guard the conversion chain end to end: a token like
                // `99999999999` parses as i64 but fits neither a declared
                // range nor the 32-bit variable space, and must be a parse
                // error rather than a downstream panic — headerless input
                // has no declared range to catch it first.
                let var_index = usize::try_from(value.unsigned_abs())
                    .ok()
                    .map(|v| v - 1)
                    .filter(|&v| Var::try_from_index(v).is_some())
                    .ok_or_else(|| {
                        err(&format!("literal {value} exceeds the supported variable range"))
                    })?;
                if let Some(nv) = num_vars {
                    if var_index >= nv {
                        return Err(err(&format!(
                            "literal {value} exceeds declared variable count {nv}"
                        )));
                    }
                }
                max_var = max_var.max(var_index + 1);
                let var = Var::try_from_index(var_index).expect("range checked above");
                current.push(if value > 0 { var.positive() } else { var.negative() });
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "last clause is missing its terminating 0".to_string(),
        });
    }
    if let Some(declared) = declared_clauses {
        if declared != clauses.len() {
            // Tolerated by most solvers; we accept but could warn. Keep data.
        }
    }
    Ok(Cnf {
        num_vars: num_vars.unwrap_or(max_var),
        clauses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    #[test]
    fn parses_simple_formula() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
        assert!(cnf.clauses[0][0].is_positive());
        assert!(!cnf.clauses[0][1].is_positive());
    }

    #[test]
    fn round_trips_through_printer() {
        let text = "p cnf 2 2\n1 2 0\n-1 -2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let reparsed = parse_dimacs(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn clause_split_across_lines() {
        let text = "p cnf 3 1\n1 2\n3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn rejects_unterminated_clause() {
        let text = "p cnf 2 1\n1 2\n";
        assert!(parse_dimacs(text).is_err());
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let text = "p cnf 1 1\n2 0\n";
        let e = parse_dimacs(text).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn infers_vars_without_header() {
        let text = "1 -3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
    }

    #[test]
    fn parsed_formula_solves() {
        let text = "p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n";
        let mut solver = parse_dimacs(text).unwrap().into_solver();
        assert_eq!(solver.solve(), SatResult::Sat);
        let model = solver.model();
        assert!(model[0] && model[1]);
    }

    #[test]
    fn rejects_garbage_token() {
        assert!(parse_dimacs("p cnf 1 1\nfoo 0\n").is_err());
    }

    #[test]
    fn rejects_oversized_literal_without_header() {
        // Regression: with no `p cnf` header bounding the variable range,
        // an oversized literal used to pass the i64 parse and panic in
        // `Var::from_index` instead of erroring.
        let e = parse_dimacs("99999999999 0\n").unwrap_err();
        assert!(e.to_string().contains("supported variable range"), "{e}");
        let e = parse_dimacs("-99999999999 0\n").unwrap_err();
        assert!(e.to_string().contains("supported variable range"), "{e}");
    }

    #[test]
    fn rejects_oversized_literal_with_header() {
        // The declared-range check never gets a chance on a literal that
        // does not even fit the variable space; it must still be an error.
        let e = parse_dimacs("p cnf 3 1\n99999999999 0\n").unwrap_err();
        assert!(e.to_string().contains("variable"), "{e}");
    }

    #[test]
    fn rejects_extreme_magnitude_literal() {
        let text = format!("{} 0\n", i64::MIN);
        assert!(parse_dimacs(&text).is_err());
    }

    #[test]
    fn rejects_unterminated_final_clause_without_header() {
        // Regression: a final clause missing its terminating `0` must be
        // a parse error at EOF, not silently dropped — with or without a
        // header line.
        let e = parse_dimacs("1 -2 0\n2 3\n").unwrap_err();
        assert!(e.to_string().contains("terminating 0"), "{e}");
    }

    #[test]
    fn unterminated_clause_reports_the_last_line() {
        let e = parse_dimacs("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }
}
