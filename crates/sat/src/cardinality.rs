//! Cardinality constraint encodings.
//!
//! Used by the exploration layer to prove *minimality* of distinguishing
//! test sets: "no 8 litmus tests cover every distinguishable model pair" is
//! an at-most-8 selection constraint plus coverage clauses, decided by the
//! CDCL solver (paper §4.2 reports a sufficient set of nine tests; the
//! minimality certificate is our extension).

use crate::lit::Lit;
use crate::solver::Solver;

/// Adds clauses enforcing that at most `k` of `lits` are true, using the
/// Sinz sequential-counter encoding (auxiliary variables `s[i][j]` meaning
/// "at least `j+1` of the first `i+1` literals are true").
///
/// With `k == 0` this simply asserts every literal false. The encoding adds
/// `O(n·k)` auxiliary variables and clauses.
pub fn add_at_most_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if n <= k {
        return; // trivially satisfied
    }
    if k == 0 {
        for &lit in lits {
            solver.add_clause(&[!lit]);
        }
        return;
    }
    // s[i][j]: among lits[0..=i], at least j+1 are true. i in 0..n, j in 0..k.
    let s: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..k).map(|_| solver.new_var().positive()).collect())
        .collect();
    // lits[0] -> s[0][0]
    solver.add_clause(&[!lits[0], s[0][0]]);
    // !s[0][j] for j >= 1
    for &sj in s[0].iter().skip(1) {
        solver.add_clause(&[!sj]);
    }
    for i in 1..n {
        // lits[i] -> s[i][0]
        solver.add_clause(&[!lits[i], s[i][0]]);
        // s[i-1][j] -> s[i][j]
        for (&prev, &cur) in s[i - 1].iter().zip(&s[i]) {
            solver.add_clause(&[!prev, cur]);
        }
        // lits[i] & s[i-1][j-1] -> s[i][j]
        for (&prev, &cur) in s[i - 1].iter().zip(s[i].iter().skip(1)) {
            solver.add_clause(&[!lits[i], !prev, cur]);
        }
        // lits[i] & s[i-1][k-1] -> conflict (would be the (k+1)-th true lit)
        solver.add_clause(&[!lits[i], !s[i - 1][k - 1]]);
    }
}

/// Adds clauses enforcing that at least `k` of `lits` are true.
///
/// Encoded as "at most `n - k` of the negations are true".
pub fn add_at_least_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k == 0 {
        return;
    }
    if k > n {
        // Unsatisfiable: force a contradiction.
        solver.add_clause(&[]);
        return;
    }
    if k == 1 {
        solver.add_clause(lits);
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    add_at_most_k(solver, &negated, n - k);
}

/// Adds clauses enforcing that exactly `k` of `lits` are true.
pub fn add_exactly_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    add_at_most_k(solver, lits, k);
    add_at_least_k(solver, lits, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    fn fresh(n: usize) -> (Solver, Vec<Lit>) {
        let mut solver = Solver::new();
        let lits = (0..n).map(|_| solver.new_var().positive()).collect();
        (solver, lits)
    }

    fn count_true(solver: &Solver, lits: &[Lit]) -> usize {
        lits.iter()
            .filter(|l| solver.lit_value_opt(**l) == Some(true))
            .count()
    }

    #[test]
    fn at_most_k_blocks_k_plus_one() {
        for n in 1..6usize {
            for k in 0..n {
                let (mut solver, lits) = fresh(n);
                add_at_most_k(&mut solver, &lits, k);
                // Forcing k literals true is fine.
                let assume: Vec<Lit> = lits.iter().take(k).copied().collect();
                assert_eq!(
                    solver.solve_with_assumptions(&assume),
                    SatResult::Sat,
                    "n={n} k={k} k-true should be sat"
                );
                // Forcing k+1 literals true must fail.
                let assume: Vec<Lit> = lits.iter().take(k + 1).copied().collect();
                assert_eq!(
                    solver.solve_with_assumptions(&assume),
                    SatResult::Unsat,
                    "n={n} k={k} (k+1)-true should be unsat"
                );
            }
        }
    }

    #[test]
    fn at_least_k_requires_k() {
        for n in 1..6usize {
            for k in 1..=n {
                let (mut solver, lits) = fresh(n);
                add_at_least_k(&mut solver, &lits, k);
                assert_eq!(solver.solve(), SatResult::Sat);
                assert!(count_true(&solver, &lits) >= k, "n={n} k={k}");
                // Forcing n-k+1 literals false must fail.
                let assume: Vec<Lit> = lits.iter().take(n - k + 1).map(|&l| !l).collect();
                assert_eq!(
                    solver.solve_with_assumptions(&assume),
                    SatResult::Unsat,
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn exactly_k_pins_the_count() {
        for n in 1..5usize {
            for k in 0..=n {
                let (mut solver, lits) = fresh(n);
                add_exactly_k(&mut solver, &lits, k);
                assert_eq!(solver.solve(), SatResult::Sat, "n={n} k={k}");
                assert_eq!(count_true(&solver, &lits), k, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let (mut solver, lits) = fresh(3);
        add_at_least_k(&mut solver, &lits, 4);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }
}
