//! # mcm-sat
//!
//! A from-scratch CDCL SAT solver, the workspace's substitute for the
//! MiniSat oracle used by the paper's tool (§4.1): the admissibility of a
//! litmus test under a memory model is decided by encoding the
//! happens-before axioms into CNF and calling [`Solver::solve`].
//!
//! Features: two-watched-literal propagation, VSIDS with phase saving,
//! first-UIP learning with clause minimisation, Luby restarts, learnt-clause
//! garbage collection, incremental solving under assumptions, DIMACS I/O
//! ([`dimacs`]), cardinality encodings ([`cardinality`]) and a brute-force
//! reference oracle ([`naive`]).
//!
//! ## Example
//!
//! ```
//! use mcm_sat::{SatResult, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause(&[x.positive(), y.positive()]);
//! solver.add_clause(&[x.negative(), y.negative()]);
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert_ne!(solver.value(x), solver.value(y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinality;
pub mod dimacs;
mod heap;
mod lit;
pub mod naive;
mod solver;

pub use lit::{LBool, Lit, Var};
pub use solver::{luby, SatResult, Solver, SolverStats};
