//! Variables, literals and three-valued assignments.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
///
/// Variables are created through [`crate::Solver::new_var`]; the solver only
/// accepts literals over variables it has allocated.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw zero-based index.
    ///
    /// Mostly useful for tests and for decoding external formats; prefer
    /// [`crate::Solver::new_var`] when driving a solver.
    ///
    /// # Panics
    ///
    /// Panics when `index` does not fit the 32-bit variable space; use
    /// [`Var::try_from_index`] when the index comes from untrusted input
    /// (the DIMACS parser does).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Var::try_from_index(index).expect("variable index out of range")
    }

    /// Fallible [`Var::from_index`]: `None` when `index` exceeds the
    /// 32-bit variable space (literal encoding reserves the low bit, so
    /// indices above `u32::MAX / 2` would also overflow the watch lists).
    #[must_use]
    pub fn try_from_index(index: usize) -> Option<Self> {
        u32::try_from(index)
            .ok()
            .filter(|&i| i <= u32::MAX >> 1)
            .map(Var)
    }

    /// The zero-based index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[must_use]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[must_use]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity.
    #[must_use]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | negated` so that a literal and its negation are
/// adjacent codes, which the watch lists exploit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Rebuilds a literal from [`Lit::code`].
    #[must_use]
    pub fn from_code(code: usize) -> Self {
        Lit(u32::try_from(code).expect("literal code out of range"))
    }

    /// A dense code usable as an array index: `2 * var + negated`.
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal of its variable.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Evaluates the literal under an assignment of its variable.
    #[must_use]
    pub fn apply(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Three-valued truth assignment used inside the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts to an optional boolean (`Undef` becomes `None`).
    #[must_use]
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Builds from a boolean.
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        if value {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes_are_adjacent() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
    }

    #[test]
    fn try_from_index_bounds_the_variable_space() {
        assert_eq!(Var::try_from_index(0), Some(Var(0)));
        let max = (u32::MAX >> 1) as usize;
        assert_eq!(Var::try_from_index(max), Some(Var(u32::MAX >> 1)));
        assert_eq!(Var::try_from_index(max + 1), None);
        assert_eq!(Var::try_from_index(usize::MAX), None);
        // The largest admissible variable still has both literal codes.
        let v = Var::try_from_index(max).unwrap();
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
    }

    #[test]
    fn negation_flips_polarity() {
        let v = Var::from_index(0);
        let p = v.positive();
        assert!(p.is_positive());
        assert!(!(!p).is_positive());
        assert_eq!(!!p, p);
    }

    #[test]
    fn lit_with_polarity_matches_constructors() {
        let v = Var::from_index(5);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn apply_respects_polarity() {
        let v = Var::from_index(1);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(v.negative().apply(false));
        assert!(!v.negative().apply(true));
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(v.positive().to_string(), "x2");
        assert_eq!(v.negative().to_string(), "!x2");
    }

    #[test]
    fn lbool_round_trips() {
        assert_eq!(LBool::from_bool(true).to_option(), Some(true));
        assert_eq!(LBool::from_bool(false).to_option(), Some(false));
        assert_eq!(LBool::Undef.to_option(), None);
    }
}
