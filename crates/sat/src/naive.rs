//! Brute-force reference solver.
//!
//! Enumerates all assignments; exponential, but exact. Exists so the CDCL
//! solver can be property-tested against an implementation too simple to be
//! wrong.

use crate::lit::Lit;

/// Decides satisfiability of `clauses` over `num_vars` variables by
/// exhaustive enumeration, returning a model if one exists.
///
/// # Panics
///
/// Panics if `num_vars > 24` (the search is exponential; this is a test
/// oracle, not a solver).
#[must_use]
pub fn solve_brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 24, "brute force limited to 24 variables");
    let n = num_vars as u32;
    for bits in 0..(1u64 << n) {
        let model: Vec<bool> = (0..num_vars).map(|i| bits >> i & 1 == 1).collect();
        if clauses
            .iter()
            .all(|c| c.iter().any(|l| l.apply(model[l.var().index()])))
        {
            return Some(model);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn finds_model_for_satisfiable() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        let clauses = vec![vec![a.positive(), b.positive()], vec![a.negative()]];
        let model = solve_brute_force(2, &clauses).unwrap();
        assert!(!model[0]);
        assert!(model[1]);
    }

    #[test]
    fn reports_unsat() {
        let a = Var::from_index(0);
        let clauses = vec![vec![a.positive()], vec![a.negative()]];
        assert!(solve_brute_force(1, &clauses).is_none());
    }

    #[test]
    fn empty_clause_set_is_sat() {
        assert!(solve_brute_force(0, &[]).is_some());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(solve_brute_force(1, &[vec![]]).is_none());
    }
}
