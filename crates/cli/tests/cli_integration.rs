//! End-to-end tests of the `mcm` binary.

use std::process::Command;

fn mcm(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_mcm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = mcm(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("compare"));
}

#[test]
fn no_args_prints_usage() {
    let (ok, stdout, _) = mcm(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = mcm(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn compare_tso_with_its_digit_model() {
    let (ok, stdout, _) = mcm(&["compare", "TSO", "M4044"]);
    assert!(ok);
    assert!(stdout.contains("equivalent"));
}

#[test]
fn compare_tso_ibm370_lists_witnesses() {
    let (ok, stdout, _) = mcm(&["compare", "TSO", "IBM370"]);
    assert!(ok);
    assert!(stdout.contains("strictly weaker"));
    assert!(stdout.contains("L8") || stdout.contains("TestA"));
}

#[test]
fn compare_rejects_unknown_models() {
    let (ok, _, stderr) = mcm(&["compare", "TSO", "powerpc"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
}

#[test]
fn check_reads_a_litmus_file() {
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sb.litmus");
    std::fs::write(
        &path,
        "test SB {\n thread { write X = 1; read Y -> r1 }\n thread { write Y = 1; read X -> r2 }\n outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n",
    )
    .unwrap();
    let path = path.to_str().unwrap();
    let (ok, stdout, _) = mcm(&["check", "TSO", path]);
    assert!(ok);
    assert!(stdout.contains("SB: allowed under TSO"));
    let (ok, stdout, _) = mcm(&["check", "SC", path, "--witness"]);
    assert!(ok);
    assert!(stdout.contains("SB: forbidden under SC"));
    assert!(stdout.contains("FORBIDDEN"));
    let (ok, stdout, _) = mcm(&["check", "TSO", path, "--checker", "sat"]);
    assert!(ok);
    assert!(stdout.contains("allowed"));
}

#[test]
fn suite_reports_corollary1_bounds() {
    let (ok, stdout, _) = mcm(&["suite", "--no-deps"]);
    assert!(ok);
    assert!(stdout.contains("Corollary 1 bound = 124"));
    let (ok, stdout, _) = mcm(&["suite"]);
    assert!(ok);
    assert!(stdout.contains("Corollary 1 bound = 230"));
}

#[test]
fn figures_counts_reports_paper_numbers() {
    let (ok, stdout, _) = mcm(&["figures", "counts"]);
    assert!(ok);
    assert!(stdout.contains("230 tests"));
    assert!(stdout.contains("124 tests"));
}

#[test]
fn figures_fig3_prints_all_nine() {
    let (ok, stdout, _) = mcm(&["figures", "fig3"]);
    assert!(ok);
    for name in ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"] {
        assert!(stdout.contains(&format!("Test {name}")), "missing {name}");
    }
}

#[test]
fn explore_nodep_writes_dot() {
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dot_path = dir.join("fig4.dot");
    let dot = dot_path.to_str().unwrap();
    let (ok, stdout, _) = mcm(&["explore", "--no-deps", "--dot", dot]);
    assert!(ok);
    assert!(stdout.contains("equivalent pairs: 6"));
    let written = std::fs::read_to_string(&dot_path).unwrap();
    assert!(written.starts_with("digraph"));
}

#[test]
fn explore_stream_sweeps_tiny_bounds() {
    let (ok, stdout, _) = mcm(&[
        "explore",
        "--stream",
        "--max-accesses",
        "2",
        "--max-locs",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("never materialized"), "{stdout}");
    assert!(stdout.contains("streamed 276 tests"), "{stdout}");
    assert!(stdout.contains("lattice:"), "{stdout}");
}

#[test]
fn explore_stream_honours_fences_deps_and_limit() {
    let (ok, stdout, _) = mcm(&[
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "2", "--fences", "--deps",
        "--limit", "100",
    ]);
    assert!(ok);
    assert!(stdout.contains("fences, deps"), "{stdout}");
    assert!(stdout.contains("streamed 100 tests"), "{stdout}");
}

#[test]
fn explore_stream_rejects_bad_bounds() {
    let (ok, _, stderr) = mcm(&["explore", "--stream", "--max-accesses", "9"]);
    assert!(!ok);
    assert!(stderr.contains("--max-accesses"), "{stderr}");
    let (ok, _, stderr) = mcm(&["explore", "--stream", "--limit", "zero"]);
    assert!(!ok);
    assert!(stderr.contains("--limit"), "{stderr}");
}

#[test]
fn synth_finds_store_buffering_for_sc_vs_tso() {
    let (ok, stdout, _) = mcm(&["synth", "SC", "TSO", "--verbose"]);
    assert!(ok);
    assert!(
        stdout.contains("minimal distinguishing length for SC vs TSO: 4 accesses"),
        "{stdout}"
    );
    assert!(stdout.contains("allowed by TSO, forbidden by SC"), "{stdout}");
    assert!(stdout.contains("Outcome:"), "{stdout}");
    assert!(stdout.contains("solver:"), "--verbose must print solver stats: {stdout}");
}

#[test]
fn synth_certifies_equivalence_within_bounds() {
    let (ok, stdout, _) = mcm(&[
        "synth", "TSO", "x86", "--max-accesses", "2", "--max-locs", "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("indistinguishable"), "{stdout}");
    assert!(stdout.contains("UNSAT-certified"), "{stdout}");
}

#[test]
fn synth_matrix_reports_lengths_and_legend() {
    let (ok, stdout, _) = mcm(&[
        "synth", "--matrix", "SC", "TSO", "PSO", "--max-accesses", "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("pairwise minimal distinguishing length"), "{stdout}");
    assert!(stdout.contains("0 = SC"), "{stdout}");
    assert!(stdout.contains("pairs at length 4"), "{stdout}");
    assert!(stdout.contains("cegis:"), "{stdout}");
}

#[test]
fn synth_rejects_bad_arguments() {
    let (ok, _, stderr) = mcm(&["synth", "SC", "powerpc"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"), "{stderr}");
    let (ok, _, stderr) = mcm(&["synth", "SC", "TSO", "--max-size", "99"]);
    assert!(!ok);
    assert!(stderr.contains("--max-size"), "{stderr}");
    let (ok, _, stderr) = mcm(&["synth", "SC", "TSO", "--max-accesses", "9"]);
    assert!(!ok);
    assert!(stderr.contains("--max-accesses"), "{stderr}");
    let (ok, _, stderr) = mcm(&["synth", "SC"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    for args in [
        &["explore", "--streem"][..],
        &["compare", "TSO", "SC", "--nodeps"][..],
        &["synth", "SC", "TSO", "--fancy"][..],
        &["suite", "--deps"][..],
        &["catalog", "--verbose"][..],
    ] {
        let (ok, _, stderr) = mcm(args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains("unknown flag"), "{args:?}: {stderr}");
    }
}

#[test]
fn options_without_values_are_rejected() {
    let (ok, _, stderr) = mcm(&["explore", "--stream", "--limit"]);
    assert!(!ok);
    assert!(stderr.contains("--limit requires a value"), "{stderr}");
    let (ok, _, stderr) = mcm(&["explore", "--jobs", "--stream"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs requires a value"), "{stderr}");
    let (ok, _, stderr) = mcm(&["synth", "SC", "TSO", "--max-locs"]);
    assert!(!ok);
    assert!(stderr.contains("--max-locs requires a value"), "{stderr}");
}

#[test]
fn stream_only_bounds_require_stream() {
    for option in [
        "--limit",
        "--max-accesses",
        "--max-locs",
        "--shard",
        "--store",
        "--checkpoint",
        "--resume",
    ] {
        let (ok, _, stderr) = mcm(&["explore", option, "2"]);
        assert!(!ok, "{option} without --stream must fail");
        assert!(stderr.contains("requires --stream"), "{option}: {stderr}");
    }
    let (ok, _, stderr) = mcm(&["explore", "--fences"]);
    assert!(!ok);
    assert!(stderr.contains("requires --stream"), "{stderr}");
}

#[test]
fn zero_valued_limits_are_rejected_not_clamped() {
    let (ok, _, stderr) = mcm(&["explore", "--stream", "--limit", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--limit"), "{stderr}");
    let (ok, _, stderr) = mcm(&["explore", "--jobs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs"), "{stderr}");
    let (ok, _, stderr) = mcm(&["explore", "--stream", "--max-locs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--max-locs"), "{stderr}");
}

#[test]
fn explore_accepts_model_set_specs() {
    let (ok, stdout, _) = mcm(&["explore", "--models", "named"]);
    assert!(ok);
    assert!(stdout.contains("explored 8 models"), "{stdout}");
    assert!(stdout.contains("sweep batching"), "{stdout}");
    let (ok, stdout, _) = mcm(&["explore", "--models", "SC,TSO,IBM370"]);
    assert!(ok);
    assert!(stdout.contains("explored 3 models"), "{stdout}");
}

#[test]
fn explore_models_90_streams_the_dependency_space() {
    // The headline sweep, truncated so CI stays fast: the full §4.2
    // space of 90 dependency-discriminating models over streamed leaders.
    let (ok, stdout, _) = mcm(&[
        "explore", "--models", "90", "--stream", "--max-accesses", "2", "--max-locs", "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("against 90 models"), "{stdout}");
    assert!(stdout.contains("batched"), "{stdout}");
    assert!(stdout.contains("equivalence classes"), "{stdout}");
}

#[test]
fn model_set_errors_are_reported() {
    let (ok, _, stderr) = mcm(&["explore", "--models", "powerpc,arm"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"), "{stderr}");
    let (ok, _, stderr) = mcm(&["explore", "--models", "figure4", "--no-deps"]);
    assert!(!ok);
    assert!(stderr.contains("conflicts"), "{stderr}");
    let (ok, _, stderr) = mcm(&["distinguish", "SC", "TSO", "--models", "named"]);
    assert!(!ok);
    assert!(stderr.contains("not both"), "{stderr}");
    let (ok, _, stderr) = mcm(&["synth", "SC", "TSO", "--models", "named"]);
    assert!(!ok);
    assert!(stderr.contains("requires --matrix"), "{stderr}");
}

#[test]
fn explore_checker_is_kind_resolved() {
    let (ok, stdout, _) = mcm(&[
        "explore", "--models", "SC,TSO", "--checker", "monolithic",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("assumption solves"), "{stdout}");
    assert!(stdout.contains("sweep solver"), "{stdout}");
    let (ok, _, stderr) = mcm(&["explore", "--checker", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown checker"), "{stderr}");
    assert!(stderr.contains("explicit/sat/monolithic"), "{stderr}");
}

#[test]
fn distinguish_model_set_matches_positional() {
    let (ok, a, _) = mcm(&["distinguish", "--models", "SC,TSO,PSO"]);
    assert!(ok);
    let (ok, b, _) = mcm(&["distinguish", "SC", "TSO", "PSO"]);
    assert!(ok);
    let line = |s: &str| {
        s.lines()
            .find(|l| l.contains("minimum distinguishing set"))
            .unwrap()
            .to_string()
    };
    assert_eq!(line(&a), line(&b));
}

#[test]
fn analyze_finds_the_papers_eight_pairs_statically() {
    let (ok, stdout, _) = mcm(&["analyze", "--models", "90"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 litmus tests executed"), "{stdout}");
    assert!(stdout.contains("equivalent pairs: 8"), "{stdout}");
    // Left-hand names may carry aliases ("M1010 (RMO (no deps))"), so
    // match each pair by its unaliased right-hand member.
    for right in [
        "M1110", "M1111", "M4110", "M4111", "M4130", "M4131", "M4140", "M4141",
    ] {
        let pair = format!("== {right}  (theorem-a)");
        assert!(stdout.contains(&pair), "missing {pair}: {stdout}");
    }
}

#[test]
fn analyze_renders_the_lattice_and_lints_tests() {
    let (ok, stdout, _) = mcm(&["analyze", "SC", "TSO", "PSO", "--format", "dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph strength"), "{stdout}");
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dead-write.litmus");
    std::fs::write(
        &path,
        "test DeadWrite {\n thread { write X = 1; read Y -> r1 }\n thread { write Y = 1 }\n outcome { T1:r1 = 0 }\n}\n",
    )
    .unwrap();
    let (ok, stdout, _) = mcm(&["analyze", "SC", "TSO", "--tests", path.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("never-read-write"), "{stdout}");
    let (ok, _, stderr) = mcm(&["analyze", "SC", "TSO", "--models", "named"]);
    assert!(!ok);
    assert!(stderr.contains("not both"), "{stderr}");
}

#[test]
fn parse_validates_files() {
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.litmus");
    std::fs::write(&path, "test Bad { thread { wibble } }").unwrap();
    let (ok, _, stderr) = mcm(&["parse", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("wibble"));
}

// ---------------------------------------------------------------------------
// Exit codes: usage errors exit 2, run failures exit 1.
// ---------------------------------------------------------------------------

fn mcm_code(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_mcm"))
        .args(args)
        .output()
        .expect("binary runs")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(mcm_code(&["frobnicate"]), 2);
    assert_eq!(mcm_code(&["compare", "TSO"]), 2);
    assert_eq!(mcm_code(&["compare", "TSO", "powerpc"]), 2);
    assert_eq!(mcm_code(&["explore", "--streem"]), 2);
    assert_eq!(mcm_code(&["explore", "--jobs"]), 2);
    assert_eq!(mcm_code(&["explore", "--checker", "quantum"]), 2);
    assert_eq!(mcm_code(&["suite", "--format", "yaml"]), 2);
    assert_eq!(mcm_code(&["figures", "wibble"]), 2);
    assert_eq!(mcm_code(&["synth", "SC"]), 2);
}

#[test]
fn run_failures_exit_1() {
    // A well-formed request on an unreadable file is a run failure.
    assert_eq!(mcm_code(&["check", "TSO", "/no/such/file.litmus"]), 1);
    assert_eq!(mcm_code(&["parse", "/no/such/file.litmus"]), 1);
    // A file that exists but does not parse is a run failure too.
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.litmus");
    std::fs::write(&path, "test Bad { thread { wibble } }").unwrap();
    assert_eq!(mcm_code(&["parse", path.to_str().unwrap()]), 1);
    assert_eq!(mcm_code(&["check", "SC", path.to_str().unwrap()]), 1);
}

#[test]
fn success_exits_0() {
    assert_eq!(mcm_code(&["help"]), 0);
    assert_eq!(mcm_code(&["compare", "TSO", "x86"]), 0);
}

// ---------------------------------------------------------------------------
// --format json: every subcommand emits a schema-versioned document that
// round-trips through the in-tree parser.
// ---------------------------------------------------------------------------

fn parsed_json(args: &[&str]) -> mcm_core::json::Json {
    let (ok, stdout, stderr) = mcm(args);
    assert!(ok, "{args:?} failed: {stderr}");
    let doc = mcm_core::json::Json::parse(&stdout)
        .unwrap_or_else(|e| panic!("{args:?} produced invalid json: {e}\n{stdout}"));
    assert_eq!(
        doc.get("schema_version").and_then(mcm_core::json::Json::as_u64),
        Some(mcm_query::SCHEMA_VERSION),
        "{args:?}: missing schema_version"
    );
    doc
}

#[test]
fn every_subcommand_speaks_json() {
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sb-json.litmus");
    std::fs::write(
        &path,
        "test SB {\n thread { write X = 1; read Y -> r1 }\n thread { write Y = 1; read X -> r2 }\n outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n",
    )
    .unwrap();
    let path = path.to_str().unwrap();
    let kind = |doc: &mcm_core::json::Json| {
        doc.get("kind").and_then(mcm_core::json::Json::as_str).unwrap().to_string()
    };

    let doc = parsed_json(&["check", "TSO", path, "--format", "json"]);
    assert_eq!(kind(&doc), "check");
    let doc = parsed_json(&["compare", "TSO", "x86", "--format", "json"]);
    assert_eq!(kind(&doc), "compare");
    assert_eq!(doc.get("relation").and_then(mcm_core::json::Json::as_str), Some("equivalent"));
    let doc = parsed_json(&["explore", "--models", "SC,TSO,IBM370", "--format", "json"]);
    assert_eq!(kind(&doc), "sweep");
    assert_eq!(doc.get("models").and_then(mcm_core::json::Json::as_array).unwrap().len(), 3);
    let doc = parsed_json(&[
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "2", "--limit", "50",
        "--models", "SC,TSO", "--format", "json",
    ]);
    assert!(!doc.get("stream").unwrap().is_null(), "streamed sweep documents carry bounds");
    let doc = parsed_json(&["distinguish", "SC", "TSO", "--format", "json"]);
    assert_eq!(kind(&doc), "distinguish");
    let doc = parsed_json(&["analyze", "SC", "TSO", "--format", "json"]);
    assert_eq!(kind(&doc), "analyze");
    assert_eq!(doc.get("models").and_then(mcm_core::json::Json::as_array).unwrap().len(), 2);
    let doc = parsed_json(&[
        "synth", "SC", "TSO", "--max-accesses", "2", "--max-locs", "2", "--format", "json",
    ]);
    assert_eq!(kind(&doc), "synth");
    assert_eq!(
        doc.get("pair").unwrap().get("length").and_then(mcm_core::json::Json::as_u64),
        Some(4),
        "SB is the shortest SC/TSO separator"
    );
    let doc = parsed_json(&["suite", "--no-deps", "--format", "json"]);
    assert_eq!(doc.get("corollary1_bound").and_then(mcm_core::json::Json::as_u64), Some(124));
    let doc = parsed_json(&["catalog", "--format", "json"]);
    assert_eq!(kind(&doc), "catalog");
    let doc = parsed_json(&["parse", path, "--format", "json"]);
    assert_eq!(doc.get("count").and_then(mcm_core::json::Json::as_u64), Some(1));
    let doc = parsed_json(&["figures", "counts", "--format", "json"]);
    assert_eq!(kind(&doc), "figures");
    assert!(doc.get("fig1").unwrap().is_null());
    assert!(!doc.get("counts").unwrap().is_null());
}

#[test]
fn out_writes_the_document_to_a_file() {
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("compare.json");
    let out_str = out.to_str().unwrap();
    let (ok, stdout, _) = mcm(&["compare", "TSO", "x86", "--format", "json", "--out", out_str]);
    assert!(ok);
    assert!(stdout.is_empty(), "--out redirects the document: {stdout}");
    let written = std::fs::read_to_string(&out).unwrap();
    let doc = mcm_core::json::Json::parse(&written).unwrap();
    assert_eq!(doc.get("kind").and_then(mcm_core::json::Json::as_str), Some("compare"));
}

#[test]
fn csv_and_dot_formats_render_where_supported() {
    let (ok, stdout, _) = mcm(&["explore", "--models", "SC,TSO", "--format", "csv"]);
    assert!(ok);
    assert!(stdout.starts_with("model,"), "{stdout}");
    let (ok, stdout, _) = mcm(&["explore", "--models", "SC,TSO", "--format", "dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    // Reports without a tabular view reject csv as a usage error.
    let (ok, _, stderr) = mcm(&["compare", "TSO", "x86", "--format", "csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot be rendered"), "{stderr}");
    assert_eq!(mcm_code(&["compare", "TSO", "x86", "--format", "csv"]), 2);
}

#[test]
fn trace_out_writes_a_balanced_chrome_trace() {
    use mcm_core::json::Json;
    let dir = std::env::temp_dir().join("mcm-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("explore-trace.json");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = mcm(&[
        "explore", "--models", "SC,TSO", "--trace-out", trace_str,
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = Json::parse(&text).expect("trace re-parses with the in-tree parser");
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("trace"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let phase_count = |name: &str, ph: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some(name)
                    && e.get("ph").and_then(Json::as_str) == Some(ph)
            })
            .count()
    };
    // The CLI wraps the whole command in one span; the engine adds its
    // phases underneath. Every begin has its end.
    for name in ["cli.explore", "engine.run", "engine.grid"] {
        assert_eq!(phase_count(name, "B"), phase_count(name, "E"), "{name}");
        assert!(phase_count(name, "B") >= 1, "missing span {name}");
    }
    std::fs::remove_file(&trace).ok();
}

#[test]
fn trace_out_without_a_file_is_a_usage_error() {
    let (ok, _, stderr) = mcm(&["explore", "--models", "SC,TSO", "--trace-out"]);
    assert!(!ok);
    assert!(stderr.contains("--trace-out"), "{stderr}");
    assert_eq!(mcm_code(&["explore", "--models", "SC,TSO", "--trace-out"]), 2);
}

#[test]
fn explore_stream_shards_partition_the_sweep() {
    use mcm_core::json::Json;
    let streamed = |doc: &Json| {
        doc.get("stats")
            .and_then(|s| s.get("tests_streamed"))
            .and_then(Json::as_u64)
            .expect("stats.tests_streamed")
    };
    let base = [
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "2", "--models", "SC,TSO",
        "--format", "json",
    ];
    let whole = parsed_json(&base);
    let mut sharded_total = 0;
    for shard in ["0/2", "1/2"] {
        let mut args = base.to_vec();
        args.extend(["--shard", shard]);
        let doc = parsed_json(&args);
        assert_eq!(
            doc.get("stream").and_then(|s| s.get("shard")).and_then(Json::as_str),
            Some(shard)
        );
        sharded_total += streamed(&doc);
    }
    assert_eq!(
        sharded_total,
        streamed(&whole),
        "two complementary shards must cover the stream exactly"
    );

    let (ok, _, stderr) = mcm(&["explore", "--stream", "--shard", "2/2"]);
    assert!(!ok);
    assert!(stderr.contains("--shard"), "{stderr}");
}

#[test]
fn explore_stream_store_survives_across_runs() {
    let dir = std::env::temp_dir().join("mcm-cli-store-test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join(format!("verdicts-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let log = log.to_str().unwrap();
    let base = [
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "2", "--models", "SC,TSO",
        "--store", log,
    ];
    let (ok, stdout, _) = mcm(&base);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("store: "), "{stdout}");
    // The second process answers every pair from the disk tier.
    let (ok, stdout, _) = mcm(&base);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 ram + "), "{stdout}");
    assert!(!stdout.contains(" + 0 disk"), "{stdout}");
    std::fs::remove_file(log).ok();
}

#[test]
fn explore_stream_resumes_from_a_checkpoint_bit_identically() {
    use mcm_core::json::Json;
    let dir = std::env::temp_dir().join("mcm-cli-ckpt-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("sweep-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let ckpt = ckpt.to_str().unwrap();
    let base = [
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "2", "--models", "SC,TSO",
        "--format", "json",
    ];
    let with = |extra: &[&str]| {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        parsed_json(&args)
    };
    let cold = with(&["--checkpoint", ckpt]);
    assert!(std::path::Path::new(ckpt).exists(), "checkpoint file written");
    let resumed = with(&["--resume", ckpt]);
    assert!(
        resumed
            .get("checkpoint")
            .and_then(|c| c.get("resumed_at"))
            .and_then(Json::as_u64)
            .is_some(),
        "the resumed run reports its cursor"
    );
    let strip = |mut doc: Json| {
        doc.strip_keys(&["elapsed_ms", "timings", "stats", "cache", "store", "checkpoint"]);
        doc
    };
    assert_eq!(
        strip(cold),
        strip(resumed),
        "resume from the final checkpoint replays to the same lattice"
    );

    // A checkpoint from different bounds is rejected, not misapplied.
    let mismatch = [
        "explore", "--stream", "--max-accesses", "2", "--max-locs", "3", "--models", "SC,TSO",
        "--resume", ckpt,
    ];
    let (ok, _, stderr) = mcm(&mismatch);
    assert!(!ok);
    assert!(stderr.contains("different sweep"), "{stderr}");
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn serve_store_dir_is_a_recognised_option() {
    // A bad value fails at bind time (the parent of the log must be
    // creatable), proving the flag reaches the server config.
    let (ok, _, stderr) = mcm(&["serve", "--store-dir"]);
    assert!(!ok);
    assert!(stderr.contains("--store-dir"), "{stderr}");
}
