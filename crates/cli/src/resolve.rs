//! Model- and model-set-name resolution shared by the subcommands.

use mcm_core::MemoryModel;
use mcm_models::{named, DigitModel};

/// Resolves a model name: the named §2.4 models (case-insensitive) or a
/// digit model `M####`.
pub fn model(name: &str) -> Result<MemoryModel, String> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => return Ok(named::sc()),
        "tso" => return Ok(named::tso()),
        "x86" => return Ok(named::x86()),
        "pso" => return Ok(named::pso()),
        "ibm370" => return Ok(named::ibm370()),
        "rmo" => return Ok(named::rmo()),
        "rmo-nodep" => return Ok(named::rmo_without_dependencies()),
        "alpha" => return Ok(named::alpha()),
        _ => {}
    }
    name.parse::<DigitModel>()
        .map(|d| d.to_model())
        .map_err(|e| {
            format!("unknown model `{name}`: {e}; try SC/TSO/x86/PSO/IBM370/RMO/Alpha or M####")
        })
}

/// Resolves a `--models` set specification, shared by `explore`,
/// `distinguish` and `synth --matrix`:
///
/// * `figure4` (aliases `fig4`, `36`) — the 36 dependency-free digit
///   models drawn in Figure 4;
/// * `90` (aliases `full`, `all`) — the paper's full §4.2 space of 90
///   dependency-discriminating digit models;
/// * `named` — the named hardware models of §2.4;
/// * anything else — a comma-separated list of model names, each resolved
///   by [`model`] (e.g. `SC,TSO,M1032`).
pub fn model_set(spec: &str) -> Result<Vec<MemoryModel>, String> {
    match spec.to_ascii_lowercase().as_str() {
        "figure4" | "fig4" | "36" => Ok(mcm_explore::paper::digit_space_models(false)),
        "90" | "full" | "all" => Ok(mcm_explore::paper::digit_space_models(true)),
        "named" => Ok(named::all_named()),
        _ => {
            let models: Vec<MemoryModel> = spec
                .split(',')
                .map(str::trim)
                .filter(|name| !name.is_empty())
                .map(model)
                .collect::<Result<_, _>>()?;
            if models.is_empty() {
                return Err(format!(
                    "`--models {spec}` names no models; try figure4, 90, named \
                     or a comma-separated list like SC,TSO,M1032"
                ));
            }
            Ok(models)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_models_resolve_case_insensitively() {
        assert_eq!(model("tso").unwrap().name(), "TSO");
        assert_eq!(model("TSO").unwrap().name(), "TSO");
        assert_eq!(model("Ibm370").unwrap().name(), "IBM370");
    }

    #[test]
    fn digit_models_resolve() {
        assert_eq!(model("M4044").unwrap().name(), "M4044");
    }

    #[test]
    fn nonsense_is_an_error() {
        assert!(model("powerpc").is_err());
        assert!(model("M9999").is_err());
    }

    #[test]
    fn model_sets_resolve() {
        assert_eq!(model_set("figure4").unwrap().len(), 36);
        assert_eq!(model_set("36").unwrap().len(), 36);
        assert_eq!(model_set("90").unwrap().len(), 90);
        assert_eq!(model_set("full").unwrap().len(), 90);
        assert_eq!(model_set("named").unwrap().len(), 8);
        let listed = model_set("SC, TSO,M1032").unwrap();
        assert_eq!(listed.len(), 3);
        assert_eq!(listed[0].name(), "SC");
        assert_eq!(listed[2].name(), "M1032");
    }

    #[test]
    fn bad_model_sets_are_errors() {
        assert!(model_set("SC,powerpc").is_err());
        assert!(model_set(",, ,").is_err());
    }
}
