//! Model-name resolution shared by the subcommands.

use mcm_core::MemoryModel;
use mcm_models::{named, DigitModel};

/// Resolves a model name: the named §2.4 models (case-insensitive) or a
/// digit model `M####`.
pub fn model(name: &str) -> Result<MemoryModel, String> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => return Ok(named::sc()),
        "tso" => return Ok(named::tso()),
        "x86" => return Ok(named::x86()),
        "pso" => return Ok(named::pso()),
        "ibm370" => return Ok(named::ibm370()),
        "rmo" => return Ok(named::rmo()),
        "rmo-nodep" => return Ok(named::rmo_without_dependencies()),
        "alpha" => return Ok(named::alpha()),
        _ => {}
    }
    name.parse::<DigitModel>()
        .map(|d| d.to_model())
        .map_err(|e| {
            format!("unknown model `{name}`: {e}; try SC/TSO/x86/PSO/IBM370/RMO/Alpha or M####")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_models_resolve_case_insensitively() {
        assert_eq!(model("tso").unwrap().name(), "TSO");
        assert_eq!(model("TSO").unwrap().name(), "TSO");
        assert_eq!(model("Ibm370").unwrap().name(), "IBM370");
    }

    #[test]
    fn digit_models_resolve() {
        assert_eq!(model("M4044").unwrap().name(), "M4044");
    }

    #[test]
    fn nonsense_is_an_error() {
        assert!(model("powerpc").is_err());
        assert!(model("M9999").is_err());
    }
}
