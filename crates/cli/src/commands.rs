//! Subcommand implementations.

use std::fs;
use std::time::Instant;

use mcm_axiomatic::{Checker, CheckerKind, ExplicitChecker};
use mcm_core::parse::parse_litmus_file;
use mcm_core::MemoryModel;
use mcm_explore::dot::{render_dot, DotOptions};
use mcm_explore::{distinguish, paper};
use mcm_explore::{EngineConfig, Exploration, Relation, SweepStats, VerdictCache};
use mcm_gen::{count, naive, template_suite, Segment, SegmentType};
use mcm_models::catalog;

use crate::resolve;

/// The flags (valueless) and options (value-taking) one subcommand knows.
/// Every command validates its arguments against its spec up front, so an
/// unknown `--flag`, a misspelt option or an option with a missing value
/// is a proper error instead of being silently ignored.
struct ArgSpec {
    flags: &'static [&'static str],
    options: &'static [&'static str],
}

impl ArgSpec {
    /// Rejects unknown `--` arguments and options without a value.
    fn validate(&self, args: &[String]) -> Result<(), String> {
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if self.options.contains(&a) {
                match args.get(i + 1) {
                    Some(value) if !value.starts_with("--") => i += 2,
                    _ => return Err(format!("{a} requires a value")),
                }
            } else if self.flags.contains(&a) {
                i += 1;
            } else if a.starts_with("--") {
                return Err(format!("unknown flag `{a}`; try `mcm help`"));
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// The non-flag arguments, with option values skipped.
    fn positional<'a>(&self, args: &'a [String]) -> Vec<&'a String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if self.options.contains(&a.as_str()) {
                i += 2;
            } else if a.starts_with("--") {
                i += 1;
            } else {
                out.push(a);
                i += 1;
            }
        }
        out
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses the sweep-engine flags shared by `explore` and `distinguish`:
/// `--canonicalize`, `--cache`, `--jobs N`.
fn engine_options(args: &[String]) -> Result<(EngineConfig, bool), String> {
    let jobs = match option_value(args, "--jobs") {
        None => None,
        Some(n) => Some(
            n.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--jobs needs a positive integer, got `{n}`"))?,
        ),
    };
    let config = EngineConfig {
        canonicalize: flag(args, "--canonicalize"),
        jobs,
        ..EngineConfig::default()
    };
    Ok((config, flag(args, "--cache")))
}

fn print_sweep_stats(stats: &SweepStats) {
    println!(
        "sweep: {} pairs -> {} unique ({} models x {} canonical tests), \
         {} cache hits, {} checker calls ({:.1}x reduction)",
        stats.total_pairs,
        stats.unique_pairs,
        stats.distinct_models,
        stats.canonical_tests,
        stats.cache_hits,
        stats.checker_calls,
        stats.reduction_factor(),
    );
    if stats.batch.rows > 0 {
        println!(
            "sweep batching: {} test rows, {} model verdicts in {} groups \
             ({:.1}x row collapse), {} shared candidates, {} assumption solves",
            stats.batch.rows,
            stats.batch.models_checked,
            stats.batch.model_groups,
            stats.batch.row_collapse(),
            stats.batch.shared_candidates,
            stats.batch.assumption_solves,
        );
    }
    if stats.sat != mcm_sat::SolverStats::default() {
        println!(
            "sweep solver: {} decisions, {} propagations, {} conflicts, {} restarts",
            stats.sat.decisions,
            stats.sat.propagations,
            stats.sat.conflicts,
            stats.sat.restarts,
        );
    }
}

/// Resolves `--checker` to a [`CheckerKind`] (defaulting to the explicit
/// checker) — shared by the per-cell `check` command and the batched
/// sweep commands, which build the per-cell or test-major implementation
/// from the same kind.
fn checker_kind_from(args: &[String]) -> Result<CheckerKind, String> {
    let name = option_value(args, "--checker").unwrap_or("explicit");
    CheckerKind::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = CheckerKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown checker `{name}`; try one of {}", known.join("/"))
    })
}

fn checker_from(args: &[String]) -> Result<Box<dyn Checker>, String> {
    Ok(checker_kind_from(args)?.build())
}

/// Resolves the model space shared by `explore` and `distinguish`:
/// `--models SPEC` (see [`resolve::model_set`]) wins; otherwise the digit
/// space honoring `--no-deps`. Returns the models plus whether the
/// comparison suite should include dependency idioms (true iff some model
/// can observe them).
fn models_from(args: &[String]) -> Result<(Vec<MemoryModel>, bool), String> {
    match option_value(args, "--models") {
        Some(spec) => {
            if flag(args, "--no-deps") {
                return Err("--no-deps conflicts with --models; name the set once".to_string());
            }
            let models = resolve::model_set(spec)?;
            let with_deps = models.iter().any(|m| m.formula().uses_dependencies());
            Ok((models, with_deps))
        }
        None => {
            let with_deps = !flag(args, "--no-deps");
            Ok((paper::digit_space_models(with_deps), with_deps))
        }
    }
}

const SYNTH_SPEC: ArgSpec = ArgSpec {
    flags: &["--matrix", "--fences", "--deps", "--verbose"],
    options: &["--max-size", "--max-accesses", "--max-locs", "--models"],
};

/// Parses the synthesis bounds shared by both `synth` modes.
fn synth_bounds(args: &[String]) -> Result<(mcm_synth::SynthBounds, usize), String> {
    let mut bounds = mcm_synth::SynthBounds::default();
    if let Some(n) = option_value(args, "--max-accesses") {
        bounds.max_accesses_per_thread = n
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| format!("--max-accesses needs 1..=4, got `{n}`"))?;
    }
    if let Some(n) = option_value(args, "--max-locs") {
        bounds.max_locs = n
            .parse::<u8>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--max-locs needs 1..=255, got `{n}`"))?;
    }
    bounds.include_fences = flag(args, "--fences");
    bounds.include_deps = flag(args, "--deps");
    let max_size = match option_value(args, "--max-size") {
        None => bounds.max_total(),
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| (bounds.min_total()..=bounds.max_total()).contains(&n))
            .ok_or_else(|| {
                format!(
                    "--max-size needs {}..={} for these bounds, got `{n}`",
                    bounds.min_total(),
                    bounds.max_total()
                )
            })?,
    };
    Ok((bounds, max_size))
}

fn print_synth_stats(stats: &mcm_synth::SynthStats, verbose: bool) {
    println!(
        "cegis: {} SAT queries -> {} structures -> {} candidates, {} witnesses, \
         {} sub-spaces exhausted, {} oracle calls (+{} cached)",
        stats.sat_queries,
        stats.structures,
        stats.candidates,
        stats.witnesses,
        stats.shapes_exhausted,
        stats.oracle_calls,
        stats.oracle_cache_hits,
    );
    if verbose {
        println!(
            "solver: {} decisions, {} propagations, {} conflicts, {} restarts, \
             {} learnt clauses retained",
            stats.solver.decisions,
            stats.solver.propagations,
            stats.solver.conflicts,
            stats.solver.restarts,
            stats.solver.learnt_clauses,
        );
        if stats.encoding_mismatches > 0 {
            println!(
                "WARNING: {} encoding/oracle mismatches (please report)",
                stats.encoding_mismatches
            );
        }
    }
}

/// `mcm synth <MODEL> <MODEL> [--max-size N] [--max-accesses N]
/// [--max-locs N] [--fences] [--deps] [--verbose]`, or
/// `mcm synth --matrix [MODEL...]` for the full pairwise minimal-length
/// matrix (the Figure 4 space when no models are named).
pub fn synth(args: &[String]) -> Result<(), String> {
    SYNTH_SPEC.validate(args)?;
    let (bounds, max_size) = synth_bounds(args)?;
    let verbose = flag(args, "--verbose");
    let names = SYNTH_SPEC.positional(args);
    if flag(args, "--matrix") {
        return synth_matrix(args, &names, bounds, max_size, verbose);
    }
    if option_value(args, "--models").is_some() {
        return Err("--models requires --matrix".to_string());
    }
    let [left, right] = names.as_slice() else {
        return Err(
            "usage: mcm synth <MODEL> <MODEL> [--max-size N] [--max-accesses N] \
             [--max-locs N] [--fences] [--deps] [--verbose], or mcm synth --matrix"
                .to_string(),
        );
    };
    let models = vec![resolve::model(left)?, resolve::model(right)?];
    let start = Instant::now();
    let mut synthesizer =
        mcm_synth::Synthesizer::new(models, bounds).map_err(|e| e.to_string())?;
    let pair = synthesizer.pair(0, 1, max_size);
    let elapsed = start.elapsed();
    match (&pair.length, &pair.witness) {
        (Some(length), Some(witness)) => {
            println!(
                "minimal distinguishing length for {} vs {}: {} accesses \
                 (SAT-certified minimum, {:.2?})",
                left, right, length, elapsed,
            );
            println!(
                "witness (allowed by {}, forbidden by {}):",
                pair.allowed_by.as_deref().unwrap_or("?"),
                pair.forbidden_by.as_deref().unwrap_or("?"),
            );
            print!("{witness}");
        }
        _ => println!(
            "{left} and {right} are indistinguishable by any test of <= {max_size} \
             accesses within these bounds (UNSAT-certified, {elapsed:.2?})",
        ),
    }
    print_synth_stats(&synthesizer.stats(), verbose);
    Ok(())
}

fn synth_matrix(
    args: &[String],
    names: &[&String],
    bounds: mcm_synth::SynthBounds,
    max_size: usize,
    verbose: bool,
) -> Result<(), String> {
    if !names.is_empty() && option_value(args, "--models").is_some() {
        return Err("name models positionally or via --models, not both".to_string());
    }
    let models = if let Some(spec) = option_value(args, "--models") {
        resolve::model_set(spec)?
    } else if names.is_empty() {
        // Figure 4's dependency-free space by default; --deps switches to
        // the full 90-model space whose formulas can observe the
        // dependency idioms the flag adds to the search space.
        paper::digit_space_models(bounds.include_deps)
    } else if names.len() == 1 {
        return Err("--matrix needs zero or at least two models".to_string());
    } else {
        names
            .iter()
            .map(|n| resolve::model(n))
            .collect::<Result<Vec<_>, _>>()?
    };
    if models.len() < 2 {
        return Err("--matrix needs at least two models".to_string());
    }
    println!(
        "synthesizing the pairwise minimal-length matrix for {} models \
         (<= {} accesses/thread, {} locs{}{}, lengths <= {max_size}) ...",
        models.len(),
        bounds.max_accesses_per_thread,
        bounds.max_locs,
        if bounds.include_fences { ", fences" } else { "" },
        if bounds.include_deps { ", deps" } else { "" },
    );
    let start = Instant::now();
    let mut synthesizer =
        mcm_synth::Synthesizer::new(models, bounds).map_err(|e| e.to_string())?;
    let matrix = synthesizer.matrix(max_size);
    let elapsed = start.elapsed();
    print!(
        "{}",
        mcm_explore::report::length_matrix_text(&matrix.names, &matrix.lengths)
    );
    let n = matrix.names.len();
    let mut per_length: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut unseparated = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            match matrix.lengths[i][j] {
                Some(len) => *per_length.entry(len).or_default() += 1,
                None => unseparated += 1,
            }
        }
    }
    let histogram: Vec<String> = per_length
        .iter()
        .map(|(len, count)| format!("{count} pairs at length {len}"))
        .collect();
    println!(
        "{} pairs synthesized in {:.2?}: {}; {} pairs equivalent within bounds",
        n * (n - 1) / 2,
        elapsed,
        histogram.join(", "),
        unseparated,
    );
    print_synth_stats(&synthesizer.stats(), verbose);
    Ok(())
}

const CHECK_SPEC: ArgSpec = ArgSpec {
    flags: &["--witness"],
    options: &["--checker"],
};

/// `mcm check <MODEL> <FILE>`.
pub fn check(args: &[String]) -> Result<(), String> {
    CHECK_SPEC.validate(args)?;
    let pos = CHECK_SPEC.positional(args);
    let [model_name, path] = pos.as_slice() else {
        return Err("usage: mcm check <MODEL> <FILE> [--checker C] [--witness]".to_string());
    };
    let model = resolve::model(model_name)?;
    let checker = checker_from(args)?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let tests = parse_litmus_file(&text).map_err(|e| e.to_string())?;
    if tests.is_empty() {
        return Err(format!("{path} contains no tests"));
    }
    for test in &tests {
        let verdict = checker.check(&model, test);
        println!("{}: {} under {}", test.name(), verdict, model.name());
        if flag(args, "--witness") {
            let exec = test.execution();
            print!("{}", mcm_axiomatic::explain::render(&model, &exec, &verdict));
        }
    }
    Ok(())
}

const COMPARE_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps"],
    options: &[],
};

/// `mcm compare <MODEL> <MODEL>`.
pub fn compare(args: &[String]) -> Result<(), String> {
    COMPARE_SPEC.validate(args)?;
    let pos = COMPARE_SPEC.positional(args);
    let [left_name, right_name] = pos.as_slice() else {
        return Err("usage: mcm compare <MODEL> <MODEL> [--no-deps]".to_string());
    };
    let left = resolve::model(left_name)?;
    let right = resolve::model(right_name)?;
    let with_deps = !flag(args, "--no-deps");
    let start = Instant::now();
    let expl = Exploration::run(
        vec![left, right],
        paper::comparison_tests(with_deps),
        &ExplicitChecker::new(),
    );
    let relation = expl.relation(0, 1);
    println!(
        "{} vs {}: {} is {} ({} tests, {:.2?})",
        expl.models[0].name(),
        expl.models[1].name(),
        expl.models[0].name(),
        relation,
        expl.tests.len(),
        start.elapsed(),
    );
    if relation != Relation::Equivalent {
        for t in expl.distinguishing_tests(0, 1) {
            let allowed_left = expl.verdicts[0].allowed(t);
            println!(
                "  {:44} allowed by {:8} forbidden by {}",
                expl.tests[t].name(),
                if allowed_left { expl.models[0].name() } else { expl.models[1].name() },
                if allowed_left { expl.models[1].name() } else { expl.models[0].name() },
            );
        }
    }
    Ok(())
}

/// Parses the streamed-enumeration bounds: `--max-accesses N`,
/// `--max-locs N`, `--fences`, `--deps`.
fn stream_bounds(args: &[String]) -> Result<mcm_gen::StreamBounds, String> {
    let mut bounds = mcm_gen::StreamBounds::default();
    if let Some(n) = option_value(args, "--max-accesses") {
        bounds.max_accesses_per_thread = n
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| format!("--max-accesses needs 1..=4, got `{n}`"))?;
    }
    if let Some(n) = option_value(args, "--max-locs") {
        bounds.max_locs = n
            .parse::<u8>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--max-locs needs 1..=255, got `{n}`"))?;
    }
    bounds.include_fences = flag(args, "--fences");
    bounds.include_deps = flag(args, "--deps");
    Ok(bounds)
}

/// `mcm explore --stream`: sweep the streamed leader enumeration instead
/// of the materialized template suite. The raw bounded space is never
/// stored — tests flow from the canonical-first iterator straight into
/// the chunked engine.
fn explore_stream(args: &[String]) -> Result<(), String> {
    let (config, use_cache) = engine_options(args)?;
    let cache = use_cache.then(VerdictCache::new);
    let checker = checker_kind_from(args)?;
    let bounds = stream_bounds(args)?;
    let limit = match option_value(args, "--limit") {
        None => usize::MAX,
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--limit needs a positive integer, got `{n}`"))?,
    };
    let (models, _) = models_from(args)?;
    let raw = match mcm_gen::stream::try_count_raw(&bounds, 20_000_000) {
        Some(count) => format!("{count} tests"),
        None => "too many tests to even count by shape".to_string(),
    };
    println!(
        "streaming leaders: <= {} accesses/thread x {} threads, {} locs{}{} \
         (raw space: {raw}, never materialized) against {} models ...",
        bounds.max_accesses_per_thread,
        bounds.threads,
        bounds.max_locs,
        if bounds.include_fences { ", fences" } else { "" },
        if bounds.include_deps { ", deps" } else { "" },
        models.len(),
    );
    let start = Instant::now();
    let stream = mcm_gen::stream::leaders(&bounds).take(limit);
    let (exploration, stats) = Exploration::run_engine_streaming(
        models,
        stream,
        || checker.build_batch(),
        &config,
        cache.as_ref(),
    );
    println!(
        "swept {} models x {} streamed leaders in {:.2?}",
        exploration.models.len(),
        exploration.tests.len(),
        start.elapsed(),
    );
    println!("{}", mcm_explore::report::streaming_summary(&stats));
    let lattice = mcm_explore::Lattice::build(&exploration);
    println!(
        "lattice: {} equivalence classes, {} covering edges",
        lattice.classes.len(),
        lattice.edges.len(),
    );
    let pairs = exploration.equivalent_pairs();
    println!("equivalent pairs: {}", pairs.len());
    for (i, j) in pairs.iter().take(12) {
        println!(
            "  {} == {}",
            exploration.models[*i].name(),
            exploration.models[*j].name()
        );
    }
    if pairs.len() > 12 {
        println!("  ... and {} more", pairs.len() - 12);
    }
    if let Some(cache) = &cache {
        println!(
            "cache: {} entries, {} hits, {} misses",
            cache.len(),
            cache.hits(),
            cache.misses(),
        );
    }
    Ok(())
}

const EXPLORE_SPEC: ArgSpec = ArgSpec {
    flags: &[
        "--no-deps",
        "--canonicalize",
        "--cache",
        "--stream",
        "--fences",
        "--deps",
    ],
    options: &[
        "--jobs",
        "--csv",
        "--dot",
        "--max-accesses",
        "--max-locs",
        "--limit",
        "--models",
        "--checker",
    ],
};

/// `mcm explore [--models figure4|90|named|LIST] [--checker C] [--no-deps]
/// [--canonicalize] [--cache] [--jobs N] [--csv FILE] [--dot FILE]
/// [--stream [--max-accesses N] [--max-locs N] [--fences] [--deps]
/// [--limit N]]`.
pub fn explore(args: &[String]) -> Result<(), String> {
    EXPLORE_SPEC.validate(args)?;
    if flag(args, "--stream") {
        return explore_stream(args);
    }
    // Bound arguments configure the streamed enumeration only; accepting
    // them without --stream would silently ignore them.
    for stream_only in ["--max-accesses", "--max-locs", "--limit", "--fences", "--deps"] {
        if args.iter().any(|a| a == stream_only) {
            return Err(format!("{stream_only} requires --stream"));
        }
    }
    let (models, with_deps) = models_from(args)?;
    let (config, use_cache) = engine_options(args)?;
    let cache = use_cache.then(VerdictCache::new);
    let checker = checker_kind_from(args)?;
    let start = Instant::now();
    let tests = paper::comparison_tests(with_deps);
    let (exploration, stats) = Exploration::run_engine(
        models,
        tests,
        || checker.build_batch(),
        &config,
        cache.as_ref(),
    );
    let report = paper::report_from(exploration);
    let elapsed = start.elapsed();
    println!(
        "explored {} models against {} tests in {elapsed:.2?}",
        report.exploration.models.len(),
        report.exploration.tests.len(),
    );
    print_sweep_stats(&stats);
    // The warm re-sweep demo is only honest when the sweep above covered
    // the full 90-model digit space — a custom `--models` list would
    // leave the Figure-4 subspace cold and the "for free" claim false.
    let full_digit_space = match option_value(args, "--models") {
        None => true,
        Some(spec) => matches!(spec.to_ascii_lowercase().as_str(), "90" | "full" | "all"),
    };
    if let Some(cache) = &cache {
        // Demonstrate cross-sweep memoization: the Figure 4 dependency-free
        // subspace re-checks for free, because its 36 models and their
        // canonical tests were all covered by the sweep above.
        if with_deps && full_digit_space {
            let warm_start = Instant::now();
            let (_, warm) = Exploration::run_engine(
                paper::digit_space_models(false),
                paper::comparison_tests(false),
                || checker.build_batch(),
                &config,
                Some(cache),
            );
            println!(
                "warm re-sweep of the dependency-free subspace in {:.2?}: \
                 {} cache hits, {} checker calls",
                warm_start.elapsed(),
                warm.cache_hits,
                warm.checker_calls,
            );
        }
        println!(
            "cache: {} entries, {} hits, {} misses",
            cache.len(),
            cache.hits(),
            cache.misses(),
        );
    }
    println!(
        "equivalence classes: {}",
        report.lattice.classes.len()
    );
    println!("equivalent pairs: {}", report.equivalent_pairs.len());
    for (a, b) in &report.equivalent_pairs {
        println!("  {a} == {b}");
    }
    let names: Vec<&str> = report
        .minimal_set
        .tests
        .iter()
        .map(|&t| report.exploration.tests[t].name())
        .collect();
    println!(
        "minimum distinguishing set: {} tests (SAT-certified: {}): {names:?}",
        report.minimal_set.tests.len(),
        report.minimal_set.proved_minimum,
    );
    println!(
        "paper's L1–L9 sufficient: {}",
        report.nine_tests_sufficient
    );
    if let Some(path) = option_value(args, "--csv") {
        let csv = mcm_explore::report::csv_matrix(&report.exploration);
        fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = option_value(args, "--dot") {
        let dot = render_dot(
            &report.exploration,
            &report.lattice,
            &DotOptions {
                name: "models".to_string(),
                preferred_tests: report.nine_test_indices.clone(),
                ..DotOptions::default()
            },
        );
        fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

const DISTINGUISH_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps", "--canonicalize", "--cache"],
    options: &["--jobs", "--models", "--checker"],
};

/// `mcm distinguish [MODEL...] [--models figure4|90|named|LIST]
/// [--checker C] [--no-deps] [--canonicalize] [--cache] [--jobs N]`.
///
/// Computes a minimum distinguishing test set for the given models (two
/// or more, positionally or as a `--models` set), or for the whole digit
/// space when none are named — the paper's "nine tests" experiment as a
/// standalone command.
pub fn distinguish_cmd(args: &[String]) -> Result<(), String> {
    DISTINGUISH_SPEC.validate(args)?;
    let (config, use_cache) = engine_options(args)?;
    let cache = use_cache.then(VerdictCache::new);
    let checker = checker_kind_from(args)?;
    let names = DISTINGUISH_SPEC.positional(args);
    if !names.is_empty() && option_value(args, "--models").is_some() {
        return Err("name models positionally or via --models, not both".to_string());
    }
    let (models, with_deps) = if names.is_empty() {
        models_from(args)?
    } else if names.len() == 1 {
        return Err("distinguish needs zero or at least two models".to_string());
    } else {
        let models = names
            .iter()
            .map(|n| resolve::model(n))
            .collect::<Result<Vec<_>, _>>()?;
        let with_deps = !flag(args, "--no-deps");
        (models, with_deps)
    };
    if models.len() < 2 {
        return Err("distinguish needs at least two models".to_string());
    }
    let tests = paper::comparison_tests(with_deps);
    let start = Instant::now();
    let (exploration, stats) = Exploration::run_engine(
        models,
        tests,
        || checker.build_batch(),
        &config,
        cache.as_ref(),
    );
    println!(
        "swept {} models x {} tests in {:.2?}",
        exploration.models.len(),
        exploration.tests.len(),
        start.elapsed(),
    );
    print_sweep_stats(&stats);
    let classes = exploration.equivalence_classes();
    println!("equivalence classes: {}", classes.len());
    let minimal = distinguish::minimal_distinguishing_set(&exploration);
    println!(
        "minimum distinguishing set: {} tests (SAT-certified minimum: {})",
        minimal.tests.len(),
        minimal.proved_minimum,
    );
    for &t in &minimal.tests {
        let test = &exploration.tests[t];
        println!("  {:44} {}", test.name(), test.description());
    }
    if let Some(cache) = &cache {
        println!(
            "cache: {} entries, {} hits, {} misses",
            cache.len(),
            cache.hits(),
            cache.misses(),
        );
    }
    Ok(())
}

const SUITE_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps", "--print"],
    options: &[],
};

/// `mcm suite [--no-deps] [--print]`.
pub fn suite(args: &[String]) -> Result<(), String> {
    SUITE_SPEC.validate(args)?;
    let with_deps = !flag(args, "--no-deps");
    let suite = template_suite(with_deps);
    println!(
        "predicates {} DataDep: Corollary 1 bound = {}, materialised = {} tests",
        if with_deps { "with" } else { "without" },
        suite.corollary1_bound,
        suite.len(),
    );
    if flag(args, "--print") {
        for test in &suite.tests {
            println!("{test}");
        }
    } else {
        for test in &suite.tests {
            println!("  {}", test.name());
        }
    }
    Ok(())
}

/// `mcm catalog`.
pub fn catalog(args: &[String]) -> Result<(), String> {
    ArgSpec {
        flags: &[],
        options: &[],
    }
    .validate(args)?;
    for test in catalog::all_tests() {
        println!("{test}");
        if !test.description().is_empty() {
            println!("  ({})\n", test.description());
        }
    }
    Ok(())
}

const PARSE_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &[],
};

/// `mcm parse <FILE>`.
pub fn parse(args: &[String]) -> Result<(), String> {
    PARSE_SPEC.validate(args)?;
    let pos = PARSE_SPEC.positional(args);
    let [path] = pos.as_slice() else {
        return Err("usage: mcm parse <FILE>".to_string());
    };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let tests = parse_litmus_file(&text).map_err(|e| e.to_string())?;
    for test in &tests {
        println!("{test}");
    }
    println!("{} test(s) parsed successfully", tests.len());
    Ok(())
}

const FIGURES_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &["--dot"],
};

/// `mcm figures <fig1|fig2|fig3|fig4|counts|all>`.
pub fn figures(args: &[String]) -> Result<(), String> {
    FIGURES_SPEC.validate(args)?;
    let which = FIGURES_SPEC.positional(args)
        .first()
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();
    let all = which == "all";
    if all || which == "fig1" {
        figure1();
    }
    if all || which == "fig2" {
        figure2();
    }
    if all || which == "fig3" {
        figure3();
    }
    if all || which == "counts" {
        figure_counts();
    }
    if all || which == "fig4" {
        figure4(args)?;
    }
    if !all && !["fig1", "fig2", "fig3", "fig4", "counts"].contains(&which.as_str()) {
        return Err(format!("unknown figure `{which}`"));
    }
    Ok(())
}

fn figure1() {
    println!("==== Figure 1: Test A (TSO load forwarding) ====");
    let test = catalog::test_a();
    println!("{test}");
    let checker = ExplicitChecker::new();
    for model in [
        mcm_models::named::tso(),
        mcm_models::named::sc(),
        mcm_models::named::ibm370(),
    ] {
        println!(
            "  {:8} {}",
            model.name(),
            checker.check(&model, &test)
        );
    }
    println!();
}

fn figure2() {
    println!("==== Figure 2: litmus test templates by critical segment ====");
    let rw = Segment::enumerate(SegmentType::ReadWrite, true);
    let ww = Segment::enumerate(SegmentType::WriteWrite, true);
    let wr = Segment::enumerate(SegmentType::WriteRead, true);
    let rr = Segment::enumerate(SegmentType::ReadRead, true);
    let samples = [
        mcm_gen::template::case1(rw[1]),
        mcm_gen::template::case2(ww[1]),
        mcm_gen::template::case3a(rr[1], ww[1]),
        mcm_gen::template::case3b(rr[1], wr[1], rw[1]),
        mcm_gen::template::case4(wr[1]),
        mcm_gen::template::case5a(wr[0], rr[3]),
        mcm_gen::template::case5b(wr[0], rw[3]),
    ];
    for test in samples.into_iter().flatten() {
        println!("{test}");
        println!("  ({})\n", test.description());
    }
}

fn figure3() {
    println!("==== Figure 3: the nine contrasting litmus tests ====");
    for test in catalog::nine_tests() {
        println!("{test}\n");
    }
}

fn figure_counts() {
    println!("==== §3.4 / Corollary 1: test counts ====");
    println!(
        "  with DataDep    : N_WW=4 N_WR=4 N_RW=6 N_RR=6  ->  {} tests",
        count::paper_bound(true)
    );
    println!(
        "  without DataDep : N_WW=4 N_WR=4 N_RW=4 N_RR=4  ->  {} tests",
        count::paper_bound(false)
    );
    let bounds = naive::NaiveBounds::default();
    println!(
        "  naive enumeration (2 threads, <=3 accesses each, no deps): {} tests raw, {} canonical",
        naive::count_tests_raw(&bounds),
        naive::count_tests(&bounds),
    );
    println!(
        "  materialised template suites: {} (with deps), {} (without)",
        template_suite(true).len(),
        template_suite(false).len(),
    );
    println!();
}

fn figure4(args: &[String]) -> Result<(), String> {
    println!("==== Figure 4: the dependency-free model space ====");
    let report = paper::explore_digit_space(false);
    println!(
        "  {} models, {} classes, {} covering edges",
        report.exploration.models.len(),
        report.lattice.classes.len(),
        report.lattice.edges.len(),
    );
    for (a, b) in &report.equivalent_pairs {
        println!("  merged node: {a} == {b}");
    }
    let path = option_value(args, "--dot").unwrap_or("figure4.dot");
    let dot = render_dot(
        &report.exploration,
        &report.lattice,
        &DotOptions {
            name: "figure4".to_string(),
            preferred_tests: report.nine_test_indices.clone(),
            ..DotOptions::default()
        },
    );
    fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("  wrote {path}");
    Ok(())
}
