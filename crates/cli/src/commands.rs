//! Subcommand implementations: a thin shell over [`mcm_query`].
//!
//! Each subcommand parses its flags into a [`Query`], runs it, and
//! renders the typed report through the global `--format text|json|csv|
//! dot` / `--out FILE` options. No model resolution, checker
//! construction or report formatting happens here — that all lives in
//! the query layer, where a server or a notebook can reach it too.

use std::fs;

use mcm_query::reports::FigureSelection;
use mcm_query::{
    CheckerKind, EngineConfig, Format, ModelSpec, Query, QueryError, Render, Shard, StreamBounds,
    SynthBounds, TestSource,
};
use mcm_serve::{Server, ServerConfig};

/// A subcommand failure, split along the exit-code contract: usage
/// errors (malformed request — exit 2) versus run failures (the request
/// was well-formed but executing it failed — exit 1).
pub enum CliError {
    /// The command line was malformed (exit 2).
    Usage(String),
    /// The run itself failed: unreadable file, parse error (exit 1).
    Run(String),
}

impl From<QueryError> for CliError {
    fn from(err: QueryError) -> CliError {
        if err.is_usage() {
            CliError::Usage(err.to_string())
        } else {
            CliError::Run(err.to_string())
        }
    }
}

fn usage(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

/// The flags (valueless) and options (value-taking) one subcommand knows.
/// Every command validates its arguments against its spec up front, so an
/// unknown `--flag`, a misspelt option or an option with a missing value
/// is a proper error instead of being silently ignored.
struct ArgSpec {
    flags: &'static [&'static str],
    options: &'static [&'static str],
}

/// The output options every subcommand accepts.
const OUTPUT_OPTIONS: [&str; 2] = ["--format", "--out"];

impl ArgSpec {
    /// Rejects unknown `--` arguments and options without a value.
    fn validate(&self, args: &[String]) -> Result<(), CliError> {
        let known_option =
            |a: &str| self.options.contains(&a) || OUTPUT_OPTIONS.contains(&a);
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if known_option(a) {
                match args.get(i + 1) {
                    Some(value) if !value.starts_with("--") => i += 2,
                    _ => return Err(usage(format!("{a} requires a value"))),
                }
            } else if self.flags.contains(&a) {
                i += 1;
            } else if a.starts_with("--") {
                return Err(usage(format!("unknown flag `{a}`; try `mcm help`")));
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// The non-flag arguments, with option values skipped.
    fn positional<'a>(&self, args: &'a [String]) -> Vec<&'a String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if self.options.contains(&a.as_str()) || OUTPUT_OPTIONS.contains(&a.as_str()) {
                i += 2;
            } else if a.starts_with("--") {
                i += 1;
            } else {
                out.push(a);
                i += 1;
            }
        }
        out
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Resolves the global `--format` option (default `text`).
fn output_format(args: &[String]) -> Result<Format, CliError> {
    match option_value(args, "--format") {
        None => Ok(Format::Text),
        Some(name) => Format::from_name(name).ok_or_else(|| {
            usage(format!("unknown format `{name}`; try text|json|csv|dot"))
        }),
    }
}

/// Renders `report` in the requested `--format` and delivers it: stdout
/// by default, the `--out` file when given.
fn emit(report: &dyn Render, args: &[String]) -> Result<(), CliError> {
    let rendered = report.render(output_format(args)?)?;
    match option_value(args, "--out") {
        Some(path) => fs::write(path, &rendered)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}"))),
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

/// Parses the sweep-engine flags shared by `explore` and `distinguish`:
/// `--canonicalize`, `--cache`, `--jobs N`.
fn engine_options(args: &[String]) -> Result<(EngineConfig, bool), CliError> {
    let jobs = match option_value(args, "--jobs") {
        None => None,
        Some(n) => Some(
            n.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| usage(format!("--jobs needs a positive integer, got `{n}`")))?,
        ),
    };
    let config = EngineConfig {
        canonicalize: flag(args, "--canonicalize"),
        jobs,
        ..EngineConfig::default()
    };
    Ok((config, flag(args, "--cache")))
}

/// Resolves `--checker` to a [`CheckerKind`] (defaulting to the explicit
/// checker).
fn checker_kind_from(args: &[String]) -> Result<CheckerKind, CliError> {
    let name = option_value(args, "--checker").unwrap_or("explicit");
    CheckerKind::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = CheckerKind::ALL.iter().map(|k| k.name()).collect();
        usage(format!(
            "unknown checker `{name}`; try one of {}",
            known.join("/")
        ))
    })
}

/// Resolves the model space shared by `explore` and `distinguish`:
/// `--models SPEC` (see [`mcm_query::resolve::model_set`]) wins;
/// otherwise the digit space honoring `--no-deps`. Returns the models
/// plus whether the comparison suite should include dependency idioms
/// (true iff some model can observe them).
fn models_from(args: &[String]) -> Result<(ModelSpec, bool), CliError> {
    match option_value(args, "--models") {
        Some(spec) => {
            if flag(args, "--no-deps") {
                return Err(usage("--no-deps conflicts with --models; name the set once"));
            }
            let models = mcm_query::resolve::model_set(spec)?;
            let with_deps = mcm_query::models_use_dependencies(&models);
            Ok((ModelSpec::Models(models), with_deps))
        }
        None => {
            let with_deps = !flag(args, "--no-deps");
            let spec = if with_deps {
                ModelSpec::Full90
            } else {
                ModelSpec::Figure4
            };
            Ok((spec, with_deps))
        }
    }
}

const SYNTH_SPEC: ArgSpec = ArgSpec {
    flags: &["--matrix", "--fences", "--deps", "--verbose"],
    options: &["--max-size", "--max-accesses", "--max-locs", "--models"],
};

/// Parses the synthesis bounds shared by both `synth` modes.
fn synth_bounds(args: &[String]) -> Result<(SynthBounds, usize), CliError> {
    let mut bounds = SynthBounds::default();
    if let Some(n) = option_value(args, "--max-accesses") {
        bounds.max_accesses_per_thread = n
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| usage(format!("--max-accesses needs 1..=4, got `{n}`")))?;
    }
    if let Some(n) = option_value(args, "--max-locs") {
        bounds.max_locs = n
            .parse::<u8>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| usage(format!("--max-locs needs 1..=255, got `{n}`")))?;
    }
    bounds.include_fences = flag(args, "--fences");
    bounds.include_deps = flag(args, "--deps");
    let max_size = match option_value(args, "--max-size") {
        None => bounds.max_total(),
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| (bounds.min_total()..=bounds.max_total()).contains(&n))
            .ok_or_else(|| {
                usage(format!(
                    "--max-size needs {}..={} for these bounds, got `{n}`",
                    bounds.min_total(),
                    bounds.max_total()
                ))
            })?,
    };
    Ok((bounds, max_size))
}

/// `mcm synth <MODEL> <MODEL> [--max-size N] [--max-accesses N]
/// [--max-locs N] [--fences] [--deps] [--verbose]`, or
/// `mcm synth --matrix [MODEL...]` for the full pairwise minimal-length
/// matrix (the Figure 4 space when no models are named).
pub fn synth(args: &[String]) -> Result<(), CliError> {
    SYNTH_SPEC.validate(args)?;
    let (bounds, max_size) = synth_bounds(args)?;
    let verbose = flag(args, "--verbose");
    let names = SYNTH_SPEC.positional(args);
    if flag(args, "--matrix") {
        let spec = synth_matrix_models(args, &names, &bounds)?;
        // Progress note on stderr: the full Figure-4 matrix takes ~20 s
        // and stdout must stay a clean document in non-text formats.
        eprintln!("synthesizing the pairwise minimal-length matrix ...");
        let report = Query::synth_matrix(spec)
            .bounds(bounds)
            .max_size(max_size)
            .verbose(verbose)
            .run()?;
        return emit(&report, args);
    }
    if option_value(args, "--models").is_some() {
        return Err(usage("--models requires --matrix"));
    }
    let [left, right] = names.as_slice() else {
        return Err(usage(
            "usage: mcm synth <MODEL> <MODEL> [--max-size N] [--max-accesses N] \
             [--max-locs N] [--fences] [--deps] [--verbose], or mcm synth --matrix",
        ));
    };
    let report = Query::synth(left.as_str(), right.as_str())
        .bounds(bounds)
        .max_size(max_size)
        .verbose(verbose)
        .run()?;
    emit(&report, args)
}

/// The model space of a `synth --matrix` request: positional names, a
/// `--models` spec, or the paper's digit space (dependency-free unless
/// `--deps` widens the search to idioms only the 90-model space can
/// observe).
fn synth_matrix_models(
    args: &[String],
    names: &[&String],
    bounds: &SynthBounds,
) -> Result<ModelSpec, CliError> {
    if !names.is_empty() && option_value(args, "--models").is_some() {
        return Err(usage("name models positionally or via --models, not both"));
    }
    if let Some(spec) = option_value(args, "--models") {
        Ok(ModelSpec::parse(spec))
    } else if names.is_empty() {
        Ok(if bounds.include_deps {
            ModelSpec::Full90
        } else {
            ModelSpec::Figure4
        })
    } else if names.len() == 1 {
        Err(usage("--matrix needs zero or at least two models"))
    } else {
        Ok(ModelSpec::List(
            names.iter().map(|n| n.to_string()).collect(),
        ))
    }
}

const CHECK_SPEC: ArgSpec = ArgSpec {
    flags: &["--witness"],
    options: &["--checker"],
};

/// `mcm check <MODEL> <FILE>`.
pub fn check(args: &[String]) -> Result<(), CliError> {
    CHECK_SPEC.validate(args)?;
    let pos = CHECK_SPEC.positional(args);
    let [model_name, path] = pos.as_slice() else {
        return Err(usage(
            "usage: mcm check <MODEL> <FILE> [--checker C] [--witness]",
        ));
    };
    let report = Query::check(model_name.as_str(), TestSource::File(path.into()))
        .checker(checker_kind_from(args)?)
        .witness(flag(args, "--witness"))
        .run()?;
    emit(&report, args)
}

const COMPARE_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps"],
    options: &[],
};

/// `mcm compare <MODEL> <MODEL>`.
pub fn compare(args: &[String]) -> Result<(), CliError> {
    COMPARE_SPEC.validate(args)?;
    let pos = COMPARE_SPEC.positional(args);
    let [left, right] = pos.as_slice() else {
        return Err(usage("usage: mcm compare <MODEL> <MODEL> [--no-deps]"));
    };
    let report = Query::compare(left.as_str(), right.as_str())
        .with_deps(!flag(args, "--no-deps"))
        .run()?;
    emit(&report, args)
}

/// Parses the streamed-enumeration bounds: `--max-accesses N`,
/// `--max-locs N`, `--fences`, `--deps`.
fn stream_bounds(args: &[String]) -> Result<StreamBounds, CliError> {
    let mut bounds = StreamBounds::default();
    if let Some(n) = option_value(args, "--max-accesses") {
        bounds.max_accesses_per_thread = n
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=4).contains(&n))
            .ok_or_else(|| usage(format!("--max-accesses needs 1..=4, got `{n}`")))?;
    }
    if let Some(n) = option_value(args, "--max-locs") {
        bounds.max_locs = n
            .parse::<u8>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| usage(format!("--max-locs needs 1..=255, got `{n}`")))?;
    }
    bounds.include_fences = flag(args, "--fences");
    bounds.include_deps = flag(args, "--deps");
    Ok(bounds)
}

/// Writes the legacy `--csv FILE` / `--dot FILE` side outputs of
/// `explore`, which predate the global `--format`.
fn write_side_outputs(report: &mcm_query::SweepReport, args: &[String]) -> Result<(), CliError> {
    let announce = output_format(args)? == Format::Text;
    let write_artifact = |path: &str, content: String| -> Result<(), CliError> {
        fs::write(path, content)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
        if announce {
            println!("wrote {path}");
        }
        Ok(())
    };
    // Rendered lazily: a plain `mcm explore` never builds these strings.
    if let Some(path) = option_value(args, "--csv") {
        write_artifact(path, report.csv().expect("sweep reports render csv"))?;
    }
    if let Some(path) = option_value(args, "--dot") {
        write_artifact(path, report.dot().expect("sweep reports render dot"))?;
    }
    Ok(())
}

/// `mcm explore --stream`: sweep the streamed leader enumeration instead
/// of the materialized template suite. The raw bounded space is never
/// stored — tests flow from the canonical-first iterator straight into
/// the chunked engine.
fn explore_stream(args: &[String]) -> Result<(), CliError> {
    let (config, use_cache) = engine_options(args)?;
    let bounds = stream_bounds(args)?;
    let limit = match option_value(args, "--limit") {
        None => None,
        Some(n) => Some(
            n.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| usage(format!("--limit needs a positive integer, got `{n}`")))?,
        ),
    };
    let shard = match option_value(args, "--shard") {
        None => None,
        Some(s) => Some(
            s.parse::<Shard>()
                .map_err(|e| usage(format!("--shard: {e}")))?,
        ),
    };
    let (models, _) = models_from(args)?;
    // Progress note on stderr: the sweep can run for seconds and stdout
    // must stay a clean document in non-text formats.
    eprintln!(
        "sweeping streamed leaders (<= {} accesses/thread, {} locs{}{}{}) ...",
        bounds.max_accesses_per_thread,
        bounds.max_locs,
        if bounds.include_fences { ", fences" } else { "" },
        if bounds.include_deps { ", deps" } else { "" },
        shard.map_or(String::new(), |s| format!(", shard {s}")),
    );
    let mut query = Query::sweep()
        .models(models)
        .tests(TestSource::Stream { bounds, limit, shard })
        .checker(checker_kind_from(args)?)
        .engine(config)
        .cache(use_cache);
    if let Some(path) = option_value(args, "--store") {
        query = query.store(path);
    }
    if let Some(path) = option_value(args, "--checkpoint") {
        query = query.checkpoint(path);
    }
    if let Some(path) = option_value(args, "--resume") {
        query = query.resume(path);
    }
    let report = query.run()?;
    emit(&report, args)?;
    write_side_outputs(&report, args)
}

const EXPLORE_SPEC: ArgSpec = ArgSpec {
    flags: &[
        "--no-deps",
        "--canonicalize",
        "--cache",
        "--stream",
        "--fences",
        "--deps",
    ],
    options: &[
        "--jobs",
        "--csv",
        "--dot",
        "--max-accesses",
        "--max-locs",
        "--limit",
        "--shard",
        "--store",
        "--checkpoint",
        "--resume",
        "--models",
        "--checker",
    ],
};

/// `mcm explore [--models figure4|90|named|LIST] [--checker C] [--no-deps]
/// [--canonicalize] [--cache] [--jobs N] [--csv FILE] [--dot FILE]
/// [--stream [--max-accesses N] [--max-locs N] [--fences] [--deps]
/// [--limit N] [--shard I/N] [--store FILE] [--checkpoint FILE]
/// [--resume FILE]]`.
pub fn explore(args: &[String]) -> Result<(), CliError> {
    EXPLORE_SPEC.validate(args)?;
    if flag(args, "--stream") {
        return explore_stream(args);
    }
    // Bound arguments configure the streamed enumeration only; accepting
    // them without --stream would silently ignore them.
    for stream_only in [
        "--max-accesses",
        "--max-locs",
        "--limit",
        "--fences",
        "--deps",
        "--shard",
        "--store",
        "--checkpoint",
        "--resume",
    ] {
        if args.iter().any(|a| a == stream_only) {
            return Err(usage(format!("{stream_only} requires --stream")));
        }
    }
    let (models, with_deps) = models_from(args)?;
    let (config, use_cache) = engine_options(args)?;
    // The warm re-sweep demo is only honest when the sweep covers the
    // full 90-model digit space — a custom `--models` list would leave
    // the Figure-4 subspace cold and the "for free" claim false.
    let full_digit_space = match option_value(args, "--models") {
        None => true,
        Some(spec) => matches!(spec.to_ascii_lowercase().as_str(), "90" | "full" | "all"),
    };
    let report = Query::sweep()
        .models(models)
        .tests(TestSource::TemplateSuite { with_deps })
        .checker(checker_kind_from(args)?)
        .engine(config)
        .cache(use_cache)
        .warm_figure4_demo(use_cache && full_digit_space)
        .run()?;
    emit(&report, args)?;
    write_side_outputs(&report, args)
}

const DISTINGUISH_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps", "--canonicalize", "--cache"],
    options: &["--jobs", "--models", "--checker"],
};

/// `mcm distinguish [MODEL...] [--models figure4|90|named|LIST]
/// [--checker C] [--no-deps] [--canonicalize] [--cache] [--jobs N]`.
///
/// Computes a minimum distinguishing test set for the given models (two
/// or more, positionally or as a `--models` set), or for the whole digit
/// space when none are named — the paper's "nine tests" experiment as a
/// standalone command.
pub fn distinguish_cmd(args: &[String]) -> Result<(), CliError> {
    DISTINGUISH_SPEC.validate(args)?;
    let (config, use_cache) = engine_options(args)?;
    let names = DISTINGUISH_SPEC.positional(args);
    if !names.is_empty() && option_value(args, "--models").is_some() {
        return Err(usage("name models positionally or via --models, not both"));
    }
    let (models, with_deps) = if names.is_empty() {
        models_from(args)?
    } else if names.len() == 1 {
        return Err(usage("distinguish needs zero or at least two models"));
    } else {
        (
            ModelSpec::List(names.iter().map(|n| n.to_string()).collect()),
            !flag(args, "--no-deps"),
        )
    };
    let report = Query::distinguish()
        .models(models)
        .with_deps(with_deps)
        .checker(checker_kind_from(args)?)
        .engine(config)
        .cache(use_cache)
        .run()?;
    emit(&report, args)
}

const ANALYZE_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &["--models", "--tests"],
};

/// `mcm analyze [MODEL...] [--models figure4|90|named|LIST]
/// [--tests FILE]`.
///
/// Purely static: builds the semantic strength lattice over the model
/// set, reports every statically proven equivalent pair and minimized
/// formula, and lints models (and, with `--tests`, a litmus file) —
/// without executing a single litmus test.
pub fn analyze(args: &[String]) -> Result<(), CliError> {
    ANALYZE_SPEC.validate(args)?;
    let names = ANALYZE_SPEC.positional(args);
    if !names.is_empty() && option_value(args, "--models").is_some() {
        return Err(usage("name models positionally or via --models, not both"));
    }
    let models = if !names.is_empty() {
        ModelSpec::List(names.iter().map(|n| n.to_string()).collect())
    } else {
        match option_value(args, "--models") {
            Some(spec) => ModelSpec::parse(spec),
            None => ModelSpec::Full90,
        }
    };
    let mut query = Query::analyze().models(models);
    if let Some(path) = option_value(args, "--tests") {
        query = query.tests(TestSource::File(path.into()));
    }
    emit(&query.run()?, args)
}

const SUITE_SPEC: ArgSpec = ArgSpec {
    flags: &["--no-deps", "--print"],
    options: &[],
};

/// `mcm suite [--no-deps] [--print]`.
pub fn suite(args: &[String]) -> Result<(), CliError> {
    SUITE_SPEC.validate(args)?;
    let report = Query::suite(!flag(args, "--no-deps"))
        .full(flag(args, "--print"))
        .run();
    emit(&report, args)
}

/// `mcm catalog`.
pub fn catalog(args: &[String]) -> Result<(), CliError> {
    ArgSpec {
        flags: &[],
        options: &[],
    }
    .validate(args)?;
    emit(&Query::catalog(), args)
}

const PARSE_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &[],
};

/// `mcm parse <FILE>`.
pub fn parse(args: &[String]) -> Result<(), CliError> {
    PARSE_SPEC.validate(args)?;
    let pos = PARSE_SPEC.positional(args);
    let [path] = pos.as_slice() else {
        return Err(usage("usage: mcm parse <FILE>"));
    };
    let report = Query::parse_file(path.as_str())?;
    emit(&report, args)
}

const FIGURES_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &["--dot"],
};

/// `mcm figures <fig1|fig2|fig3|fig4|counts|all>`.
pub fn figures(args: &[String]) -> Result<(), CliError> {
    FIGURES_SPEC.validate(args)?;
    let which = FIGURES_SPEC
        .positional(args)
        .first()
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();
    let selection = FigureSelection::from_name(&which)
        .ok_or_else(|| usage(format!("unknown figure `{which}`")))?;
    let report = Query::figures(selection);
    emit(&report, args)?;
    // Figure 4's artifact is its DOT rendering; write it alongside the
    // text report (json consumers get the data inline instead).
    if let Some(fig4) = &report.fig4 {
        if output_format(args)? == Format::Text {
            let path = option_value(args, "--dot").unwrap_or("figure4.dot");
            fs::write(path, &fig4.dot)
                .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
            println!("  wrote {path}");
        }
    }
    Ok(())
}

const SERVE_SPEC: ArgSpec = ArgSpec {
    flags: &[],
    options: &[
        "--addr",
        "--workers",
        "--queue-depth",
        "--max-jobs",
        "--max-body-bytes",
        "--max-stream-tests",
        "--read-timeout-ms",
        "--store-dir",
    ],
};

fn serve_usize(args: &[String], name: &str, default: usize) -> Result<usize, CliError> {
    match option_value(args, name) {
        None => Ok(default),
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| usage(format!("{name} needs a positive integer, got `{n}`"))),
    }
}

/// `mcm serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
/// [--max-jobs N] [--max-body-bytes N] [--max-stream-tests N]
/// [--read-timeout-ms N] [--store-dir DIR]`.
///
/// Runs until SIGTERM/SIGINT (or a fatal bind error), serving
/// `POST /query` wire-format documents plus `GET /healthz` and
/// `GET /statsz` — see `mcm_serve` for the request lifecycle.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    SERVE_SPEC.validate(args)?;
    if !SERVE_SPEC.positional(args).is_empty() {
        return Err(usage("serve takes no positional arguments"));
    }
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: option_value(args, "--addr")
            .unwrap_or("127.0.0.1:8323")
            .to_string(),
        workers: serve_usize(args, "--workers", defaults.workers)?,
        queue_depth: serve_usize(args, "--queue-depth", defaults.queue_depth)?,
        max_jobs: serve_usize(args, "--max-jobs", defaults.max_jobs)?,
        max_body_bytes: serve_usize(args, "--max-body-bytes", defaults.max_body_bytes)?,
        max_stream_tests: serve_usize(args, "--max-stream-tests", defaults.max_stream_tests)?,
        read_timeout: std::time::Duration::from_millis(
            serve_usize(args, "--read-timeout-ms", 10_000)? as u64,
        ),
        store_dir: option_value(args, "--store-dir").map(Into::into),
        ..defaults
    };
    let addr = config.addr.clone();
    let server = Server::bind(config)
        .map_err(|e| CliError::Run(format!("cannot bind {addr}: {e}")))?;
    let handle = server.shutdown_handle();
    if mcm_serve::signal::install() {
        mcm_serve::signal::spawn_watcher(handle);
    }
    // Stderr, so stdout stays a clean report channel for tooling that
    // wraps the server.
    eprintln!("mcm serve: listening on http://{}", server.local_addr());
    eprintln!(
        "mcm serve: POST /query, GET /healthz, GET /statsz, GET /metricsz; \
         ctrl-c drains and exits"
    );
    server
        .run()
        .map_err(|e| CliError::Run(format!("serve failed: {e}")))?;
    eprintln!("mcm serve: drained and shut down");
    Ok(())
}
