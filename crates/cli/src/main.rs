//! `mcm` — compare memory consistency models with bounded litmus tests.
//!
//! The command-line face of the workspace: a thin renderer over the
//! [`mcm_query`] API. Every subcommand parses its flags into a query,
//! runs it, and prints the typed report in the requested `--format`
//! (human text by default, schema-versioned JSON / CSV / DOT on demand).
//!
//! Exit codes: `0` success, `1` run failure (unreadable file, parse
//! error), `2` usage error (unknown command, flag, model or format).

use std::process::ExitCode;

mod commands;

use commands::CliError;

const USAGE: &str = "\
mcm — compare memory consistency models with bounded litmus tests
(reproduction of Mador-Haim, Alur, Martin: \"Litmus Tests for Comparing
Memory Consistency Models: How Long Do They Need to Be?\", DAC 2011)

USAGE:
    mcm <COMMAND> [ARGS] [--format text|json|csv|dot] [--out FILE]
                         [--trace-out FILE]

COMMANDS:
    check <MODEL> <FILE>      verdict of every test in a .litmus file
                              [--checker explicit|sat|monolithic] [--witness]
    compare <MODEL> <MODEL>   relation between two models over the
                              complete template suite [--no-deps]
    explore                   the §4.2 exploration of the digit space,
                              test-major batched: every model row is
                              answered per test over shared work
                              [--models figure4|90|named|M1,M2,...]
                              [--checker explicit|sat|monolithic]
                              [--no-deps] [--canonicalize] [--cache]
                              [--jobs N] [--csv FILE] [--dot FILE]
                              [--stream] sweep the streamed leader
                              enumeration instead of the template suite,
                              never materializing the raw space:
                              [--max-accesses 1..4] [--max-locs N]
                              [--fences] [--deps] [--limit N]
                              [--shard I/N (sweep stripe I of N)]
                              [--store FILE (durable verdict log)]
                              [--checkpoint FILE (save resumable state
                              after every chunk)] [--resume FILE (pick a
                              killed sweep back up, bit-identically)]
                              (mcm explore --models 90 --stream is the
                              full 90-model dependency sweep)
    distinguish [MODEL...]    minimum distinguishing test set for the
                              given models (or the whole digit space)
                              [--models SPEC] [--checker C] [--no-deps]
                              [--canonicalize] [--cache] [--jobs N]
    analyze [MODEL...]        static semantic analysis — no litmus test
                              is ever executed: the strength lattice
                              over the model set, statically proven
                              equivalent pairs, minimized formulas, and
                              lints for redundant or degenerate formulas
                              (--format dot renders the lattice)
                              [--models SPEC] [--tests FILE (lint too)]
    synth <MODEL> <MODEL>     CEGIS-synthesize a minimal distinguishing
                              litmus test for the pair: the unknown test
                              becomes SAT variables, the axiomatic
                              checker is the refuting oracle
                              [--max-size N] [--max-accesses 1..4]
                              [--max-locs N] [--fences] [--deps]
                              [--verbose (solver stats)]
    synth --matrix [MODEL...] SAT-certified pairwise minimal-length
                              matrix (Figure 4's 36 dependency-free
                              models; --deps switches to all 90;
                              [--models SPEC] picks any named set)
    suite                     generate the Theorem 1 template suite
                              [--no-deps] [--print]
    catalog                   print Test A, L1–L9 and the classic tests
    figures <WHICH>           regenerate paper artifacts:
                              fig1 | fig2 | fig3 | fig4 | counts | all
    parse <FILE>              validate and pretty-print a .litmus file
    serve                     long-lived HTTP query service: POST /query
                              takes any query as JSON (same reports as
                              the CLI), with one warm verdict cache
                              shared across requests, bounded-queue
                              backpressure (503 + Retry-After) and
                              graceful drain on SIGTERM/ctrl-c
                              [--addr HOST:PORT (default 127.0.0.1:8323)]
                              [--workers N] [--queue-depth N]
                              [--max-jobs N] [--max-body-bytes N]
                              [--max-stream-tests N] [--read-timeout-ms N]
                              [--store-dir DIR (verdict log surviving
                              restarts: a rebooted server answers seen
                              sweeps with zero checker calls)]
    help                      this message

OUTPUT:
    Every command accepts --format text|json|csv|dot and --out FILE.
    JSON documents are schema-versioned and round-trip through the
    in-tree parser (mcm_core::json); csv renders verdict matrices and
    dot renders lattices, where the report has one.

OBSERVABILITY:
    Every command accepts --trace-out FILE: the run's engine, solver
    and serve phases are recorded as hierarchical spans and written as
    a Chrome trace_event JSON file — open it at chrome://tracing or
    https://ui.perfetto.dev. `mcm serve` additionally exposes
    GET /metricsz (Prometheus text: counters, gauges and latency
    histograms with estimated p50/p90/p99 series).

MODELS:
    SC, TSO, x86, PSO, IBM370, RMO, RMO-nodep, Alpha, or any digit model
    M{ww}{wr}{rw}{rr} (e.g. M4044) with digits 0=always reorder,
    1=different addresses, 2=no data deps, 3=both, 4=never.

EXIT CODES:
    0 success; 1 run failure (unreadable file, parse error);
    2 usage error (unknown command, flag, model or format).
";

/// Strips the global `--trace-out FILE` (or `--trace-out=FILE`) flag
/// from the argument list, wherever it appears — it is shared by every
/// subcommand, so the per-command parsers never see it.
fn take_trace_out(args: &mut Vec<String>) -> Result<Option<String>, CliError> {
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace-out" {
            if i + 1 >= args.len() {
                return Err(CliError::Usage(
                    "--trace-out needs a FILE argument".to_string(),
                ));
            }
            args.remove(i);
            found = Some(args.remove(i));
        } else if let Some(value) = args[i].strip_prefix("--trace-out=") {
            found = Some(value.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(found)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match take_trace_out(&mut args) {
        Ok(trace_out) => trace_out,
        Err(CliError::Usage(message)) | Err(CliError::Run(message)) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &trace_out {
        mcm_obs::trace::install(path.as_str());
    }
    let command = args.first().cloned();
    let result = {
        let _span = command
            .as_deref()
            .map(|c| mcm_obs::trace::span(&format!("cli.{c}")));
        dispatch(&args)
    };
    if trace_out.is_some() {
        if let Err(e) = mcm_obs::trace::finish() {
            eprintln!("error: could not write trace file: {e}");
            return ExitCode::from(1);
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Run(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("check") => commands::check(&args[1..]),
        Some("compare") => commands::compare(&args[1..]),
        Some("explore") => commands::explore(&args[1..]),
        Some("distinguish") => commands::distinguish_cmd(&args[1..]),
        Some("analyze") => commands::analyze(&args[1..]),
        Some("synth") => commands::synth(&args[1..]),
        Some("suite") => commands::suite(&args[1..]),
        Some("catalog") => commands::catalog(&args[1..]),
        Some("figures") => commands::figures(&args[1..]),
        Some("parse") => commands::parse(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("help" | "--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command `{other}`; try `mcm help`"
        ))),
    }
}
