//! Agreement of the operational reference machines with the axiomatic
//! layer, machine by machine and checker by checker.
//!
//! The machines explore concrete interleavings / buffer schedules and
//! know nothing of happens-before; the axiomatic checkers know nothing of
//! machine states. On every catalog test (Test A, L1–L9, SB, MP, LB,
//! CoRR, IRIW) each machine must coincide with its axiomatic model under
//! **every** built-in checker — the three per-cell implementations
//! ([`mcm_axiomatic::all_checkers`]) and the batched test-major ones
//! ([`mcm_axiomatic::all_batch_checkers`]), which answer all four models
//! of a machine row in one call.

use mcm_axiomatic::{all_batch_checkers, all_checkers};
use mcm_core::{LitmusTest, MemoryModel};
use mcm_models::{catalog, named};
use mcm_operational::{ibm370_allows, pso_allows, sc_allows, tso_allows};

/// An operational machine's admissibility predicate.
type Machine = fn(&LitmusTest) -> bool;

/// The four machines and their axiomatic counterparts.
fn machine_models() -> Vec<(&'static str, Machine, MemoryModel)> {
    vec![
        ("interleaving-SC", sc_allows as Machine, named::sc()),
        ("store-buffer-TSO", tso_allows, named::tso()),
        ("no-forwarding-IBM370", ibm370_allows, named::ibm370()),
        ("per-location-PSO", pso_allows, named::pso()),
    ]
}

#[test]
fn every_checker_agrees_with_every_machine_on_the_catalog() {
    let machines = machine_models();
    for test in catalog::all_tests() {
        for (machine_name, allows, model) in &machines {
            let operational = allows(&test);
            for checker in all_checkers() {
                assert_eq!(
                    checker.is_allowed(model, &test),
                    operational,
                    "{}: {machine_name} disagrees with the {} checker on {}\n{test}",
                    model.name(),
                    checker.name(),
                    test.name()
                );
            }
        }
    }
}

#[test]
fn batched_checkers_agree_with_every_machine_on_the_catalog() {
    let machines = machine_models();
    let models: Vec<MemoryModel> = machines.iter().map(|(_, _, m)| m.clone()).collect();
    for test in catalog::all_tests() {
        for batch in all_batch_checkers() {
            let verdicts = batch.check_all(&test, &models);
            for ((machine_name, allows, model), verdict) in machines.iter().zip(&verdicts) {
                assert_eq!(
                    verdict.allowed,
                    allows(&test),
                    "{}: {machine_name} disagrees with the batched {} checker on {}\n{test}",
                    model.name(),
                    batch.name(),
                    test.name()
                );
            }
        }
    }
}

#[test]
fn digit_aliases_of_the_machines_agree_too() {
    // The machines also pin down the digit models the paper identifies
    // them with: M4444 = SC, M4044 = TSO, M4144 = IBM370, M1044 = PSO.
    let aliases: Vec<(Machine, &str)> = vec![
        (sc_allows, "M4444"),
        (tso_allows, "M4044"),
        (ibm370_allows, "M4144"),
        (pso_allows, "M1044"),
    ];
    let models: Vec<MemoryModel> = aliases
        .iter()
        .map(|(_, name)| {
            name.parse::<mcm_models::DigitModel>()
                .expect("alias digits are valid")
                .to_model()
        })
        .collect();
    for batch in all_batch_checkers() {
        for test in catalog::all_tests() {
            let verdicts = batch.check_all(&test, &models);
            for ((allows, name), verdict) in aliases.iter().zip(&verdicts) {
                assert_eq!(
                    verdict.allowed,
                    allows(&test),
                    "digit alias {name} disagrees with its machine on {} ({})",
                    test.name(),
                    batch.name()
                );
            }
        }
    }
}
