//! The sequentially consistent reference machine (Lamport 1979):
//! instructions from all threads interleave in program order against a
//! single shared memory.

use std::collections::HashSet;

use mcm_core::{Instruction, LitmusTest, Program, ThreadId};

use crate::machine::{resolve_addr, step_local, State};

/// Decides whether `test`'s outcome is reachable under sequential
/// consistency, by exhaustive interleaving.
#[must_use]
pub fn sc_allows(test: &LitmusTest) -> bool {
    let program = test.program();
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(program)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.is_terminal(program) {
            if state.satisfies(test) {
                return true;
            }
            continue;
        }
        for t in 0..program.threads.len() {
            if let Some(next) = step_thread(program, &state, ThreadId(t as u8)) {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
        }
    }
    false
}

/// Executes the next instruction of thread `tid` directly against memory.
fn step_thread(program: &Program, state: &State, tid: ThreadId) -> Option<State> {
    let thread = &program.threads[tid.index()];
    let ts = &state.threads[tid.index()];
    let instr = thread.instructions.get(ts.pc)?;
    let mut next = state.clone();
    let nts = &mut next.threads[tid.index()];
    nts.pc += 1;
    match instr {
        Instruction::Read { addr, dst } => {
            let loc = resolve_addr(addr, &nts.regs)?;
            let value = next.read_memory(loc);
            next.threads[tid.index()].regs.insert(*dst, value);
        }
        Instruction::Write { addr, val } => {
            let loc = resolve_addr(addr, &nts.regs)?;
            let value = val.eval(&nts.regs).expect("validated program");
            next.memory.insert(loc, value);
        }
        Instruction::Fence(_) => {} // SC: fences are no-ops
        other => {
            let stepped = step_local(other, &mut next.threads[tid.index()].regs);
            debug_assert!(stepped);
        }
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Loc, Outcome, Reg, Value};

    fn test_of(program: Program, outcome: Outcome) -> LitmusTest {
        LitmusTest::new("t", program, outcome).unwrap()
    }

    #[test]
    fn sequential_read_sees_the_write() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let ok = test_of(
            program.clone(),
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(1)),
        );
        assert!(sc_allows(&ok));
        let stale = test_of(
            program,
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(0)),
        );
        assert!(!sc_allows(&stale));
    }

    #[test]
    fn store_buffering_is_forbidden() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let sb = test_of(
            program.clone(),
            Outcome::new()
                .constrain(ThreadId(0), Reg(1), Value(0))
                .constrain(ThreadId(1), Reg(2), Value(0)),
        );
        assert!(!sc_allows(&sb));
        // The 1/1 outcome is reachable.
        let both = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(0), Reg(1), Value(1))
                .constrain(ThreadId(1), Reg(2), Value(1)),
        );
        assert!(sc_allows(&both));
    }

    #[test]
    fn interleavings_cover_racy_reads() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .thread()
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        for value in [0i64, 1] {
            let test = test_of(
                program.clone(),
                Outcome::new().constrain(ThreadId(1), Reg(1), Value(value)),
            );
            assert!(sc_allows(&test), "value {value} should be reachable");
        }
    }
}
