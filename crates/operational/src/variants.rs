//! Operational machines for the other two classic buffered models:
//!
//! * **IBM370** — a store buffer *without* forwarding: a read whose
//!   location has a buffered store must wait for it to drain (this is the
//!   §2.4 difference to TSO, where the read forwards early);
//! * **PSO** — one FIFO buffer *per location*: writes to different
//!   locations drain independently (so write-write pairs to different
//!   addresses reorder), reads forward per location, fences drain
//!   everything.
//!
//! The integration suite checks `ibm370_allows ⟺ M4144` and
//! `pso_allows ⟺ M1044` on every generated test.

use std::collections::HashSet;

use mcm_core::{Instruction, LitmusTest, Loc, Program, ThreadId, Value};

use crate::machine::{resolve_addr, step_local, State};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BufferPolicy {
    /// Single FIFO per thread; reads of buffered locations stall (IBM370).
    FifoNoForwarding,
    /// Independent FIFO per location; reads forward (PSO).
    PerLocationForwarding,
}

/// Decides reachability under the IBM370 machine (store buffer, no
/// forwarding).
#[must_use]
pub fn ibm370_allows(test: &LitmusTest) -> bool {
    explore(test, BufferPolicy::FifoNoForwarding)
}

/// Decides reachability under the PSO machine (per-location store
/// buffers with forwarding).
#[must_use]
pub fn pso_allows(test: &LitmusTest) -> bool {
    explore(test, BufferPolicy::PerLocationForwarding)
}

fn explore(test: &LitmusTest, policy: BufferPolicy) -> bool {
    let program = test.program();
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(program)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.is_terminal(program) {
            if state.satisfies(test) {
                return true;
            }
            continue;
        }
        for t in 0..program.threads.len() {
            let tid = ThreadId(t as u8);
            if let Some(next) = step_instruction(program, &state, tid, policy) {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
            for next in drains(&state, tid, policy) {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
        }
    }
    false
}

fn step_instruction(
    program: &Program,
    state: &State,
    tid: ThreadId,
    policy: BufferPolicy,
) -> Option<State> {
    let thread = &program.threads[tid.index()];
    let ts = &state.threads[tid.index()];
    let instr = thread.instructions.get(ts.pc)?;
    let mut next = state.clone();
    next.threads[tid.index()].pc += 1;
    match instr {
        Instruction::Read { addr, dst } => {
            let loc = resolve_addr(addr, &state.threads[tid.index()].regs)?;
            let buffered: Option<Value> = state.threads[tid.index()]
                .buffer
                .iter()
                .rev()
                .find(|(l, _)| *l == loc)
                .map(|(_, v)| *v);
            let value = match (policy, buffered) {
                // IBM370: no forwarding — the read must wait for the
                // buffered same-address store to drain.
                (BufferPolicy::FifoNoForwarding, Some(_)) => return None,
                (BufferPolicy::PerLocationForwarding, Some(v)) => v,
                (_, None) => state.read_memory(loc),
            };
            next.threads[tid.index()].regs.insert(*dst, value);
        }
        Instruction::Write { addr, val } => {
            let regs = &state.threads[tid.index()].regs;
            let loc = resolve_addr(addr, regs)?;
            let value = val.eval(regs).expect("validated program");
            next.threads[tid.index()].buffer.push((loc, value));
        }
        Instruction::Fence(_) => {
            if !state.threads[tid.index()].buffer.is_empty() {
                return None;
            }
        }
        other => {
            let stepped = step_local(other, &mut next.threads[tid.index()].regs);
            debug_assert!(stepped);
        }
    }
    Some(next)
}

/// The drain choices: IBM370 drains the single FIFO head; PSO may drain
/// the oldest entry of *any* location's queue.
fn drains(state: &State, tid: ThreadId, policy: BufferPolicy) -> Vec<State> {
    let buffer = &state.threads[tid.index()].buffer;
    if buffer.is_empty() {
        return Vec::new();
    }
    match policy {
        BufferPolicy::FifoNoForwarding => {
            let mut next = state.clone();
            let (loc, value) = next.threads[tid.index()].buffer.remove(0);
            next.memory.insert(loc, value);
            vec![next]
        }
        BufferPolicy::PerLocationForwarding => {
            // The buffer vector stays FIFO overall, but any location's
            // *first* entry may retire (per-location queues).
            let mut firsts: Vec<Loc> = Vec::new();
            let mut out = Vec::new();
            for (i, (loc, value)) in buffer.iter().enumerate() {
                if firsts.contains(loc) {
                    continue; // not the oldest entry for this location
                }
                firsts.push(*loc);
                let mut next = state.clone();
                next.threads[tid.index()].buffer.remove(i);
                next.memory.insert(*loc, *value);
                out.push(next);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Outcome, Program, Reg};

    fn test_of(program: Program, outcome: Outcome) -> LitmusTest {
        LitmusTest::new("t", program, outcome).unwrap()
    }

    /// Figure 1's Test A: allowed by TSO (forwarding), forbidden by
    /// IBM370 (no forwarding).
    fn test_a() -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .fence()
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(2))
            .read(Loc::Y, Reg(2))
            .read(Loc::X, Reg(3))
            .build()
            .unwrap();
        test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(0), Reg(1), Value(0))
                .constrain(ThreadId(1), Reg(2), Value(2))
                .constrain(ThreadId(1), Reg(3), Value(0)),
        )
    }

    #[test]
    fn ibm370_forbids_test_a_but_allows_sb() {
        assert!(!ibm370_allows(&test_a()));
        let sb = {
            let program = Program::builder()
                .thread()
                .write(Loc::X, Value(1))
                .read(Loc::Y, Reg(1))
                .thread()
                .write(Loc::Y, Value(1))
                .read(Loc::X, Reg(2))
                .build()
                .unwrap();
            test_of(
                program,
                Outcome::new()
                    .constrain(ThreadId(0), Reg(1), Value(0))
                    .constrain(ThreadId(1), Reg(2), Value(0)),
            )
        };
        assert!(ibm370_allows(&sb));
    }

    #[test]
    fn pso_allows_write_write_reordering() {
        // Message passing is reachable on PSO (the Y write may drain
        // before the X write), not on IBM370.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let mp = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(1), Reg(1), Value(1))
                .constrain(ThreadId(1), Reg(2), Value(0)),
        );
        assert!(pso_allows(&mp));
        assert!(!ibm370_allows(&mp));
    }

    #[test]
    fn pso_keeps_same_location_writes_ordered() {
        // Coherence: two writes to X retire in order, so a remote reader
        // can never see them inverted (read X=2 then X=1 … encoded as the
        // CoRR shape).
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::X, Value(2))
            .thread()
            .read(Loc::X, Reg(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let corr = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(1), Reg(1), Value(2))
                .constrain(ThreadId(1), Reg(2), Value(1)),
        );
        assert!(!pso_allows(&corr));
    }

    #[test]
    fn pso_fence_drains_every_location() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .fence()
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(1))
            .fence()
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let mp_fenced = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(1), Reg(1), Value(1))
                .constrain(ThreadId(1), Reg(2), Value(0)),
        );
        assert!(!pso_allows(&mp_fenced));
    }
}
