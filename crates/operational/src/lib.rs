//! # mcm-operational
//!
//! Operational reference machines for cross-validating the axiomatic
//! semantics of `mcm-axiomatic`:
//!
//! * [`sc`] — Lamport's interleaving machine: an outcome is allowed iff
//!   some interleaving of the threads against a single memory reaches it;
//! * [`tso`] — the store-buffer machine (x86-TSO style): FIFO write
//!   buffers with forwarding, fences drain;
//! * [`variants`] — the IBM370 machine (no forwarding: Figure 1's
//!   discriminator) and the PSO machine (per-location buffers).
//!
//! Both explore their full state space (litmus programs are tiny), so they
//! are *exact*. The integration suite checks the classic folklore
//! theorems against our axiomatic models: `sc_allows ⟺ F = True` and
//! `tso_allows ⟺ F_TSO` (digit model M4044) on every generated test —
//! evidence for the axiomatic semantics that is completely independent of
//! the happens-before construction.
//!
//! ## Example
//!
//! ```
//! use mcm_operational::{sc, tso};
//! use mcm_models::catalog;
//!
//! let sb = catalog::sb();
//! assert!(!sc::sc_allows(&sb));   // SC forbids store buffering…
//! assert!(tso::tso_allows(&sb));  // …TSO's store buffers allow it.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod sc;
pub mod tso;
pub mod variants;

pub use sc::sc_allows;
pub use tso::tso_allows;
pub use variants::{ibm370_allows, pso_allows};
