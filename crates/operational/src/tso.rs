//! The store-buffer TSO reference machine (the x86-TSO operational model
//! of Owens, Sarkar, Sewell — SPARC TSO in the paper's terms).
//!
//! Each thread owns a FIFO store buffer. A write enters the buffer; buffer
//! entries drain to memory nondeterministically, in order. A read first
//! forwards from the newest matching buffer entry, falling back to memory;
//! a fence can only execute with an empty buffer. The axiomatic
//! counterpart is `F_TSO` (digit model M4044) — the integration suite
//! checks the two agree on every generated test.

use std::collections::HashSet;

use mcm_core::{Instruction, LitmusTest, Program, ThreadId};

use crate::machine::{resolve_addr, step_local, State};

/// Decides whether `test`'s outcome is reachable under the store-buffer
/// TSO machine, by exhaustive exploration.
#[must_use]
pub fn tso_allows(test: &LitmusTest) -> bool {
    let program = test.program();
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(program)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.is_terminal(program) {
            if state.satisfies(test) {
                return true;
            }
            continue;
        }
        for t in 0..program.threads.len() {
            let tid = ThreadId(t as u8);
            // Nondeterministic choice 1: the thread executes its next
            // instruction.
            if let Some(next) = step_instruction(program, &state, tid) {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
            // Nondeterministic choice 2: the thread's oldest buffered
            // store drains to memory.
            if let Some(next) = drain_one(&state, tid) {
                if !visited.contains(&next) {
                    stack.push(next);
                }
            }
        }
    }
    false
}

fn step_instruction(program: &Program, state: &State, tid: ThreadId) -> Option<State> {
    let thread = &program.threads[tid.index()];
    let ts = &state.threads[tid.index()];
    let instr = thread.instructions.get(ts.pc)?;
    let mut next = state.clone();
    {
        let nts = &mut next.threads[tid.index()];
        nts.pc += 1;
    }
    match instr {
        Instruction::Read { addr, dst } => {
            let loc = resolve_addr(addr, &state.threads[tid.index()].regs)?;
            // Forward from the newest matching buffer entry, else memory.
            let forwarded = state.threads[tid.index()]
                .buffer
                .iter()
                .rev()
                .find(|(l, _)| *l == loc)
                .map(|(_, v)| *v);
            let value = forwarded.unwrap_or_else(|| state.read_memory(loc));
            next.threads[tid.index()].regs.insert(*dst, value);
        }
        Instruction::Write { addr, val } => {
            let regs = &state.threads[tid.index()].regs;
            let loc = resolve_addr(addr, regs)?;
            let value = val.eval(regs).expect("validated program");
            next.threads[tid.index()].buffer.push((loc, value));
        }
        Instruction::Fence(_) => {
            // A full fence retires only once the buffer has drained.
            if !state.threads[tid.index()].buffer.is_empty() {
                return None;
            }
        }
        other => {
            let stepped = step_local(other, &mut next.threads[tid.index()].regs);
            debug_assert!(stepped);
        }
    }
    Some(next)
}

fn drain_one(state: &State, tid: ThreadId) -> Option<State> {
    if state.threads[tid.index()].buffer.is_empty() {
        return None;
    }
    let mut next = state.clone();
    let (loc, value) = next.threads[tid.index()].buffer.remove(0);
    next.memory.insert(loc, value);
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::{Loc, Outcome, Reg, Value};

    fn test_of(program: Program, outcome: Outcome) -> LitmusTest {
        LitmusTest::new("t", program, outcome).unwrap()
    }

    fn sb(with_fences: bool) -> LitmusTest {
        let mut builder = Program::builder().thread().write(Loc::X, Value(1));
        if with_fences {
            builder = builder.fence();
        }
        builder = builder.read(Loc::Y, Reg(1)).thread().write(Loc::Y, Value(1));
        if with_fences {
            builder = builder.fence();
        }
        let program = builder.read(Loc::X, Reg(2)).build().unwrap();
        test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(0), Reg(1), Value(0))
                .constrain(ThreadId(1), Reg(2), Value(0)),
        )
    }

    #[test]
    fn store_buffering_is_allowed_without_fences() {
        assert!(tso_allows(&sb(false)));
    }

    #[test]
    fn fences_restore_sc_for_store_buffering() {
        assert!(!tso_allows(&sb(true)));
    }

    #[test]
    fn forwarding_reads_own_buffered_write() {
        // W X=1; R X -> r1 must see 1 even while the write is buffered,
        // and can never see 0.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .read(Loc::X, Reg(1))
            .build()
            .unwrap();
        let forwarded = test_of(
            program.clone(),
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(1)),
        );
        assert!(tso_allows(&forwarded));
        let stale = test_of(
            program,
            Outcome::new().constrain(ThreadId(0), Reg(1), Value(0)),
        );
        assert!(!tso_allows(&stale));
    }

    #[test]
    fn message_passing_is_forbidden() {
        // TSO keeps both write-write and read-read order.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .write(Loc::Y, Value(1))
            .thread()
            .read(Loc::Y, Reg(1))
            .read(Loc::X, Reg(2))
            .build()
            .unwrap();
        let mp = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(1), Reg(1), Value(1))
                .constrain(ThreadId(1), Reg(2), Value(0)),
        );
        assert!(!tso_allows(&mp));
    }

    #[test]
    fn figure1_test_a_is_reachable() {
        // The paper's flagship example: T2 forwards its own W Y=2 while
        // the write is still buffered, then reads X=0; T1's fenced write
        // to X retires before it reads Y=0.
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .fence()
            .read(Loc::Y, Reg(1))
            .thread()
            .write(Loc::Y, Value(2))
            .read(Loc::Y, Reg(2))
            .read(Loc::X, Reg(3))
            .build()
            .unwrap();
        let test_a = test_of(
            program,
            Outcome::new()
                .constrain(ThreadId(0), Reg(1), Value(0))
                .constrain(ThreadId(1), Reg(2), Value(2))
                .constrain(ThreadId(1), Reg(3), Value(0)),
        );
        assert!(tso_allows(&test_a));
    }
}
