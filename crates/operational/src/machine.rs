//! A small-step machine shared by the operational models.
//!
//! Both reference machines explore every reachable terminal state of a
//! litmus program by exhaustive DFS over nondeterministic steps
//! (interleaving choices, store-buffer drains), memoising visited states.
//! Litmus programs are loop-free and tiny, so the state space is small.

use std::collections::BTreeMap;

use mcm_core::{AddrExpr, Instruction, LitmusTest, Loc, Program, Reg, ThreadId, Value};

/// The architectural state of one thread.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadState {
    /// Program counter: index of the next instruction.
    pub pc: usize,
    /// Register file.
    pub regs: BTreeMap<Reg, Value>,
    /// FIFO store buffer (oldest first) — unused by the SC machine.
    pub buffer: Vec<(Loc, Value)>,
}

/// A whole-machine state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct State {
    /// Per-thread states.
    pub threads: Vec<ThreadState>,
    /// Shared memory (absent locations hold [`Value::INIT`]).
    pub memory: BTreeMap<Loc, Value>,
}

impl State {
    /// The initial state of `program`.
    #[must_use]
    pub fn initial(program: &Program) -> State {
        State {
            threads: vec![ThreadState::default(); program.threads.len()],
            memory: BTreeMap::new(),
        }
    }

    /// The value of `loc` in shared memory.
    #[must_use]
    pub fn read_memory(&self, loc: Loc) -> Value {
        self.memory.get(&loc).copied().unwrap_or(Value::INIT)
    }

    /// Whether every thread has retired all its instructions and drained
    /// its buffer.
    #[must_use]
    pub fn is_terminal(&self, program: &Program) -> bool {
        self.threads.iter().enumerate().all(|(t, ts)| {
            ts.pc == program.threads[t].instructions.len() && ts.buffer.is_empty()
        })
    }

    /// Whether the terminal state satisfies a litmus outcome.
    #[must_use]
    pub fn satisfies(&self, test: &LitmusTest) -> bool {
        test.outcome().constraints().iter().all(|&(tid, reg, want)| {
            self.threads[tid.index()].regs.get(&reg) == Some(&want)
        })
    }
}

/// Resolves an address operand against a thread's registers.
///
/// Returns `None` for an unset register or a non-address value — such
/// states are discarded (validated programs with complete outcomes never
/// produce them on feasible paths, but the simulator explores *all* value
/// outcomes, including ones no outcome constraint will accept).
#[must_use]
pub fn resolve_addr(addr: &AddrExpr, regs: &BTreeMap<Reg, Value>) -> Option<Loc> {
    match addr {
        AddrExpr::Loc(loc) => Some(*loc),
        AddrExpr::Reg(r) => Loc::from_address(*regs.get(r)?),
    }
}

/// Executes the *local* part of a non-memory instruction (ops, branches).
/// Returns `false` if the instruction is a memory access or fence (which
/// the machines handle themselves).
#[must_use]
pub fn step_local(instr: &Instruction, regs: &mut BTreeMap<Reg, Value>) -> bool {
    match instr {
        Instruction::Op { dst, expr } => {
            let value = expr.eval(regs).expect("validated program");
            regs.insert(*dst, value);
            true
        }
        Instruction::Branch { cond } => {
            let _ = cond.eval(regs).expect("validated program");
            true
        }
        _ => false,
    }
}

/// A convenient alias: which thread takes the next step.
pub type Tid = ThreadId;

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::RegExpr;

    #[test]
    fn initial_state_is_not_terminal_for_nonempty_programs() {
        let program = Program::builder()
            .thread()
            .write(Loc::X, Value(1))
            .build()
            .unwrap();
        let state = State::initial(&program);
        assert!(!state.is_terminal(&program));
        assert_eq!(state.read_memory(Loc::X), Value::INIT);
    }

    #[test]
    fn local_steps_update_registers() {
        let mut regs = BTreeMap::new();
        regs.insert(Reg(1), Value(3));
        let op = Instruction::Op {
            dst: Reg(2),
            expr: RegExpr::dep_const(Reg(1), Value(7)),
        };
        assert!(step_local(&op, &mut regs));
        assert_eq!(regs.get(&Reg(2)), Some(&Value(7)));
        let write = Instruction::Write {
            addr: AddrExpr::Loc(Loc::X),
            val: RegExpr::Const(Value(1)),
        };
        assert!(!step_local(&write, &mut regs));
    }

    #[test]
    fn address_resolution() {
        let mut regs = BTreeMap::new();
        regs.insert(Reg(1), Loc::Y.base_address());
        assert_eq!(
            resolve_addr(&AddrExpr::Reg(Reg(1)), &regs),
            Some(Loc::Y)
        );
        regs.insert(Reg(1), Value(3));
        assert_eq!(resolve_addr(&AddrExpr::Reg(Reg(1)), &regs), None);
        assert_eq!(
            resolve_addr(&AddrExpr::Loc(Loc::X), &regs),
            Some(Loc::X)
        );
    }
}
