//! A bounded multi-producer/multi-consumer queue — the backpressure
//! point between the acceptor and the worker pool.
//!
//! The acceptor **never blocks** on a full queue: [`Bounded::try_push`]
//! hands the item straight back so the caller can turn it into a `503`
//! instead of letting latency pile up invisibly. Consumers block in
//! [`Bounded::pop`] until an item arrives or the queue is closed *and*
//! drained — closing therefore lets in-flight and already-queued work
//! finish while refusing anything new, which is exactly the graceful-
//! shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused, carrying the item back to the producer.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed load.
    Full(T),
    /// The queue was closed; the caller should stop producing.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with blocking consumers and
/// non-blocking producers.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. Returns
    /// `None` only once the queue is closed **and** fully drained, so
    /// every accepted item is still handed to a consumer after close.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.takers.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is
    /// already queued and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.takers.notify_all();
    }

    /// Items currently queued (racy; for monitoring only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether nothing is queued (racy; for monitoring only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let queue = Bounded::new(4);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
    }

    #[test]
    fn full_queue_returns_the_item() {
        let queue = Bounded::new(2);
        queue.try_push("a").unwrap();
        queue.try_push("b").unwrap();
        match queue.try_push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_signals_none() {
        let queue = Bounded::new(8);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        queue.close();
        match queue.try_push(3) {
            Err(PushError::Closed(item)) => assert_eq!(item, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Already-queued items survive the close...
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        // ...and only then does the queue report exhaustion.
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let queue = Arc::new(Bounded::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || queue.pop())
            })
            .collect();
        queue.try_push(7).unwrap();
        queue.close();
        let mut got: Vec<Option<i32>> = consumers
            .into_iter()
            .map(|consumer| consumer.join().unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let queue = Bounded::new(0);
        queue.try_push(1).unwrap();
        assert!(matches!(queue.try_push(2), Err(PushError::Full(2))));
    }
}
