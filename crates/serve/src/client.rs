//! A minimal blocking HTTP/1.1 client, just big enough to talk to this
//! crate's server: one request, read to EOF, parse the response.
//!
//! It exists so the black-box test harness and the `serve_load` bench
//! drive the server over **real sockets** without a client dependency.
//! [`send_raw`] additionally ships arbitrary bytes, which is what the
//! adversarial suite uses to probe the parser.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup (first match).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn invalid(why: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why.into())
}

/// Sends `bytes` verbatim and parses whatever comes back.
///
/// # Errors
///
/// Propagates socket errors; [`std::io::ErrorKind::InvalidData`] when
/// the peer's answer is not a parseable HTTP/1.1 response (including an
/// empty answer — a dropped connection).
pub fn send_raw(addr: SocketAddr, bytes: &[u8], timeout: Duration) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(bytes)?;
    stream.flush()?;
    // The server replies then closes (`Connection: close`), so EOF
    // delimits the response.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path` with a 10-second timeout.
///
/// # Errors
///
/// As for [`send_raw`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: mcm\r\nConnection: close\r\n\r\n");
    send_raw(addr, request.as_bytes(), Duration::from_secs(10))
}

/// `POST /query` with a JSON body and a generous timeout (queries can
/// legitimately take a while under load).
///
/// # Errors
///
/// As for [`send_raw`].
pub fn post_query(addr: SocketAddr, body: &str) -> std::io::Result<Response> {
    let request = format!(
        "POST /query HTTP/1.1\r\nHost: mcm\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    send_raw(addr, request.as_bytes(), Duration::from_secs(120))
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    if raw.is_empty() {
        return Err(invalid("peer closed the connection without a response"));
    }
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response head never ended"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unexpected status line `{status_line}`")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("unparseable status in `{status_line}`")))?;
    let headers = lines
        .filter(|line| !line.is_empty())
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid(format!("malformed response header `{line}`")))?;
            Ok((name.to_string(), value.trim().to_string()))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| invalid("non-UTF-8 body"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\
                    Content-Length: 2\r\n\r\nhi";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.body, "hi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"nonsense\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nno end").is_err());
    }
}
