//! A deliberately small HTTP/1.1 subset: parse one request, write one
//! response, close the connection.
//!
//! The server speaks `Connection: close` only — one request per TCP
//! connection — which keeps the state machine trivial and makes the
//! adversarial surface auditable: every way a request can be malformed
//! maps to one [`HttpError`] variant and thus one status code, and no
//! input may panic or wedge a worker (socket timeouts bound every read).
//!
//! Intentional limits, all of which fail **closed**:
//!
//! * request heads are capped at [`MAX_HEAD_BYTES`];
//! * bodies require an exact `Content-Length` (no chunked transfer —
//!   that is answered with `501`);
//! * bodies are capped by the server's configured maximum (`413`);
//! * a read that times out mid-request is `408`, not a hung worker.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use mcm_core::json::Json;

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Everything that can go wrong while reading a request, each mapping
/// to exactly one response status.
#[derive(Debug)]
pub enum HttpError {
    /// `400` — syntactically broken request (line, headers, length
    /// mismatch, truncation, oversized head).
    BadRequest(String),
    /// `411` — a body-bearing method without `Content-Length`.
    LengthRequired,
    /// `413` — declared body larger than the server's cap (payload).
    PayloadTooLarge(usize),
    /// `501` — a transfer mechanism this server does not implement.
    NotImplemented(String),
    /// `408` — the socket timed out before a full request arrived.
    Timeout,
    /// The peer vanished before sending anything useful; there is
    /// nobody left to answer, so no response is written.
    Disconnected,
}

impl HttpError {
    /// The status code this error is answered with (`0` for
    /// [`HttpError::Disconnected`], which gets no answer).
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::NotImplemented(_) => 501,
            HttpError::Timeout => 408,
            HttpError::Disconnected => 0,
        }
    }

    /// The human-facing message for the error document.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(why) => why.clone(),
            HttpError::LengthRequired => "POST requires a Content-Length header".to_string(),
            HttpError::PayloadTooLarge(limit) => {
                format!("request body exceeds the {limit}-byte limit")
            }
            HttpError::NotImplemented(what) => what.clone(),
            HttpError::Timeout => "timed out waiting for the request".to_string(),
            HttpError::Disconnected => "peer disconnected".to_string(),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, verbatim (`/query`).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn bad(why: impl Into<String>) -> HttpError {
    HttpError::BadRequest(why.into())
}

fn io_error(e: &std::io::Error, started: bool) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ if !started => HttpError::Disconnected,
        _ => bad("connection error mid-request"),
    }
}

/// Reads and parses one request from `stream`. The caller must have set
/// a read timeout; a slow or silent peer surfaces as
/// [`HttpError::Timeout`], never as a blocked worker.
///
/// # Errors
///
/// An [`HttpError`] naming the response status to write.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            // The terminator may arrive mid-chunk after the head has
            // already blown past the cap; the cap applies regardless.
            if pos > MAX_HEAD_BYTES {
                return Err(bad(format!(
                    "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
                )));
            }
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad(format!(
                "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
            )));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| io_error(&e, !buf.is_empty()))?;
        if n == 0 {
            return Err(if buf.is_empty() {
                HttpError::Disconnected
            } else {
                bad("truncated request head")
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let (method, target) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header line `{}`", sanitize(line))))?;
        if name.is_empty() || name.contains(' ') || name.bytes().any(|b| b.is_ascii_control()) {
            return Err(bad(format!("malformed header name `{}`", sanitize(name))));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = request.header("Transfer-Encoding") {
        return Err(HttpError::NotImplemented(format!(
            "Transfer-Encoding `{}` is not supported; send a Content-Length body",
            sanitize(te)
        )));
    }

    let declared = match request.header("Content-Length") {
        Some(raw) => Some(parse_content_length(raw, max_body)?),
        None if request.method == "POST" => return Err(HttpError::LengthRequired),
        None => None,
    };

    if let Some(length) = declared {
        // Bytes past the head already sit in `buf`.
        let mut body = buf[head_end + 4..].to_vec();
        if body.len() > length {
            return Err(bad("request body longer than Content-Length"));
        }
        while body.len() < length {
            let n = stream.read(&mut chunk).map_err(|e| io_error(&e, true))?;
            if n == 0 {
                return Err(bad(format!(
                    "truncated body: Content-Length {length} but only {} bytes sent",
                    body.len()
                )));
            }
            body.extend_from_slice(&chunk[..n]);
            if body.len() > length {
                return Err(bad("request body longer than Content-Length"));
            }
        }
        request.body = body;
    }
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(format!("malformed request line `{}`", sanitize(line))));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad(format!("malformed method `{}`", sanitize(method))));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(bad(format!("malformed target `{}`", sanitize(target))));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(bad(format!(
            "unsupported protocol `{}`; this server speaks HTTP/1.1",
            sanitize(version)
        )));
    }
    Ok((method.to_string(), target.to_string()))
}

fn parse_content_length(raw: &str, max_body: usize) -> Result<usize, HttpError> {
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad(format!("invalid Content-Length `{}`", sanitize(raw))));
    }
    // All-digits but unparseable means overflow — larger than any cap.
    let length: usize = raw.parse().map_err(|_| HttpError::PayloadTooLarge(max_body))?;
    if length > max_body {
        return Err(HttpError::PayloadTooLarge(max_body));
    }
    Ok(length)
}

/// Clips untrusted text for inclusion in an error message.
fn sanitize(text: &str) -> String {
    text.chars()
        .take(64)
        .map(|c| if c.is_control() { '.' } else { c })
        .collect()
}

/// A response ready to serialize: status, body and any extra headers
/// (`Retry-After`, `Allow`).
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set.
    pub extra: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given content type.
    #[must_use]
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            extra: Vec::new(),
            body,
        }
    }

    /// An error response whose body is the standard JSON error document
    /// (`kind: "error"`, schema-versioned like every other report).
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        let doc = Json::object([
            ("schema_version", Json::Int(1)),
            ("kind", Json::from("error")),
            ("status", Json::Int(i64::from(status))),
            ("reason", Json::from(reason(status))),
            ("message", Json::from(message)),
        ]);
        Response {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: doc.pretty(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra.push((name.to_string(), value.into()));
        self
    }
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `response` to `stream`. Always `Connection: close`.
///
/// # Errors
///
/// Propagates socket write failures (a vanished peer is not worth more
/// than a dropped connection).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.extra {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&response.body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects() {
        assert_eq!(
            parse_request_line("GET /healthz HTTP/1.1").unwrap(),
            ("GET".to_string(), "/healthz".to_string())
        );
        for bad_line in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/1.1 extra",
            "get /x HTTP/1.1",
            "GET x HTTP/1.1",
            "GET /x HTTP/2",
            "GET /x SPDY/3",
        ] {
            assert!(parse_request_line(bad_line).is_err(), "`{bad_line}`");
        }
    }

    #[test]
    fn content_length_is_strict() {
        assert_eq!(parse_content_length("42", 100).unwrap(), 42);
        assert!(matches!(
            parse_content_length("101", 100),
            Err(HttpError::PayloadTooLarge(100))
        ));
        assert!(matches!(
            parse_content_length("99999999999999999999999999", 100),
            Err(HttpError::PayloadTooLarge(100))
        ));
        for invalid in ["", "-1", "4.2", "0x10", " 5", "5 "] {
            assert!(
                matches!(parse_content_length(invalid, 100), Err(HttpError::BadRequest(_))),
                "`{invalid}`"
            );
        }
    }

    #[test]
    fn error_documents_are_valid_json() {
        let response = Response::error(413, "too big");
        let doc = Json::parse(&response.body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_i64), Some(413));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(doc.get("reason").and_then(Json::as_str), Some("Payload Too Large"));
    }

    #[test]
    fn sanitize_clips_and_strips_controls() {
        let evil = "a\r\nb".to_string() + &"x".repeat(200);
        let clean = sanitize(&evil);
        assert_eq!(clean.len(), 64);
        assert!(!clean.contains('\r') && !clean.contains('\n'));
    }
}
