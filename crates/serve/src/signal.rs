//! SIGINT/SIGTERM → graceful shutdown, with no `libc` crate.
//!
//! The workspace forbids new external dependencies, so the two signal
//! registrations the server needs are declared directly against the C
//! library that `std` already links. The handler does the only thing an
//! async-signal-safe handler may: store into a static atomic. A watcher
//! thread polls that flag and triggers the [`ShutdownHandle`], so all
//! real shutdown work happens on a normal thread.
//!
//! On non-Unix targets [`install`] is a no-op returning `false`; the
//! server still shuts down via its handle (ctrl-c then kills the
//! process the ordinary way).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::ShutdownHandle;

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler)` from
        // the libc that std links; handlers are passed as raw addresses
        // to avoid declaring a second foreign type.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: `signal` is the POSIX libc entry point and `on_signal`
        // is async-signal-safe (a single atomic store).
        unsafe {
            signal(SIGINT, on_signal as *const () as usize) != SIG_ERR
                && signal(SIGTERM, on_signal as *const () as usize) != SIG_ERR
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() -> bool {
        false
    }
}

/// Registers SIGINT and SIGTERM handlers that mark the process for
/// shutdown. Returns whether registration succeeded.
pub fn install() -> bool {
    sys::install()
}

/// Whether a shutdown signal has arrived since the last call
/// (consuming it).
pub fn pending() -> bool {
    SIGNALLED.swap(false, Ordering::SeqCst)
}

/// Spawns the watcher thread: polls [`pending`] and fires
/// `handle.shutdown()` once a signal lands. The thread also exits when
/// the handle is shut down by other means, so it never outlives the
/// server by more than one poll interval.
pub fn spawn_watcher(handle: ShutdownHandle) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        if pending() {
            handle.shutdown();
            return;
        }
        if handle.is_shutdown() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_consumes_the_flag() {
        SIGNALLED.store(true, Ordering::SeqCst);
        assert!(pending());
        assert!(!pending());
    }
}
