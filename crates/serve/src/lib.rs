//! `mcm-serve`: the query API as a long-lived service.
//!
//! Everything below the wire already existed — `mcm-query` turns a JSON
//! document into a typed report ([`mcm_query::wire`]), and the engine
//! memoizes verdicts in a [`VerdictCache`]. This crate adds the
//! production shell around that core, hand-rolled on
//! [`std::net::TcpListener`] so the workspace stays dependency-free:
//!
//! * **One warm cache per process.** Every request runs against the same
//!   shared [`VerdictCache`], so a sweep warmed by one client accelerates
//!   the next — the cross-request analogue of the §4.2 warm-lattice
//!   effect. Requests opt out with `"cache": false`.
//! * **Backpressure, not queues of unbounded sadness.** The acceptor
//!   pushes connections into a bounded queue; when it is full the
//!   connection is answered `503` + `Retry-After` immediately instead of
//!   silently inflating tail latency.
//! * **Server-side ceilings.** Per-request [`EngineConfig`] knobs are
//!   honoured but clamped ([`ServerConfig::max_jobs`],
//!   [`ServerConfig::max_stream_tests`], [`ServerConfig::max_body_bytes`])
//!   so no request can monopolise the host.
//! * **Graceful shutdown.** A [`ShutdownHandle`] (or SIGTERM/SIGINT via
//!   [`signal`]) stops the acceptor, refuses new connections, drains
//!   queued and in-flight requests to completion, then joins the workers.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept ──► bounded queue ──► worker: parse HTTP ──► parse wire JSON
//!    │            │(full)            │(malformed)         │(invalid)
//!    │            └──► 503           └──► 4xx             └──► 400
//!    │                                                        │
//!    └ shutdown: refuse + drain              clamp ► run ► render ► 200
//!                                                   (shared VerdictCache)
//! ```
//!
//! Endpoints: `POST /query` (a wire-format document, answered in the
//! requested format), `GET /healthz`, `GET /statsz`.
//!
//! ## Example
//!
//! ```
//! use mcm_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.shutdown_handle();
//! let runner = std::thread::spawn(move || server.run());
//!
//! let health = mcm_serve::client::get(addr, "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//!
//! handle.shutdown();
//! runner.join().unwrap().unwrap();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcm_explore::{EngineConfig, VerdictCache};
use mcm_query::wire::{QuerySpec, WireRequest};
use mcm_query::{Format, TestSource};
use mcm_store::DiskCache;

pub mod client;
mod http;
mod queue;
pub mod signal;
mod stats;

pub use http::{HttpError, Request, Response, MAX_HEAD_BYTES};
pub use queue::{Bounded, PushError};
pub use stats::ServeStats;

/// Tunables for one server instance. `Default` is sized for local use;
/// the CLI maps flags onto these fields.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Connections the queue holds before the acceptor sheds with `503`.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes (`413` above).
    pub max_body_bytes: usize,
    /// Ceiling on per-request `engine.jobs`.
    pub max_jobs: usize,
    /// Ceiling on per-request stream-source test counts.
    pub max_stream_tests: usize,
    /// Socket read/write timeout per connection (`408` on expiry).
    pub read_timeout: Duration,
    /// Seconds advertised in `Retry-After` on a `503`.
    pub retry_after_secs: u32,
    /// Directory holding the durable verdict log (`mcm serve
    /// --store-dir`). When set, the shared cache is hydrated from
    /// `<dir>/verdicts.log` at bind time and every fresh verdict is
    /// appended back, so a restarted server answers previously-seen
    /// sweeps without a single checker call. `None` keeps the cache
    /// purely in-memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            max_jobs: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            max_stream_tests: 20_000,
            read_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            store_dir: None,
        }
    }
}

/// Everything the acceptor and workers share.
struct ServeState {
    config: ServerConfig,
    cache: Arc<VerdictCache>,
    /// Keeps the verdict log's write half alive for the server's whole
    /// life when `store_dir` is set; the shared `cache` above is the
    /// store's hydrated cache in that case.
    store: Option<DiskCache>,
    stats: ServeStats,
    queue: Bounded<TcpStream>,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until a
/// [`ShutdownHandle`] fires.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
}

/// Triggers and observes graceful shutdown; cloneable and sendable so
/// signal watchers and tests can hold one while the server runs.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Initiates shutdown (idempotent): marks the flag, then pokes the
    /// listener with a throwaway connection so a blocking `accept`
    /// observes it immediately.
    pub fn shutdown(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // The poke is best-effort; if the acceptor already exited the
            // connection simply fails.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the listener and allocates the shared state (cache, stats,
    /// queue). No threads run until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, and — with
    /// [`ServerConfig::store_dir`] — a verdict log that cannot be
    /// opened (a store the server cannot persist to is a startup
    /// error, not a silent downgrade).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Bounded::new(config.queue_depth);
        let store = match &config.store_dir {
            None => None,
            Some(dir) => Some(DiskCache::open(&dir.join("verdicts.log"))?),
        };
        let cache = store
            .as_ref()
            .map_or_else(|| Arc::new(VerdictCache::new()), |s| Arc::clone(s.cache()));
        let state = Arc::new(ServeState {
            cache,
            store,
            stats: ServeStats::new(),
            queue,
            config,
        });
        Ok(Server {
            listener,
            addr,
            state,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when `addr` asked for `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide verdict cache (shared with every request).
    #[must_use]
    pub fn cache(&self) -> Arc<VerdictCache> {
        Arc::clone(&self.state.cache)
    }

    /// A handle that shuts this server down.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.addr,
        }
    }

    /// Runs the accept loop and worker pool until shutdown, then drains:
    /// the listener closes first (new connections are refused at the TCP
    /// level), queued connections are still served, workers join.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the `Result` keeps
    /// room for fatal accept-loop errors.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            state,
            shutdown,
            ..
        } = self;
        std::thread::scope(|scope| {
            for _ in 0..state.config.workers.max(1) {
                let state = &state;
                scope.spawn(move || {
                    while let Some(stream) = state.queue.pop() {
                        handle_connection(state, stream);
                    }
                });
            }

            accept_loop(&listener, &state, &shutdown);

            // Refuse new connections, then let workers drain the queue.
            drop(listener);
            state.queue.close();
        });
        // Drained: make sure every appended verdict reaches the disk
        // before the process can exit.
        if let Some(store) = &state.store {
            let _ = store.sync();
        }
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, state: &ServeState, shutdown: &AtomicBool) {
    loop {
        let accepted = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            // Wake-up poke or raced connection during shutdown: drop it;
            // the peer sees a closed connection, same as post-drain.
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            // Transient accept failure (EMFILE, aborted handshake):
            // keep serving.
            continue;
        };
        state.stats.record_accepted();
        match state.queue.try_push(stream) {
            Ok(()) => {}
            Err(PushError::Full(mut stream)) => {
                state.stats.record_rejected();
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let response = Response::error(
                    503,
                    "query queue is full; retry after the indicated delay",
                )
                .with_header("Retry-After", state.config.retry_after_secs.to_string());
                let _ = http::write_response(&mut stream, &response);
            }
            Err(PushError::Closed(_)) => return,
        }
    }
}

fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.read_timeout));
    let response = match http::read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => route(state, &request),
        Err(HttpError::Disconnected) => {
            state.stats.record_hangup();
            return;
        }
        Err(error) => Response::error(error.status(), &error.message()),
    };
    state.stats.record_response(response.status);
    if http::write_response(&mut stream, &response).is_err() {
        state.stats.record_hangup();
    }
}

fn route(state: &ServeState, request: &Request) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Response::ok(
            "application/json",
            mcm_core::json::Json::object([
                ("schema_version", mcm_core::json::Json::Int(1)),
                ("kind", mcm_core::json::Json::from("health")),
                ("status", mcm_core::json::Json::from("ok")),
            ])
            .pretty(),
        ),
        ("GET", "/statsz") => {
            let store = state.store.as_ref().map(DiskCache::stats);
            Response::ok(
                "application/json",
                state
                    .stats
                    .snapshot(&state.cache, state.queue.len(), store.as_ref())
                    .pretty(),
            )
        }
        ("GET", "/metricsz") => {
            let store = state.store.as_ref().map(DiskCache::stats);
            Response::ok(
                "text/plain; version=0.0.4",
                state
                    .stats
                    .render_prometheus(&state.cache, state.queue.len(), store.as_ref()),
            )
        }
        ("POST", "/query") => execute(state, &request.body),
        (_, "/healthz" | "/statsz" | "/metricsz") => {
            Response::error(405, "this endpoint only answers GET").with_header("Allow", "GET")
        }
        (_, "/query") => {
            Response::error(405, "queries are POSTed as JSON documents")
                .with_header("Allow", "POST")
        }
        (_, target) => Response::error(
            404,
            &format!(
                "no such endpoint `{}`; try POST /query, GET /healthz, GET /statsz, GET /metricsz",
                target.chars().take(64).collect::<String>()
            ),
        ),
    }
}

fn execute(state: &ServeState, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "request body is not valid UTF-8");
    };
    let mut request = match WireRequest::parse(text) {
        Ok(request) => request,
        Err(error) => return Response::error(400, &error.to_string()),
    };
    let kind = request.spec.kind();
    state.stats.record_kind(kind);
    clamp(&mut request.spec, &state.config);

    // A panic inside a query must cost one 500, not a worker thread.
    // The in-flight gauge and latency histogram bracket exactly the
    // execution (not routing or rendering), so `/statsz` gauges read
    // zero whenever no query is running.
    let started = mcm_obs::Stopwatch::start();
    state.stats.query_started();
    let ran = {
        let _span = mcm_obs::trace::span_with("serve.query", &[("kind", kind)]);
        catch_unwind(AssertUnwindSafe(|| request.spec.run(Some(&state.cache))))
    };
    state.stats.query_finished(kind, started);
    match ran {
        Err(_) => Response::error(500, "query execution panicked; see server logs"),
        Ok(Err(error)) => {
            let status = if error.is_usage() { 400 } else { 500 };
            Response::error(status, &error.to_string())
        }
        Ok(Ok(outcome)) => {
            if let Some(sweep_stats) = &outcome.stats {
                state.stats.absorb_engine(sweep_stats);
            }
            match outcome.report.render(request.format) {
                Ok(rendered) => Response::ok(content_type(request.format), rendered),
                Err(error) => Response::error(400, &error.to_string()),
            }
        }
    }
}

/// Clamps request knobs to the server's ceilings. The request keeps its
/// say below the ceiling; above it, the server wins silently (the
/// response is still correct, just computed with fewer resources).
fn clamp(spec: &mut QuerySpec, config: &ServerConfig) {
    match spec {
        QuerySpec::Sweep(sweep) => {
            clamp_engine(&mut sweep.engine, config);
            if let TestSource::Stream { limit, .. } = &mut sweep.source {
                *limit = Some(
                    limit.map_or(config.max_stream_tests, |l| l.min(config.max_stream_tests)),
                );
            }
        }
        QuerySpec::Distinguish(distinguish) => clamp_engine(&mut distinguish.engine, config),
        _ => {}
    }
}

fn clamp_engine(engine: &mut EngineConfig, config: &ServerConfig) {
    let ceiling = config.max_jobs.max(1);
    engine.jobs = Some(engine.jobs.map_or(ceiling, |jobs| jobs.min(ceiling)).max(1));
}

fn content_type(format: Format) -> &'static str {
    match format {
        Format::Json => "application/json",
        Format::Csv => "text/csv",
        _ => "text/plain",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_respects_ceilings_but_not_requests_below_them() {
        let config = ServerConfig {
            max_jobs: 4,
            max_stream_tests: 100,
            ..ServerConfig::default()
        };
        let mut request = WireRequest::parse(
            r#"{"query": "sweep", "engine": {"jobs": 64},
                "tests": {"stream": {"limit": 100000}}}"#,
        )
        .unwrap();
        clamp(&mut request.spec, &config);
        let QuerySpec::Sweep(sweep) = &request.spec else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.engine.jobs, Some(4));
        let TestSource::Stream { limit, .. } = &sweep.source else {
            panic!("expected stream");
        };
        assert_eq!(*limit, Some(100));

        let mut modest = WireRequest::parse(
            r#"{"query": "sweep", "engine": {"jobs": 2},
                "tests": {"stream": {"limit": 10}}}"#,
        )
        .unwrap();
        clamp(&mut modest.spec, &config);
        let QuerySpec::Sweep(sweep) = &modest.spec else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.engine.jobs, Some(2));
        let TestSource::Stream { limit, .. } = &sweep.source else {
            panic!("expected stream");
        };
        assert_eq!(*limit, Some(10));

        // Unbounded requests get the ceiling, not infinity.
        let mut unbounded = WireRequest::parse(
            r#"{"query": "sweep", "tests": {"stream": {}}}"#,
        )
        .unwrap();
        clamp(&mut unbounded.spec, &config);
        let QuerySpec::Sweep(sweep) = &unbounded.spec else {
            panic!("expected sweep");
        };
        assert_eq!(sweep.engine.jobs, Some(4));
        let TestSource::Stream { limit, .. } = &sweep.source else {
            panic!("expected stream");
        };
        assert_eq!(*limit, Some(100));
    }

    #[test]
    fn bind_run_query_shutdown_round_trip() {
        let server = Server::bind(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let runner = std::thread::spawn(move || server.run());

        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"ok\""));

        let response = client::post_query(
            addr,
            r#"{"query": "check", "model": "SC", "tests": "catalog"}"#,
        )
        .unwrap();
        assert_eq!(response.status, 200, "body: {}", response.body);
        assert_eq!(response.header("content-type"), Some("application/json"));

        let missing = client::get(addr, "/nope").unwrap();
        assert_eq!(missing.status, 404);

        handle.shutdown();
        runner.join().unwrap().unwrap();

        // After shutdown the port refuses connections.
        assert!(client::get(addr, "/healthz").is_err());
    }
}
