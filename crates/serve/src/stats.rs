//! Lock-free service counters and the `/statsz` document.
//!
//! Everything here is an `AtomicU64` bumped with relaxed ordering on
//! the request path — observability must never contend with the work
//! it observes. The `/statsz` endpoint renders three sections from
//! existing structured views: request/queue counters owned by this
//! module, engine totals accumulated from each sweep's
//! [`SweepStats::counters`], and the shared [`VerdictCache::counters`].

use std::sync::atomic::{AtomicU64, Ordering};

use mcm_core::json::Json;
use mcm_explore::{SweepStats, VerdictCache};

/// Query kinds tracked per-kind, in wire-format order.
pub const KINDS: [&str; 10] = [
    "sweep",
    "compare",
    "distinguish",
    "analyze",
    "synth",
    "synth_matrix",
    "check",
    "suite",
    "catalog",
    "figures",
];

/// Engine counter names, index-aligned with [`SweepStats::counters`]
/// (checked by a test, so drift fails loudly).
const ENGINE_COUNTERS: [&str; 11] = [
    "total_pairs",
    "unique_pairs",
    "cache_hits",
    "checker_calls",
    "canonical_tests",
    "distinct_models",
    "tests_streamed",
    "peak_batch",
    "semantic_merged_models",
    "prefilter_groups",
    "prefilter_saved_calls",
];

/// The service-wide counter set. One instance lives for the whole
/// server; every worker and the acceptor share it.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    hangups: AtomicU64,
    kinds: [AtomicU64; KINDS.len()],
    engine: [AtomicU64; ENGINE_COUNTERS.len()],
}

impl ServeStats {
    /// All counters at zero.
    #[must_use]
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// A connection was accepted (before any queueing decision).
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was shed with `503` because the queue was full.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The peer vanished before a response could be written.
    pub fn record_hangup(&self) {
        self.hangups.fetch_add(1, Ordering::Relaxed);
    }

    /// A response with `status` was written.
    pub fn record_response(&self, status: u16) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            500..=599 => self.server_errors.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }

    /// A query of `kind` was admitted for execution.
    pub fn record_kind(&self, kind: &str) {
        if let Some(i) = KINDS.iter().position(|k| *k == kind) {
            self.kinds[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one sweep's engine counters into the service totals.
    pub fn absorb_engine(&self, stats: &SweepStats) {
        for (i, (_, value)) in stats.counters().iter().enumerate() {
            self.engine[i].fetch_add(*value, Ordering::Relaxed);
        }
    }

    /// Responses written so far (any status).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Connections shed with `503` so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The `/statsz` document: requests, per-kind query counts, engine
    /// totals and the shared cache's counters.
    #[must_use]
    pub fn snapshot(&self, cache: &VerdictCache, queue_depth: usize) -> Json {
        let load = |counter: &AtomicU64| Json::Int(counter.load(Ordering::Relaxed) as i64);
        Json::object([
            ("schema_version", Json::Int(1)),
            ("kind", Json::from("serve_stats")),
            (
                "requests",
                Json::object([
                    ("accepted", load(&self.accepted)),
                    ("completed", load(&self.completed)),
                    ("rejected_503", load(&self.rejected)),
                    ("client_errors", load(&self.client_errors)),
                    ("server_errors", load(&self.server_errors)),
                    ("hangups", load(&self.hangups)),
                    ("queued_now", Json::Int(queue_depth as i64)),
                ]),
            ),
            (
                "queries",
                Json::Object(
                    KINDS
                        .iter()
                        .zip(&self.kinds)
                        .map(|(name, counter)| ((*name).to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "engine",
                Json::Object(
                    ENGINE_COUNTERS
                        .iter()
                        .zip(&self.engine)
                        .map(|(name, counter)| ((*name).to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "cache",
                Json::Object(
                    cache
                        .counters()
                        .iter()
                        .map(|(name, value)| ((*name).to_string(), Json::Int(*value as i64)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_counter_names_stay_aligned_with_sweep_stats() {
        let names: Vec<&str> = SweepStats::default()
            .counters()
            .iter()
            .map(|(name, _)| *name)
            .collect();
        assert_eq!(names, ENGINE_COUNTERS);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let stats = ServeStats::new();
        let cache = VerdictCache::new();
        cache.insert((1, 2), true);
        stats.record_accepted();
        stats.record_accepted();
        stats.record_rejected();
        stats.record_response(200);
        stats.record_response(400);
        stats.record_response(500);
        stats.record_kind("sweep");
        stats.record_kind("sweep");
        stats.record_kind("catalog");
        stats.record_kind("nonsense"); // ignored, never panics
        let sweep = SweepStats {
            total_pairs: 10,
            checker_calls: 4,
            ..SweepStats::default()
        };
        stats.absorb_engine(&sweep);
        stats.absorb_engine(&sweep);

        let doc = stats.snapshot(&cache, 3);
        let requests = doc.get("requests").unwrap();
        assert_eq!(requests.get("accepted").and_then(Json::as_i64), Some(2));
        assert_eq!(requests.get("rejected_503").and_then(Json::as_i64), Some(1));
        assert_eq!(requests.get("completed").and_then(Json::as_i64), Some(3));
        assert_eq!(requests.get("client_errors").and_then(Json::as_i64), Some(1));
        assert_eq!(requests.get("server_errors").and_then(Json::as_i64), Some(1));
        assert_eq!(requests.get("queued_now").and_then(Json::as_i64), Some(3));
        let queries = doc.get("queries").unwrap();
        assert_eq!(queries.get("sweep").and_then(Json::as_i64), Some(2));
        assert_eq!(queries.get("catalog").and_then(Json::as_i64), Some(1));
        let engine = doc.get("engine").unwrap();
        assert_eq!(engine.get("total_pairs").and_then(Json::as_i64), Some(20));
        assert_eq!(engine.get("checker_calls").and_then(Json::as_i64), Some(8));
        let cache_doc = doc.get("cache").unwrap();
        assert_eq!(cache_doc.get("entries").and_then(Json::as_i64), Some(1));
    }
}
