//! Lock-free service counters, live gauges, and the `/statsz` and
//! `/metricsz` documents.
//!
//! Everything here is an `AtomicU64`/`AtomicI64` bumped with relaxed
//! ordering on the request path — observability must never contend
//! with the work it observes. The `/statsz` endpoint renders its
//! sections from existing structured views: request counters owned by
//! this module ([`ServeStats::counters`]), live gauges (queue depth,
//! in-flight queries), engine totals accumulated from each sweep's
//! [`SweepStats::counters`], and the shared [`VerdictCache::counters`].
//! `/metricsz` renders the *same names* — prefixed per layer
//! (`mcm_serve_`, `mcm_engine_`, `mcm_cache_`) and suffixed `_total`
//! for counters, Prometheus-style — merged with every series in the
//! global [`mcm_obs::metrics`] registry, which contributes the
//! per-query-kind latency histograms recorded around each `/query`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use mcm_core::json::Json;
use mcm_explore::{SweepStats, VerdictCache};
use mcm_store::StoreStats;

/// Query kinds tracked per-kind, in wire-format order.
pub const KINDS: [&str; 10] = [
    "sweep",
    "compare",
    "distinguish",
    "analyze",
    "synth",
    "synth_matrix",
    "check",
    "suite",
    "catalog",
    "figures",
];

/// Engine counter names, index-aligned with [`SweepStats::counters`]
/// (checked by a test, so drift fails loudly).
const ENGINE_COUNTERS: [&str; 12] = [
    "total_pairs",
    "unique_pairs",
    "cache_hits",
    "cache_hits_disk",
    "checker_calls",
    "canonical_tests",
    "distinct_models",
    "tests_streamed",
    "peak_batch",
    "semantic_merged_models",
    "prefilter_groups",
    "prefilter_saved_calls",
];

/// The service-wide counter set. One instance lives for the whole
/// server; every worker and the acceptor share it.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    hangups: AtomicU64,
    in_flight: AtomicI64,
    kinds: [AtomicU64; KINDS.len()],
    engine: [AtomicU64; ENGINE_COUNTERS.len()],
}

impl ServeStats {
    /// All counters at zero.
    #[must_use]
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// A connection was accepted (before any queueing decision).
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was shed with `503` because the queue was full.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The peer vanished before a response could be written.
    pub fn record_hangup(&self) {
        self.hangups.fetch_add(1, Ordering::Relaxed);
    }

    /// A response with `status` was written.
    pub fn record_response(&self, status: u16) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match status {
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            500..=599 => self.server_errors.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }

    /// A query of `kind` was admitted for execution.
    pub fn record_kind(&self, kind: &str) {
        if let Some(i) = KINDS.iter().position(|k| *k == kind) {
            self.kinds[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A query entered execution: raises the in-flight gauge. Pair
    /// with [`ServeStats::query_finished`] on every exit path.
    pub fn query_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A query left execution (success, error, or panic): lowers the
    /// in-flight gauge and records the query's latency into the global
    /// `mcm_serve_request_latency_us{kind=…}` histogram — the series
    /// `/metricsz` exposes with p50/p90/p99 lines.
    pub fn query_finished(&self, kind: &str, started: mcm_obs::Stopwatch) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(us) = started.elapsed_us() {
            mcm_obs::metrics::histogram("mcm_serve_request_latency_us", &[("kind", kind)])
                .record(us);
        }
    }

    /// Queries currently executing on worker threads (a live gauge:
    /// returns to zero when the service drains).
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The request counters as stable `(name, value)` pairs — the one
    /// place the names live. `/statsz` renders them verbatim;
    /// `/metricsz` renders each as `mcm_serve_<name>_total`.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        [
            ("accepted", load(&self.accepted)),
            ("completed", load(&self.completed)),
            ("rejected", load(&self.rejected)),
            ("client_errors", load(&self.client_errors)),
            ("server_errors", load(&self.server_errors)),
            ("hangups", load(&self.hangups)),
        ]
    }

    /// Folds one sweep's engine counters into the service totals.
    pub fn absorb_engine(&self, stats: &SweepStats) {
        for (i, (_, value)) in stats.counters().iter().enumerate() {
            self.engine[i].fetch_add(*value, Ordering::Relaxed);
        }
    }

    /// Responses written so far (any status).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Connections shed with `503` so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The `/statsz` document: request counters, live gauges (queue
    /// depth and in-flight queries — instantaneous levels, zero when
    /// drained), per-kind query counts, engine totals, the shared
    /// cache's counters, and — when the server runs with `--store-dir`
    /// — the verdict store's counters (`Json::Null` otherwise).
    #[must_use]
    pub fn snapshot(
        &self,
        cache: &VerdictCache,
        queue_depth: usize,
        store: Option<&StoreStats>,
    ) -> Json {
        let load = |counter: &AtomicU64| Json::Int(counter.load(Ordering::Relaxed) as i64);
        Json::object([
            ("schema_version", Json::Int(2)),
            ("kind", Json::from("serve_stats")),
            (
                "requests",
                Json::Object(
                    self.counters()
                        .iter()
                        .map(|(name, value)| ((*name).to_string(), Json::Int(*value as i64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::object([
                    ("queue_depth", Json::Int(queue_depth as i64)),
                    ("in_flight", Json::Int(self.in_flight())),
                ]),
            ),
            (
                "queries",
                Json::Object(
                    KINDS
                        .iter()
                        .zip(&self.kinds)
                        .map(|(name, counter)| ((*name).to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "engine",
                Json::Object(
                    ENGINE_COUNTERS
                        .iter()
                        .zip(&self.engine)
                        .map(|(name, counter)| ((*name).to_string(), load(counter)))
                        .collect(),
                ),
            ),
            (
                "cache",
                Json::Object(
                    cache
                        .counters()
                        .iter()
                        .map(|(name, value)| ((*name).to_string(), Json::Int(*value as i64)))
                        .collect(),
                ),
            ),
            (
                "store",
                match store {
                    None => Json::Null,
                    Some(store) => Json::Object(
                        store
                            .counters()
                            .iter()
                            .map(|(name, value)| ((*name).to_string(), Json::Int(*value as i64)))
                            .collect(),
                    ),
                },
            ),
        ])
    }

    /// The `/metricsz` document: Prometheus exposition text. Serve,
    /// engine and cache counters use the same base names as `/statsz`,
    /// layer-prefixed and `_total`-suffixed; the global `mcm_obs`
    /// registry contributes everything instrumented below the wire
    /// (per-kind request latency, per-checker check latency, cache
    /// hit/miss totals, CEGIS iteration latency).
    #[must_use]
    pub fn render_prometheus(
        &self,
        cache: &VerdictCache,
        queue_depth: usize,
        store: Option<&StoreStats>,
    ) -> String {
        use std::fmt::Write;
        let mut out = mcm_obs::metrics::global().render_prometheus();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "# TYPE mcm_serve_{name}_total counter");
            let _ = writeln!(out, "mcm_serve_{name}_total {value}");
        }
        let _ = writeln!(out, "# TYPE mcm_serve_queries_total counter");
        for (name, counter) in KINDS.iter().zip(&self.kinds) {
            let _ = writeln!(
                out,
                "mcm_serve_queries_total{{kind=\"{name}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        for (gauge, value) in [
            ("queue_depth", queue_depth as i64),
            ("in_flight", self.in_flight()),
        ] {
            let _ = writeln!(out, "# TYPE mcm_serve_{gauge} gauge");
            let _ = writeln!(out, "mcm_serve_{gauge} {value}");
        }
        for (name, counter) in ENGINE_COUNTERS.iter().zip(&self.engine) {
            let _ = writeln!(out, "# TYPE mcm_engine_{name}_total counter");
            let _ = writeln!(
                out,
                "mcm_engine_{name}_total {}",
                counter.load(Ordering::Relaxed)
            );
        }
        // Entries is a level, not a flow; hits/misses/contention flows
        // are already global registry series (`mcm_cache_*_total`).
        let _ = writeln!(out, "# TYPE mcm_cache_entries gauge");
        let _ = writeln!(out, "mcm_cache_entries {}", cache.len());
        if let Some(store) = store {
            for (name, value) in store.counters() {
                // hydrated/bytes/recovered_tail are levels, the rest flows.
                if matches!(name, "hydrated" | "bytes" | "recovered_tail") {
                    let _ = writeln!(out, "# TYPE mcm_store_{name} gauge");
                    let _ = writeln!(out, "mcm_store_{name} {value}");
                } else {
                    let _ = writeln!(out, "# TYPE mcm_store_{name}_total counter");
                    let _ = writeln!(out, "mcm_store_{name}_total {value}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_counter_names_stay_aligned_with_sweep_stats() {
        let names: Vec<&str> = SweepStats::default()
            .counters()
            .iter()
            .map(|(name, _)| *name)
            .collect();
        assert_eq!(names, ENGINE_COUNTERS);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let stats = ServeStats::new();
        let cache = VerdictCache::new();
        cache.insert((1, 2), true);
        stats.record_accepted();
        stats.record_accepted();
        stats.record_rejected();
        stats.record_response(200);
        stats.record_response(400);
        stats.record_response(500);
        stats.record_kind("sweep");
        stats.record_kind("sweep");
        stats.record_kind("catalog");
        stats.record_kind("nonsense"); // ignored, never panics
        let sweep = SweepStats {
            total_pairs: 10,
            checker_calls: 4,
            ..SweepStats::default()
        };
        stats.absorb_engine(&sweep);
        stats.absorb_engine(&sweep);

        let store = StoreStats {
            hydrated: 5,
            appended: 7,
            flushes: 2,
            write_errors: 0,
            bytes: 131,
            recovered_tail: true,
        };
        let doc = stats.snapshot(&cache, 3, Some(&store));
        let requests = doc.get("requests").unwrap();
        assert_eq!(requests.get("accepted").and_then(Json::as_i64), Some(2));
        assert_eq!(requests.get("rejected").and_then(Json::as_i64), Some(1));
        assert_eq!(requests.get("completed").and_then(Json::as_i64), Some(3));
        assert_eq!(requests.get("client_errors").and_then(Json::as_i64), Some(1));
        assert_eq!(requests.get("server_errors").and_then(Json::as_i64), Some(1));
        let gauges = doc.get("gauges").unwrap();
        assert_eq!(gauges.get("queue_depth").and_then(Json::as_i64), Some(3));
        assert_eq!(gauges.get("in_flight").and_then(Json::as_i64), Some(0));
        let queries = doc.get("queries").unwrap();
        assert_eq!(queries.get("sweep").and_then(Json::as_i64), Some(2));
        assert_eq!(queries.get("catalog").and_then(Json::as_i64), Some(1));
        let engine = doc.get("engine").unwrap();
        assert_eq!(engine.get("total_pairs").and_then(Json::as_i64), Some(20));
        assert_eq!(engine.get("checker_calls").and_then(Json::as_i64), Some(8));
        let cache_doc = doc.get("cache").unwrap();
        assert_eq!(cache_doc.get("entries").and_then(Json::as_i64), Some(1));
        let store_doc = doc.get("store").unwrap();
        assert_eq!(store_doc.get("hydrated").and_then(Json::as_i64), Some(5));
        assert_eq!(store_doc.get("appended").and_then(Json::as_i64), Some(7));
        assert_eq!(store_doc.get("recovered_tail").and_then(Json::as_i64), Some(1));

        // Without a store the section is explicitly null, not absent.
        let bare = stats.snapshot(&cache, 3, None);
        assert_eq!(bare.get("store"), Some(&Json::Null));
    }

    #[test]
    fn in_flight_gauge_rises_and_falls() {
        let stats = ServeStats::new();
        assert_eq!(stats.in_flight(), 0);
        stats.query_started();
        stats.query_started();
        assert_eq!(stats.in_flight(), 2);
        stats.query_finished("sweep", mcm_obs::Stopwatch::start());
        stats.query_finished("sweep", mcm_obs::Stopwatch::start());
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn statsz_and_metricsz_use_identical_base_names() {
        let stats = ServeStats::new();
        let cache = VerdictCache::new();
        let store = StoreStats {
            hydrated: 1,
            appended: 2,
            flushes: 3,
            write_errors: 0,
            bytes: 46,
            recovered_tail: false,
        };
        let text = stats.render_prometheus(&cache, 0, Some(&store));
        // Every /statsz key appears in /metricsz under its layer prefix.
        for (name, _) in stats.counters() {
            assert!(
                text.contains(&format!("mcm_serve_{name}_total ")),
                "missing serve counter {name} in /metricsz"
            );
        }
        for name in ENGINE_COUNTERS {
            assert!(
                text.contains(&format!("mcm_engine_{name}_total ")),
                "missing engine counter {name} in /metricsz"
            );
        }
        for kind in KINDS {
            assert!(
                text.contains(&format!("mcm_serve_queries_total{{kind=\"{kind}\"}}")),
                "missing per-kind counter {kind} in /metricsz"
            );
        }
        for gauge in ["queue_depth", "in_flight"] {
            assert!(
                text.contains(&format!("mcm_serve_{gauge} ")),
                "missing gauge {gauge} in /metricsz"
            );
        }
        assert!(text.contains("mcm_cache_entries "));
        for gauge in ["hydrated", "bytes", "recovered_tail"] {
            assert!(
                text.contains(&format!("mcm_store_{gauge} ")),
                "missing store gauge {gauge} in /metricsz"
            );
        }
        for counter in ["appended", "flushes", "write_errors"] {
            assert!(
                text.contains(&format!("mcm_store_{counter}_total ")),
                "missing store counter {counter} in /metricsz"
            );
        }
    }
}
