//! Black-box end-to-end harness: boot the real server on an ephemeral
//! port, drive **every query kind** over real TCP, and assert each
//! response body is bit-identical to executing the same wire document
//! directly through `mcm-query` — the server must add transport, never
//! interpretation.
//!
//! Determinism notes: requests pin `engine.jobs = 1` and `cache: false`
//! so engine counters match a direct uncached run exactly; the only
//! normalization applied before comparison is stripping the wall-clock
//! `elapsed_ms` fields (via `Json::strip_keys`), which no two runs can
//! share. Text-format responses for reports without embedded durations
//! are compared byte-for-byte with zero normalization.

use std::net::SocketAddr;

use mcm_core::json::Json;
use mcm_query::wire::WireRequest;
use mcm_query::Format;
use mcm_serve::{client, Server, ServerConfig, ShutdownHandle};

fn boot() -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, runner)
}

/// Executes `request` directly through the query layer (no server, no
/// shared cache) and renders it in the request's format.
fn direct(request: &str) -> String {
    let wire = WireRequest::parse(request).expect("request parses");
    let outcome = wire.spec.run(None).expect("request runs");
    outcome.report.render(wire.format).expect("request renders")
}

fn normalized(body: &str) -> Json {
    let mut doc = Json::parse(body).expect("body is valid JSON");
    doc.strip_keys(&["elapsed_ms", "timings"]);
    doc
}

/// Every query kind, deterministic form: one wire document each.
const ALL_KINDS: [&str; 11] = [
    // sweep over the default template suite
    r#"{"query": "sweep", "cache": false, "engine": {"jobs": 1}}"#,
    // sweep of named models over the catalog
    r#"{"query": "sweep", "models": ["SC", "TSO", "PSO"], "tests": "catalog",
        "cache": false, "engine": {"jobs": 1}}"#,
    // sweep of a bounded stream source
    r#"{"query": "sweep", "tests": {"stream": {"max_accesses": 2, "max_locs": 2,
        "limit": 40}}, "cache": false, "engine": {"jobs": 1}}"#,
    r#"{"query": "compare", "left": "TSO", "right": "x86"}"#,
    r#"{"query": "distinguish", "models": ["SC", "TSO", "PSO", "RMO"],
        "cache": false, "engine": {"jobs": 1}}"#,
    r#"{"query": "synth", "left": "SC", "right": "TSO",
        "bounds": {"max_accesses": 2, "max_locs": 2}}"#,
    r#"{"query": "synth_matrix", "models": ["SC", "TSO", "PSO"],
        "bounds": {"max_accesses": 2, "max_locs": 2}}"#,
    r#"{"query": "check", "model": "SC", "tests": "catalog", "witness": true}"#,
    r#"{"query": "suite", "full": true}"#,
    r#"{"query": "catalog"}"#,
    r#"{"query": "figures", "which": "all"}"#,
];

#[test]
fn every_query_kind_round_trips_bit_identical_to_direct_execution() {
    let (addr, handle, runner) = boot();
    for request in ALL_KINDS {
        let response = client::post_query(addr, request).expect("request reaches server");
        assert_eq!(response.status, 200, "{request} -> {}", response.body);
        assert_eq!(response.header("content-type"), Some("application/json"));
        assert_eq!(
            normalized(&response.body),
            normalized(&direct(request)),
            "served and direct bodies diverge for {request}"
        );
    }
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn inline_litmus_sources_round_trip() {
    let (addr, handle, runner) = boot();
    // The store-buffering test, shipped inline — the hermetic wire
    // format's replacement for file sources.
    let request = r#"{"query": "check", "model": "TSO",
        "tests": {"inline": "test SB {\n thread { write X = 1; read Y -> r1 }\n thread { write Y = 1; read X -> r2 }\n outcome { T1:r1 = 0; T2:r2 = 0 }\n}\n"},
        "witness": true}"#;
    let response = client::post_query(addr, request).expect("request reaches server");
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(normalized(&response.body), normalized(&direct(request)));
    // TSO allows store buffering; the verdict must actually say so.
    let doc = Json::parse(&response.body).unwrap();
    let tests = doc.get("tests").expect("check report lists its tests");
    let Json::Array(entries) = tests else {
        panic!("tests is an array: {}", tests.pretty());
    };
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].get("test").and_then(Json::as_str), Some("SB"));
    assert_eq!(entries[0].get("allowed").and_then(Json::as_bool), Some(true));
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn duration_free_reports_are_byte_identical_in_text_format() {
    let (addr, handle, runner) = boot();
    for request in [
        r#"{"query": "check", "model": "SC", "tests": "catalog", "format": "text"}"#,
        r#"{"query": "suite", "full": true, "format": "text"}"#,
        r#"{"query": "catalog", "format": "text"}"#,
        r#"{"query": "figures", "which": "fig1", "format": "text"}"#,
        r#"{"query": "figures", "which": "counts", "format": "text"}"#,
    ] {
        let response = client::post_query(addr, request).expect("request reaches server");
        assert_eq!(response.status, 200, "{request}");
        assert_eq!(response.header("content-type"), Some("text/plain"));
        assert_eq!(response.body, direct(request), "{request}");
    }
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn csv_and_dot_formats_are_served_where_reports_support_them() {
    let (addr, handle, runner) = boot();
    let csv = client::post_query(
        addr,
        r#"{"query": "sweep", "models": ["SC", "TSO", "PSO"], "tests": "catalog",
            "cache": false, "engine": {"jobs": 1}, "format": "csv"}"#,
    )
    .expect("csv request");
    assert_eq!(csv.status, 200, "{}", csv.body);
    assert_eq!(csv.header("content-type"), Some("text/csv"));
    assert!(csv.body.lines().count() >= 4, "one header plus a row per model");

    // A report with no tabular view answers 400, not 500.
    let unsupported = client::post_query(addr, r#"{"query": "catalog", "format": "dot"}"#)
        .expect("dot request");
    assert_eq!(unsupported.status, 400, "{}", unsupported.body);
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn responses_validate_against_the_report_schema() {
    let (addr, handle, runner) = boot();
    for request in ALL_KINDS {
        let response = client::post_query(addr, request).expect("request reaches server");
        let doc = Json::parse(&response.body).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(mcm_query::SCHEMA_VERSION),
            "{request}"
        );
        assert!(doc.get("kind").and_then(Json::as_str).is_some(), "{request}");
    }
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn wire_format_default_matches_explicit_json() {
    // `format` defaults to json on the wire; a server response with no
    // format field must equal one that says "json" outright.
    let (addr, handle, runner) = boot();
    let implied = client::post_query(addr, r#"{"query": "catalog"}"#).unwrap();
    let explicit = client::post_query(addr, r#"{"query": "catalog", "format": "json"}"#).unwrap();
    assert_eq!(implied.status, 200);
    assert_eq!(implied.body, explicit.body);
    assert_eq!(
        Format::Json.name(),
        "json",
        "wire default format is documented as json"
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}
