//! Graceful-shutdown contract, probed from outside: when the handle
//! fires mid-request, in-flight work completes with `200`, queued work
//! is drained (or shed with `503` — never dropped silently), new
//! connections are refused at the TCP level, and the server thread
//! exits cleanly.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use mcm_serve::{client, Server, ServerConfig, ShutdownHandle};

fn boot(workers: usize) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, runner)
}

/// A deliberately slow request: a single-threaded SAT-checker sweep
/// takes long enough (~100ms+) that a shutdown fired shortly after it
/// starts is genuinely mid-flight.
const SLOW_SWEEP: &str =
    r#"{"query": "sweep", "checker": "sat", "cache": false, "engine": {"jobs": 1}}"#;

#[test]
fn shutdown_mid_request_drains_in_flight_and_queued_work() {
    let (addr, handle, runner) = boot(1);
    std::thread::scope(|scope| {
        // In-flight: the single worker picks this up immediately.
        let in_flight = scope.spawn(move || client::post_query(addr, SLOW_SWEEP));
        std::thread::sleep(Duration::from_millis(30));
        // Queued: sits behind the slow sweep on the one-worker server.
        let queued = scope.spawn(move || {
            client::post_query(addr, r#"{"query": "catalog"}"#)
        });
        std::thread::sleep(Duration::from_millis(10));

        handle.shutdown();

        let in_flight = in_flight.join().expect("client thread").expect("answered");
        assert_eq!(
            in_flight.status, 200,
            "in-flight requests must complete: {}",
            in_flight.body
        );
        let queued = queued.join().expect("client thread").expect("answered");
        assert!(
            queued.status == 200 || queued.status == 503,
            "queued requests drain (200) or are shed (503), got {}: {}",
            queued.status,
            queued.body
        );
    });
    runner.join().expect("server thread exits cleanly");

    // The listener is gone: new connections are refused outright.
    assert!(
        client::get(addr, "/healthz").is_err(),
        "connections must be refused after shutdown"
    );
}

#[test]
fn shutdown_on_an_idle_server_exits_promptly() {
    let (addr, handle, runner) = boot(4);
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    let start = Instant::now();
    handle.shutdown();
    runner.join().expect("clean exit");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "idle shutdown took {:?}; the accept loop must wake immediately",
        start.elapsed()
    );
    assert!(client::get(addr, "/healthz").is_err());
}

#[test]
fn shutdown_is_idempotent_and_visible_through_every_clone() {
    let (addr, handle, runner) = boot(2);
    let sibling = handle.clone();
    assert!(!handle.is_shutdown());
    assert!(!sibling.is_shutdown());

    handle.shutdown();
    handle.shutdown(); // a second trigger is a no-op, not a crash
    sibling.shutdown();
    assert!(handle.is_shutdown());
    assert!(sibling.is_shutdown());

    runner.join().expect("clean exit");
    assert!(client::get(addr, "/healthz").is_err());
}

#[test]
fn responses_promised_before_shutdown_are_complete_not_truncated() {
    // Start many cheap requests, fire shutdown while they are being
    // answered, and verify every response that arrives parses as a
    // complete JSON document — drain means finish, not "best effort".
    let (addr, handle, runner) = boot(2);
    let results: Vec<_> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    if i == 6 {
                        // Fire shutdown from the middle of the burst.
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    client::post_query(addr, r#"{"query": "suite"}"#)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        handle.shutdown();
        clients.into_iter().map(|c| c.join().expect("client")).collect()
    });
    runner.join().expect("clean exit");

    let mut answered = 0;
    for result in results {
        match result {
            Ok(response) if response.status == 200 => {
                mcm_core::json::Json::parse(&response.body)
                    .expect("drained response is a complete document");
                answered += 1;
            }
            Ok(response) => assert_eq!(response.status, 503, "{}", response.body),
            // Refused at connect time (listener already closed): fine.
            Err(_) => {}
        }
    }
    assert!(answered > 0, "some requests must have made it through");
}
