//! The `--store-dir` acceptance scenario: a restarted server answers a
//! previously-seen sweep from the durable verdict log with **zero**
//! checker calls.
//!
//! Two server processes are simulated by two [`Server`] instances bound
//! in sequence over the same store directory. The first runs a sweep
//! cold (every verdict computed, then appended to the log); after its
//! graceful shutdown the second hydrates the log at bind time, serves
//! the same sweep entirely from disk-tier cache hits, and its `/statsz`
//! engine section proves no checker ran.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use mcm_core::json::Json;
use mcm_serve::{client, Server, ServerConfig};

fn temp_store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join("mcm-serve-store-tests")
        .join(format!("{tag}-{}", std::process::id()))
}

fn boot(store_dir: &Path) -> (SocketAddr, mcm_serve::ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        workers: 2,
        store_dir: Some(store_dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind with a store dir");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, runner)
}

fn engine_counter(addr: SocketAddr, name: &str) -> i64 {
    let stats = client::get(addr, "/statsz").expect("statsz answers");
    let doc = Json::parse(&stats.body).expect("statsz is JSON");
    doc.get("engine")
        .and_then(|engine| engine.get(name))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("engine.{name} missing from /statsz"))
}

const SWEEP: &str = r#"{"query": "sweep", "models": ["SC", "TSO", "PSO"],
    "tests": "catalog", "engine": {"jobs": 1}}"#;

#[test]
fn restarted_server_answers_a_seen_sweep_without_checker_calls() {
    let dir = temp_store_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);

    // First process: the sweep runs cold and lands in the log.
    let (addr, handle, runner) = boot(&dir);
    let first = client::post_query(addr, SWEEP).expect("first sweep answers");
    assert_eq!(first.status, 200, "body: {}", first.body);
    let cold_calls = engine_counter(addr, "checker_calls");
    assert!(cold_calls > 0, "the first process computes verdicts");
    assert_eq!(engine_counter(addr, "cache_hits_disk"), 0);
    handle.shutdown();
    runner.join().unwrap();

    // Second process: bound over the same store, the sweep is answered
    // from the hydrated log — the acceptance criterion is literal: the
    // engine counter proves zero checker calls.
    let (addr, handle, runner) = boot(&dir);
    let warm = client::post_query(addr, SWEEP).expect("warm sweep answers");
    assert_eq!(warm.status, 200, "body: {}", warm.body);
    assert_eq!(
        engine_counter(addr, "checker_calls"),
        0,
        "a restarted --store-dir server must not re-check seen sweeps"
    );
    // The warm run looks up every (model, test) pair; semantic merging
    // meant the cold run checked fewer than it cached, so disk hits are
    // at least the cold checker calls — and every hit is disk-tier.
    assert!(
        engine_counter(addr, "cache_hits_disk") >= cold_calls,
        "every cold verdict comes back as a disk-tier hit"
    );
    assert_eq!(
        engine_counter(addr, "cache_hits"),
        engine_counter(addr, "cache_hits_disk"),
        "a freshly-restarted process has no RAM-tier history to hit"
    );

    // Both processes report identical verdicts (modulo wall-clock).
    let mut a = Json::parse(&first.body).unwrap();
    let mut b = Json::parse(&warm.body).unwrap();
    // `stats` legitimately differ (cold computes, warm hits disk); the
    // lattice itself must not.
    for doc in [&mut a, &mut b] {
        doc.strip_keys(&["elapsed_ms", "timings", "cache", "store", "stats"]);
    }
    assert_eq!(a, b, "cold and warm sweeps must agree verdict-for-verdict");

    // /statsz exposes the store section only when a store is mounted.
    let stats = client::get(addr, "/statsz").unwrap();
    let doc = Json::parse(&stats.body).unwrap();
    let store = doc.get("store").expect("store section present");
    assert!(
        store.get("hydrated").and_then(Json::as_i64).unwrap_or(0) > 0,
        "the second process hydrates from the log: {stats:?}",
        stats = store
    );

    handle.shutdown();
    runner.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
