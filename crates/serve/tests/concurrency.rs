//! Concurrency contract: N client threads hammering one server with
//! interleaved mixed queries must each see exactly the answer a
//! single-threaded direct run produces, the **shared** cache's hit
//! counter must only ever grow, and a repeat of an identical sweep must
//! be served without a single checker call.
//!
//! Normalization: concurrent runs share the verdict cache, so engine
//! counters (`stats`), cache summaries and wall-clock fields are
//! warmth-dependent; `Json::strip_keys` removes `elapsed_ms`, `stats`,
//! `cache` and `warm` before comparison. Everything else — verdicts,
//! lattices, witnesses, orderings — must match exactly.

use std::net::SocketAddr;

use mcm_core::json::Json;
use mcm_query::wire::WireRequest;
use mcm_serve::{client, Server, ServerConfig, ShutdownHandle};

/// Keys whose values legitimately differ between a cold direct run and
/// a warm shared-cache run (`timings` are wall-clock distributions).
const VOLATILE: [&str; 5] = ["elapsed_ms", "stats", "cache", "warm", "timings"];

fn boot(workers: usize) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, runner)
}

fn normalized(body: &str) -> Json {
    let mut doc = Json::parse(body).expect("valid JSON body");
    doc.strip_keys(&VOLATILE);
    doc
}

/// Single-threaded ground truth: the same document, run directly.
fn ground_truth(request: &str) -> Json {
    let wire = WireRequest::parse(request).expect("parses");
    let outcome = wire.spec.run(None).expect("runs");
    normalized(&outcome.report.render(wire.format).expect("renders"))
}

fn statsz(addr: SocketAddr) -> Json {
    let response = client::get(addr, "/statsz").expect("statsz");
    assert_eq!(response.status, 200);
    Json::parse(&response.body).expect("statsz is valid JSON")
}

fn cache_hits(addr: SocketAddr) -> i64 {
    statsz(addr)
        .get("cache")
        .and_then(|cache| cache.get("hits"))
        .and_then(Json::as_i64)
        .expect("cache.hits present")
}

fn checker_calls(addr: SocketAddr) -> i64 {
    statsz(addr)
        .get("engine")
        .and_then(|engine| engine.get("checker_calls"))
        .and_then(Json::as_i64)
        .expect("engine.checker_calls present")
}

const MIXED: [&str; 6] = [
    r#"{"query": "sweep", "models": ["SC", "TSO", "PSO", "RMO"], "tests": "catalog"}"#,
    r#"{"query": "compare", "left": "TSO", "right": "x86"}"#,
    r#"{"query": "check", "model": "SC", "tests": "catalog", "witness": true}"#,
    r#"{"query": "distinguish", "models": ["SC", "TSO", "PSO"]}"#,
    r#"{"query": "suite"}"#,
    r#"{"query": "sweep", "engine": {"jobs": 2}}"#,
];

#[test]
fn interleaved_mixed_queries_all_match_single_threaded_ground_truth() {
    let (addr, handle, runner) = boot(4);
    let expected: Vec<Json> = MIXED.iter().map(|request| ground_truth(request)).collect();

    let hits_start = cache_hits(addr);
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Every client walks the mix from a different offset,
                    // so distinct kinds genuinely interleave.
                    for i in 0..MIXED.len() {
                        let pick = (client_id + round + i) % MIXED.len();
                        let response = client::post_query(addr, MIXED[pick])
                            .expect("request reaches server");
                        assert_eq!(response.status, 200, "{}", response.body);
                        assert_eq!(
                            normalized(&response.body),
                            expected[pick],
                            "client {client_id} round {round}: {}",
                            MIXED[pick]
                        );
                    }
                }
            });
        }
    });

    // 8 clients × 3 rounds of sweeps over shared fingerprinted work:
    // the shared cache must have been hit, and hits only ever grow.
    let hits_end = cache_hits(addr);
    assert!(
        hits_end > hits_start,
        "shared cache hits must strictly grow under a repeated workload \
         ({hits_start} -> {hits_end})"
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn cache_hit_counter_is_monotone_across_interleaved_observations() {
    let (addr, handle, runner) = boot(4);
    let mut observed = vec![cache_hits(addr)];
    std::thread::scope(|scope| {
        let worker = scope.spawn(move || {
            for _ in 0..6 {
                let response = client::post_query(
                    addr,
                    r#"{"query": "sweep", "models": ["SC", "TSO", "PSO"], "tests": "catalog"}"#,
                )
                .expect("sweep");
                assert_eq!(response.status, 200);
            }
        });
        // Sample the counter while the sweeps run; every observation
        // must be >= the previous one (atomics only go up).
        for _ in 0..20 {
            observed.push(cache_hits(addr));
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        worker.join().expect("sweeps complete");
    });
    observed.push(cache_hits(addr));
    assert!(
        observed.windows(2).all(|w| w[0] <= w[1]),
        "cache hit counter regressed: {observed:?}"
    );
    assert!(
        observed.last() > observed.first(),
        "repeated identical sweeps must produce cache hits: {observed:?}"
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn second_identical_sweep_is_served_with_zero_checker_calls() {
    let (addr, handle, runner) = boot(2);
    let sweep = r#"{"query": "sweep", "engine": {"jobs": 1}}"#;

    let first = client::post_query(addr, sweep).expect("first sweep");
    assert_eq!(first.status, 200);
    let calls_after_first = checker_calls(addr);
    assert!(
        calls_after_first > 0,
        "the cold sweep must have exercised the checker"
    );

    let second = client::post_query(addr, sweep).expect("second sweep");
    assert_eq!(second.status, 200);
    let calls_after_second = checker_calls(addr);
    assert_eq!(
        calls_after_second, calls_after_first,
        "an identical sweep must be answered entirely from the shared cache"
    );

    // The two responses agree on everything but warmth artifacts.
    assert_eq!(normalized(&first.body), normalized(&second.body));

    // And the per-request stats visible in the second response must
    // themselves show a fully warm run: zero checker calls.
    let doc = Json::parse(&second.body).unwrap();
    let stats = doc.get("stats").expect("sweep report embeds stats");
    assert_eq!(
        stats.get("checker_calls").and_then(Json::as_i64),
        Some(0),
        "second sweep stats: {}",
        stats.pretty()
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn live_gauges_return_to_zero_after_drain() {
    let (addr, handle, runner) = boot(4);
    let gauges = |addr| {
        let doc = statsz(addr);
        let gauges = doc.get("gauges").expect("statsz has a gauges section");
        (
            gauges.get("queue_depth").and_then(Json::as_i64).unwrap(),
            gauges.get("in_flight").and_then(Json::as_i64).unwrap(),
        )
    };
    assert_eq!(gauges(addr), (0, 0), "idle server gauges must read zero");

    // Hammer the server with enough concurrent sweeps that some must
    // queue and several execute at once; sample the gauges live.
    let mut peak_in_flight = 0;
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(move || {
                for _ in 0..3 {
                    let response = client::post_query(
                        addr,
                        r#"{"query": "sweep", "models": ["SC", "TSO", "PSO", "RMO"],
                            "tests": "catalog", "cache": false}"#,
                    )
                    .expect("sweep");
                    assert_eq!(response.status, 200);
                }
            });
        }
        for _ in 0..30 {
            let (depth, in_flight) = gauges(addr);
            assert!(depth >= 0 && in_flight >= 0, "gauges never go negative");
            peak_in_flight = peak_in_flight.max(in_flight);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    });

    // All clients joined: the service has drained, so both live gauges
    // must be back at exactly zero (a cumulative counter would not be).
    assert_eq!(
        gauges(addr),
        (0, 0),
        "drained server gauges must return to zero"
    );
    assert!(
        peak_in_flight >= 1,
        "sampling during the hammer should catch at least one in-flight query"
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}

#[test]
fn explicit_cache_false_opts_a_request_out_of_the_shared_cache() {
    let (addr, handle, runner) = boot(2);
    let warmer = r#"{"query": "sweep", "models": ["SC", "TSO"], "tests": "catalog"}"#;
    let loner = r#"{"query": "sweep", "models": ["SC", "TSO"], "tests": "catalog",
                    "cache": false}"#;
    assert_eq!(client::post_query(addr, warmer).unwrap().status, 200);
    let hits_before = cache_hits(addr);
    let response = client::post_query(addr, loner).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        cache_hits(addr),
        hits_before,
        "cache:false requests must not touch the shared cache"
    );
    handle.shutdown();
    runner.join().expect("clean shutdown");
}
