//! E5 / §3.4 and Corollary 1: the test-count comparison — naive
//! enumeration (~a million) vs template instantiation (230 / 124).

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_gen::{count, naive, template_suite};
use std::hint::black_box;

fn bench_counts(c: &mut Criterion) {
    // Correctness gates.
    assert_eq!(count::paper_bound(true), 230);
    assert_eq!(count::paper_bound(false), 124);

    let mut group = c.benchmark_group("tab_corollary1");
    // The naive counts iterate hundreds of thousands of program shapes per
    // call; a small sample keeps the bench run short.
    group.sample_size(10);
    group.bench_function("corollary1-formula", |b| {
        b.iter(|| black_box(count::corollary1(4, 4, 6, 6)));
    });
    group.bench_function("naive-count/default-bounds", |b| {
        b.iter(|| black_box(naive::count_tests(&naive::NaiveBounds::default())));
    });
    group.bench_function("naive-count-raw/default-bounds", |b| {
        b.iter(|| black_box(naive::count_tests_raw(&naive::NaiveBounds::default())));
    });
    let small = naive::NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
    };
    group.bench_function("naive-materialise/small-bounds", |b| {
        b.iter(|| black_box(naive::enumerate_tests(&small, usize::MAX).len()));
    });
    group.bench_function("template-suite/with-deps", |b| {
        b.iter(|| black_box(template_suite(true).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_counts);
criterion_main!(benches);
