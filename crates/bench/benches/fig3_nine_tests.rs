//! E3 / Figure 3: the verdict matrix of the nine contrasting tests L1–L9
//! against the named hardware models.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{Checker, ExplicitChecker};
use mcm_models::{catalog, named};
use std::hint::black_box;

fn bench_nine_tests(c: &mut Criterion) {
    let models = [
        named::sc(),
        named::ibm370(),
        named::tso(),
        named::pso(),
        named::rmo(),
        named::alpha(),
    ];
    let tests = catalog::nine_tests();
    let checker = ExplicitChecker::new();

    let mut group = c.benchmark_group("fig3_nine_tests");
    group.bench_function("verdict-matrix/6-models", |b| {
        b.iter(|| {
            let mut allowed = 0usize;
            for model in &models {
                for test in &tests {
                    if checker.is_allowed(black_box(model), black_box(test)) {
                        allowed += 1;
                    }
                }
            }
            black_box(allowed)
        });
    });
    for test in &tests {
        group.bench_function(format!("single/{}-under-RMO", test.name()), |b| {
            let rmo = named::rmo();
            b.iter(|| black_box(checker.check(&rmo, black_box(test)).allowed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nine_tests);
criterion_main!(benches);
