//! CEGIS synthesis vs exhaustive sweep: the paper's question, answered
//! both ways.
//!
//! Reported before the timed benches run (and asserted, so CI catches
//! regressions):
//!
//! * **cross-validation** — over a box small enough to sweep, the
//!   synthesized per-pair minimal distinguishing lengths equal the
//!   exhaustive streaming sweep's for every model pair of a named-model
//!   panel, and the synthesized witnesses are oracle-confirmed on both
//!   sides;
//! * **Theorem 1 by synthesis** — the headline bounds re-derived without
//!   enumeration: SC vs TSO needs 4 accesses (store buffering), TSO vs
//!   IBM370 needs the full 6 (the same-address write-read case), each
//!   with an UNSAT certificate that nothing shorter works.
//!
//! The timed benches compare a CEGIS pair query against the equivalent
//! exhaustive sweep. Run with `cargo bench -p mcm-bench --bench
//! synth_cegis`; CI runs it with `-- --test` (everything once, untimed).

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{Checker, ExplicitChecker};
use mcm_explore::Exploration;
use mcm_gen::stream::{self, StreamBounds};
use mcm_models::named;
use mcm_synth::{SynthBounds, Synthesizer};
use std::hint::black_box;

fn panel() -> Vec<mcm_core::MemoryModel> {
    vec![named::sc(), named::tso(), named::pso(), named::ibm370()]
}

fn small_stream_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

fn small_synth_bounds() -> SynthBounds {
    SynthBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

/// Per-pair minimal lengths by exhaustive sweep of the streamed leaders.
fn sweep_lengths(models: &[mcm_core::MemoryModel]) -> Vec<Vec<Option<usize>>> {
    let tests: Vec<_> = stream::leaders(&small_stream_bounds()).collect();
    let expl = Exploration::run_parallel(models.to_vec(), tests);
    mcm_explore::distinguish::minimal_length_matrix(&expl)
}

fn report_cross_validation() {
    let models = panel();
    let expected = sweep_lengths(&models);
    let mut synth =
        Synthesizer::new(models.clone(), small_synth_bounds()).expect("valid bounds");
    let matrix = synth.matrix(4);
    let checker = ExplicitChecker::new();
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            assert_eq!(
                matrix.lengths[i][j],
                expected[i][j],
                "synth vs sweep disagree on {} / {}",
                models[i].name(),
                models[j].name()
            );
            if let Some(witness) = matrix.witnesses.get(&(i, j)) {
                assert_ne!(
                    checker.is_allowed(&models[i], witness),
                    checker.is_allowed(&models[j], witness),
                );
            }
        }
    }
    let stats = synth.stats();
    assert_eq!(stats.encoding_mismatches, 0);
    println!(
        "cross-validation: {} models, all pairwise minimal lengths match the \
         exhaustive sweep ({} SAT queries -> {} structures -> {} candidates)",
        models.len(),
        stats.sat_queries,
        stats.structures,
        stats.candidates,
    );
}

fn report_theorem1_by_synthesis() {
    let mut synth = Synthesizer::new(
        vec![named::sc(), named::tso(), named::ibm370()],
        SynthBounds::default(),
    )
    .expect("valid bounds");
    let sc_tso = synth.pair(0, 1, 6);
    assert_eq!(sc_tso.length, Some(4), "SC vs TSO: store buffering");
    let tso_ibm = synth.pair(1, 2, 6);
    assert_eq!(
        tso_ibm.length,
        Some(6),
        "TSO vs IBM370: the same-address write-read case needs Theorem 1's full bound"
    );
    println!(
        "Theorem 1 by synthesis: SC|TSO at {} accesses, TSO|IBM370 at {} \
         (UNSAT-certified minimal; {} sub-spaces exhausted)",
        sc_tso.length.expect("distinguishable"),
        tso_ibm.length.expect("distinguishable"),
        synth.stats().shapes_exhausted,
    );
}

fn bench_pair_synthesis(c: &mut Criterion) {
    report_cross_validation();
    report_theorem1_by_synthesis();

    let mut group = c.benchmark_group("synth_cegis");
    group.bench_function("cegis_pair_sc_tso", |b| {
        b.iter(|| {
            let mut synth = Synthesizer::new(
                vec![named::sc(), named::tso()],
                small_synth_bounds(),
            )
            .expect("valid bounds");
            black_box(synth.pair(0, 1, 4).length)
        });
    });
    group.bench_function("sweep_pair_sc_tso", |b| {
        b.iter(|| {
            let models = vec![named::sc(), named::tso()];
            black_box(sweep_lengths(&models)[0][1])
        });
    });
    group.bench_function("cegis_equivalence_certificate", |b| {
        b.iter(|| {
            let mut synth = Synthesizer::new(
                vec![named::tso(), named::x86()],
                small_synth_bounds(),
            )
            .expect("valid bounds");
            black_box(synth.pair(0, 1, 4).length)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pair_synthesis);
criterion_main!(benches);
