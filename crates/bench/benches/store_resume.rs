//! Durable verdicts and checkpoint/resume: what does persistence cost,
//! and what does it buy back?
//!
//! Reported before the timed benches run (and asserted, so CI catches
//! regressions):
//!
//! * **warm-from-disk identity** — a streamed sweep run with a verdict
//!   log (`--store`), then re-run over the same log the way a freshly
//!   restarted process would, makes **zero** checker calls the second
//!   time, answers every pair from the disk tier, and produces the
//!   bit-identical verdict matrix and equivalence classes;
//! * **resume identity** — the engine contract behind
//!   `--checkpoint`/`--resume`: a sweep resumed from its mid-stream
//!   checkpoint finishes bit-identical to the uninterrupted run, and the
//!   replayed prefix costs zero checker calls.
//!
//! The timed benches put numbers on the trade: the cold sweep with no
//! store, the same sweep paying the append-and-flush cost of the log,
//! the warm sweep that hydrates the log instead of checking, and the
//! resume that replays half the stream before doing new work. Run with
//! `cargo bench -p mcm-bench --bench store_resume`; CI runs it with
//! `-- --test`, which executes everything once, untimed.

use std::cell::RefCell;
use std::path::{Path, PathBuf};

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_explore::{paper, EngineConfig, Exploration, StreamCheckpoint, StreamControl, SweepStats};
use mcm_gen::stream::{self, StreamBounds};
use mcm_query::{ModelSpec, Query, SweepReport, TestSource};
use std::hint::black_box;

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

/// Bounds small enough that a full sweep is bench-iteration cheap.
fn tiny_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

/// A scratch path namespaced by pid so parallel CI jobs cannot collide.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mcm-bench-store");
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// The product-level sweep: the same query `mcm explore --stream
/// [--store FILE]` builds, single-threaded so timings are stable.
fn sweep(store: Option<&Path>) -> SweepReport {
    let mut query = Query::sweep()
        .models(ModelSpec::Figure4)
        .tests(TestSource::Stream {
            bounds: tiny_bounds(),
            limit: None,
            shard: None,
        })
        .engine(EngineConfig {
            jobs: Some(1),
            ..EngineConfig::default()
        });
    if let Some(path) = store {
        query = query.store(path);
    }
    query.run().expect("streamed sweep cannot fail")
}

/// Bit-identity of the sweep outcome: same kept tests, same packed
/// verdict words, same equivalence classes.
fn assert_same_outcome(label: &str, a: &SweepReport, b: &SweepReport) {
    let names = |r: &SweepReport| -> Vec<String> {
        r.exploration.tests.iter().map(|t| t.name().to_string()).collect()
    };
    assert_eq!(names(a), names(b), "{label}: kept tests diverge");
    assert_eq!(
        a.exploration.verdicts, b.exploration.verdicts,
        "{label}: verdict bit-vectors diverge"
    );
    assert_eq!(
        a.equivalent_pairs, b.equivalent_pairs,
        "{label}: equivalence classes diverge"
    );
}

fn report_warm_from_disk() {
    let log = scratch("warm.log");
    let _ = std::fs::remove_file(&log);

    let cold = sweep(Some(&log));
    let cold_calls = cold.stats.checker_calls;
    let cold_store = cold.store.as_ref().expect("cold run opened a store");
    assert!(cold_calls > 0, "the cold sweep must actually check");
    assert!(cold_store.appended > 0, "the cold sweep must append verdicts");

    // A second run over the same log is what a restarted process sees:
    // the log is hydrated into the disk tier and the whole sweep is
    // answered without a single checker call.
    let warm = sweep(Some(&log));
    let warm_cache = warm.cache.as_ref().expect("warm run has a cache");
    let warm_store = warm.store.as_ref().expect("warm run opened the store");
    assert_eq!(
        warm.stats.checker_calls, 0,
        "a warm-from-disk sweep must make zero checker calls"
    );
    assert_eq!(
        warm_cache.hits, warm_cache.hits_disk,
        "a fresh process has no RAM-tier history: every hit is disk-tier"
    );
    assert!(
        warm_cache.hits_disk >= cold_calls,
        "the disk tier must answer at least every pair the cold run checked"
    );
    assert_eq!(
        warm_store.appended, 0,
        "a fully warm sweep discovers nothing new to append"
    );
    assert_same_outcome("cold vs warm-from-disk", &cold, &warm);
    println!(
        "warm-from-disk: cold run checked {} batches and appended {} verdicts \
         ({} bytes); warm run checked 0, answered {} lookups from disk, \
         bit-identical outcome",
        cold_calls, cold_store.appended, warm_store.bytes, warm_cache.hits_disk,
    );

    let _ = std::fs::remove_file(&log);
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        stream_chunk: 16,
        jobs: Some(1),
        ..EngineConfig::default()
    }
}

fn run_cold_engine(models: Vec<mcm_core::MemoryModel>) -> (Exploration, SweepStats) {
    Exploration::run_engine_streaming(
        models,
        stream::leaders(&tiny_bounds()),
        factory,
        &engine_config(),
        None,
    )
}

fn run_resumed_engine(
    models: Vec<mcm_core::MemoryModel>,
    state: StreamCheckpoint,
) -> (Exploration, SweepStats) {
    Exploration::run_engine_streaming_with(
        models,
        stream::leaders(&tiny_bounds()),
        factory,
        &engine_config(),
        None,
        StreamControl {
            on_checkpoint: None,
            resume: Some(state),
        },
    )
    .expect("resume from a same-sweep checkpoint cannot be rejected")
}

/// Captures the checkpoint roughly halfway through the stream — the
/// state a killed `--checkpoint` run would leave on disk.
fn mid_checkpoint(models: Vec<mcm_core::MemoryModel>, total_streamed: u64) -> StreamCheckpoint {
    let grabbed: RefCell<Option<StreamCheckpoint>> = RefCell::new(None);
    let _ = Exploration::run_engine_streaming_with(
        models,
        stream::leaders(&tiny_bounds()),
        factory,
        &engine_config(),
        None,
        StreamControl {
            on_checkpoint: Some(Box::new(|state: &StreamCheckpoint| {
                if state.tests_streamed * 2 >= total_streamed && grabbed.borrow().is_none() {
                    *grabbed.borrow_mut() = Some(state.clone());
                }
                true
            })),
            resume: None,
        },
    )
    .expect("checkpoint-capturing run cannot fail");
    grabbed.into_inner().expect("stream is long enough to have a midpoint")
}

fn report_resume_identity() -> (Vec<mcm_core::MemoryModel>, StreamCheckpoint) {
    let models = paper::digit_space_models(false);
    let baseline = run_cold_engine(models.clone());
    let state = mid_checkpoint(models.clone(), baseline.1.tests_streamed);
    let replayed = state.tests_streamed;

    let resumed = run_resumed_engine(models.clone(), state.clone());
    let names = |e: &Exploration| -> Vec<String> {
        e.tests.iter().map(|t| t.name().to_string()).collect()
    };
    assert_eq!(names(&baseline.0), names(&resumed.0), "resume: kept tests diverge");
    assert_eq!(
        baseline.0.verdicts, resumed.0.verdicts,
        "resume: verdict bit-vectors diverge"
    );
    assert_eq!(baseline.1, resumed.1, "resume: SweepStats diverge");
    println!(
        "resume identity: killed at {replayed}/{} streamed tests, resumed run \
         replays the prefix through dedup only and finishes bit-identical",
        baseline.1.tests_streamed,
    );
    (models, state)
}

fn bench_store_resume(c: &mut Criterion) {
    report_warm_from_disk();
    let (models, mid) = report_resume_identity();

    let mut group = c.benchmark_group("store_resume");
    group.sample_size(10);

    group.bench_function("sweep/cold-no-store", |b| {
        b.iter(|| black_box(sweep(None).stats.checker_calls));
    });

    let append_log = scratch("bench-append.log");
    group.bench_function("sweep/cold-appending-log", |b| {
        b.iter(|| {
            // Each iteration is a genuinely cold run: the log from the
            // previous iteration would otherwise make it warm.
            let _ = std::fs::remove_file(&append_log);
            black_box(sweep(Some(&append_log)).stats.checker_calls)
        });
    });
    let _ = std::fs::remove_file(&append_log);

    let warm_log = scratch("bench-warm.log");
    let _ = std::fs::remove_file(&warm_log);
    let _ = sweep(Some(&warm_log)); // populate once; every iter hydrates it
    group.bench_function("sweep/warm-from-log", |b| {
        b.iter(|| black_box(sweep(Some(&warm_log)).cache.as_ref().unwrap().hits_disk));
    });
    let _ = std::fs::remove_file(&warm_log);

    group.bench_function("engine/cold-full-stream", |b| {
        b.iter(|| black_box(run_cold_engine(models.clone()).1.checker_calls));
    });

    group.bench_function("engine/resume-from-mid-checkpoint", |b| {
        b.iter(|| black_box(run_resumed_engine(models.clone(), mid.clone()).1.checker_calls));
    });

    group.finish();
}

criterion_group!(benches, bench_store_resume);
criterion_main!(benches);
