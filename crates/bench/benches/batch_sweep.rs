//! Test-major batched sweep vs the per-cell sweep, old against new.
//!
//! Reported before the timed benches run (and asserted, so CI catches
//! regressions):
//!
//! * **verdict identity** — the Figure-4 sweep (36 models × the full
//!   comparison suite) through the batched explicit checker and through
//!   the per-cell adapter produce bit-identical verdict lattices (zero
//!   mismatches), and the batched SAT checker agrees cell for cell on a
//!   reduced grid;
//! * **amortization** — wall-clock of old (per-cell) vs new (batched)
//!   on the same grid, with the row-collapse counters that explain the
//!   gap: the per-cell path enumerates each test's `(rf, co)` space 36
//!   times, the batched path once.
//!
//! Run with `cargo bench -p mcm-bench --bench batch_sweep`; CI runs it
//! with `-- --test`, which executes everything once, untimed.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{BatchExplicitChecker, BatchSatChecker, ExplicitChecker, SatChecker};
use mcm_explore::{paper, EngineConfig, Exploration};

fn figure4_space() -> (Vec<mcm_core::MemoryModel>, Vec<mcm_core::LitmusTest>) {
    (paper::digit_space_models(false), paper::comparison_tests(false))
}

/// One thread, no cache: pure checking cost, old vs new.
fn single_thread_config() -> EngineConfig {
    EngineConfig {
        jobs: Some(1),
        ..EngineConfig::default()
    }
}

/// The correctness assertion behind the bench: zero verdict mismatches
/// between the per-cell and the batched sweeps, plus the recorded
/// old-vs-new wall times.
fn report_equivalence_and_speedup() {
    let (models, tests) = figure4_space();
    let config = single_thread_config();

    let start = Instant::now();
    let (old, old_stats) = Exploration::run_engine(
        models.clone(),
        tests.clone(),
        || Box::new(ExplicitChecker::new()),
        &config,
        None,
    );
    let old_wall = start.elapsed();

    let start = Instant::now();
    let (new, new_stats) = Exploration::run_engine(
        models,
        tests,
        || Box::new(BatchExplicitChecker::new()),
        &config,
        None,
    );
    let new_wall = start.elapsed();

    let mismatches: usize = old
        .verdicts
        .iter()
        .zip(&new.verdicts)
        .map(|(a, b)| a.diff_indices(b).len())
        .sum();
    assert_eq!(
        mismatches, 0,
        "the batched sweep must be bit-identical to the per-cell sweep"
    );
    assert_eq!(old_stats.checker_calls, new_stats.checker_calls);
    assert!(new_stats.batch.rows > 0, "the batched path must batch");
    println!(
        "figure-4 sweep ({} models x {} tests, 1 thread): per-cell {:.2?} \
         -> batched {:.2?} ({:.2}x), 0 verdict mismatches",
        old.models.len(),
        old.tests.len(),
        old_wall,
        new_wall,
        old_wall.as_secs_f64() / new_wall.as_secs_f64().max(1e-9),
    );
    println!(
        "amortization: {} rows, {} verdicts in {} groups ({:.1}x row collapse), \
         {} shared (rf, co) candidates",
        new_stats.batch.rows,
        new_stats.batch.models_checked,
        new_stats.batch.model_groups,
        new_stats.batch.models_checked as f64 / new_stats.batch.model_groups.max(1) as f64,
        new_stats.batch.shared_candidates,
    );
}

/// The SAT pair: per-rf-map per-cell checker vs the assumption-selected
/// shared encoding, on a grid small enough for the slow side.
fn report_sat_equivalence() {
    let models = paper::digit_space_models(false);
    let tests: Vec<mcm_core::LitmusTest> = paper::comparison_tests(false)
        .into_iter()
        .take(12)
        .collect();
    let config = single_thread_config();

    let start = Instant::now();
    let (old, _) = Exploration::run_engine(
        models.clone(),
        tests.clone(),
        || Box::new(SatChecker::new()),
        &config,
        None,
    );
    let old_wall = start.elapsed();

    let start = Instant::now();
    let (new, stats) = Exploration::run_engine(
        models,
        tests,
        || Box::new(BatchSatChecker::new()),
        &config,
        None,
    );
    let new_wall = start.elapsed();

    let mismatches: usize = old
        .verdicts
        .iter()
        .zip(&new.verdicts)
        .map(|(a, b)| a.diff_indices(b).len())
        .sum();
    assert_eq!(mismatches, 0, "batched SAT must agree with per-cell SAT");
    assert!(stats.batch.assumption_solves > 0);
    println!(
        "SAT sweep ({} models x {} tests, 1 thread): per-cell-rf {:.2?} -> \
         assumption-selected {:.2?} ({:.2}x), {} solves for {} verdicts",
        old.models.len(),
        old.tests.len(),
        old_wall,
        new_wall,
        old_wall.as_secs_f64() / new_wall.as_secs_f64().max(1e-9),
        stats.batch.assumption_solves,
        stats.batch.models_checked,
    );
}

fn bench_batch_sweep(c: &mut Criterion) {
    report_equivalence_and_speedup();
    report_sat_equivalence();
    if criterion::is_test_mode() {
        return;
    }
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(10);
    group.bench_function("figure4/per-cell", |b| {
        b.iter(|| {
            let (models, tests) = figure4_space();
            let (expl, _) = Exploration::run_engine(
                models,
                tests,
                || Box::new(ExplicitChecker::new()),
                &single_thread_config(),
                None,
            );
            black_box(expl.verdicts.len())
        })
    });
    group.bench_function("figure4/batched", |b| {
        b.iter(|| {
            let (models, tests) = figure4_space();
            let (expl, _) = Exploration::run_engine(
                models,
                tests,
                || Box::new(BatchExplicitChecker::new()),
                &single_thread_config(),
                None,
            );
            black_box(expl.verdicts.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_sweep);
criterion_main!(benches);
