//! E4/E7/E8 / Figure 4 and §4.2: exploring the model spaces. The paper
//! reports "a few seconds" per pair comparison and "20 minutes" for the
//! pairwise comparison of all 90 models; this harness reproduces the
//! *shape* (full space ≫ single pair) and records how far 2026 hardware
//! moves the absolute numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_explore::paper;
use mcm_explore::Lattice;
use std::hint::black_box;

fn bench_exploration(c: &mut Criterion) {
    // Correctness gates: the headline results.
    let report = paper::explore_digit_space(true);
    assert_eq!(report.equivalent_pairs.len(), 8);
    assert!(report.nine_tests_sufficient);

    let mut group = c.benchmark_group("fig4_exploration");
    group.sample_size(10);
    group.bench_function("space-36-nodep/full-report", |b| {
        b.iter(|| {
            let report = paper::explore_digit_space(false);
            black_box(report.lattice.classes.len())
        });
    });
    group.bench_function("space-90/full-report", |b| {
        b.iter(|| {
            let report = paper::explore_digit_space(true);
            black_box(report.equivalent_pairs.len())
        });
    });
    // Lattice construction alone, on the verdict matrix of the 36-model
    // space (the Figure 4 Hasse reduction).
    let nodep = paper::explore_digit_space(false);
    group.bench_function("lattice/hasse-reduction-36", |b| {
        b.iter(|| black_box(Lattice::build(black_box(&nodep.exploration)).edges.len()));
    });
    group.bench_function("minimal-set/greedy+sat-certificate", |b| {
        b.iter(|| {
            black_box(
                mcm_explore::distinguish::minimal_distinguishing_set(&nodep.exploration)
                    .tests
                    .len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
