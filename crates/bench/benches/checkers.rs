//! Ablation: the three admissibility checkers on the full catalog — the
//! design-choice benchmark behind using the explicit checker for space
//! exploration and the SAT checkers for paper fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{all_checkers, Checker, ExplicitChecker, MonolithicSatChecker, SatChecker};
use mcm_models::{catalog, named};
use std::hint::black_box;

fn bench_checkers(c: &mut Criterion) {
    let tests = catalog::all_tests();
    let models = [named::sc(), named::tso(), named::rmo()];

    // Correctness gate: agreement across the board.
    for test in &tests {
        for model in &models {
            let verdicts: Vec<bool> = all_checkers()
                .iter()
                .map(|ch| ch.is_allowed(model, test))
                .collect();
            assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        }
    }

    let mut group = c.benchmark_group("checkers");
    group.bench_function("explicit/catalog-x3-models", |b| {
        let checker = ExplicitChecker::new();
        b.iter(|| run_all(&checker, &models, &tests));
    });
    group.bench_function("sat/catalog-x3-models", |b| {
        let checker = SatChecker::new();
        b.iter(|| run_all(&checker, &models, &tests));
    });
    group.bench_function("sat-monolithic/catalog-x3-models", |b| {
        let checker = MonolithicSatChecker::new();
        b.iter(|| run_all(&checker, &models, &tests));
    });
    group.finish();
}

fn run_all(
    checker: &dyn Checker,
    models: &[mcm_core::MemoryModel],
    tests: &[mcm_core::LitmusTest],
) -> usize {
    let mut allowed = 0;
    for model in models {
        for test in tests {
            if checker.is_allowed(black_box(model), black_box(test)) {
                allowed += 1;
            }
        }
    }
    black_box(allowed)
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
