//! Load-tests `mcm serve` over real sockets: a multi-threaded generator
//! drives thousands of mixed wire-format requests at an in-process
//! server and reports p50/p99 latency plus the cross-request cache-hit
//! ratio.
//!
//! Asserted before the timed benches run (so CI catches a server that
//! stops sharing its cache or sheds load it should absorb):
//!
//! * every request in a 1000-strong mixed workload (sweep / compare /
//!   distinguish / check / catalog / suite / figures) is answered `200`,
//!   with `503` backpressure retried per `Retry-After`;
//! * a repeated identical sweep is served from the **shared warm cache**
//!   with a hit ratio above 90% and a p50 below the cold p50 — the
//!   cross-request analogue of the §4.2 warm-lattice effect;
//! * graceful shutdown leaves nothing hanging (every boot in the cold
//!   phase is also a clean drain).
//!
//! Run with `cargo bench -p mcm-bench --bench serve_load`; CI runs it
//! with `-- --test`, which executes everything once, untimed.

use std::hint::black_box;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_core::json::Json;
use mcm_serve::{client, Server, ServerConfig, ShutdownHandle};

/// The identical sweep used for the cold/warm comparison. `jobs: 1`
/// keeps the cold compute single-threaded so the warm speedup is the
/// cache's, not the scheduler's, and the SAT checker makes the checking
/// cost dominate the fixed per-request work (canonicalization, lattice,
/// rendering) — a warm request skips exactly the expensive part.
const WARM_SWEEP: &str = r#"{"query": "sweep", "checker": "sat", "engine": {"jobs": 1},
                             "cache": true, "format": "json"}"#;

/// One cycle of the mixed workload; 100 cycles = 1000 requests.
const MIXED: [&str; 10] = [
    r#"{"query": "sweep", "engine": {"jobs": 2}}"#,
    r#"{"query": "compare", "left": "TSO", "right": "x86"}"#,
    r#"{"query": "check", "model": "SC", "tests": "catalog"}"#,
    r#"{"query": "distinguish", "models": ["SC", "TSO", "PSO", "RMO"]}"#,
    r#"{"query": "catalog"}"#,
    r#"{"query": "sweep", "models": ["SC", "TSO", "PSO"], "tests": "catalog"}"#,
    r#"{"query": "check", "model": "TSO", "tests": "catalog"}"#,
    r#"{"query": "suite"}"#,
    r#"{"query": "figures", "which": "fig3"}"#,
    r#"{"query": "compare", "left": "SC", "right": "PSO"}"#,
];

fn boot(workers: usize) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        workers,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, runner)
}

/// Issues one query, retrying `503` backpressure responses after the
/// advertised delay. Returns the latency of the successful attempt.
fn timed_query(addr: SocketAddr, body: &str) -> Duration {
    loop {
        let start = Instant::now();
        let response = client::post_query(addr, body).expect("request reaches the server");
        if response.status == 503 {
            let secs: u64 = response
                .header("Retry-After")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            // A fraction of the advertised delay keeps the generator
            // aggressive without busy-spinning.
            std::thread::sleep(Duration::from_millis(25.max(secs * 50)));
            continue;
        }
        assert_eq!(response.status, 200, "body: {}", response.body);
        return start.elapsed();
    }
}

/// Fans `requests` out over `threads` client threads (round-robin) and
/// returns every successful-request latency.
fn drive(addr: SocketAddr, requests: &[&str], threads: usize) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(requests.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mine: Vec<&str> = requests
                    .iter()
                    .skip(t)
                    .step_by(threads)
                    .copied()
                    .collect();
                scope.spawn(move || {
                    mine.into_iter()
                        .map(|body| timed_query(addr, body))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    latencies
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i]
}

fn engine_counter(addr: SocketAddr, name: &str) -> u64 {
    let stats = client::get(addr, "/statsz").expect("statsz");
    assert_eq!(stats.status, 200);
    let doc = Json::parse(&stats.body).expect("statsz is valid JSON");
    doc.get("engine")
        .and_then(|engine| engine.get(name))
        .and_then(Json::as_u64)
        .expect("engine counter present")
}

fn assert_serve_load_contract() {
    // Cold phase: a fresh server (empty cache) per sample, one sweep
    // each, then a full graceful drain.
    let mut cold: Vec<Duration> = (0..8)
        .map(|_| {
            let (addr, handle, runner) = boot(4);
            let elapsed = timed_query(addr, WARM_SWEEP);
            handle.shutdown();
            runner.join().expect("drained");
            elapsed
        })
        .collect();
    cold.sort();
    let cold_p50 = percentile(&cold, 0.5);

    // Warm phase: one server, one priming request, then the identical
    // sweep over and over — every verdict should come from the shared
    // cache, no matter which worker serves it.
    let (addr, handle, runner) = boot(4);
    let _prime = timed_query(addr, WARM_SWEEP);
    let hits_before = engine_counter(addr, "cache_hits");
    let calls_before = engine_counter(addr, "checker_calls");
    // Sequential like the cold samples, so the p50 comparison measures
    // the cache and not queueing delay.
    let mut warm = drive(addr, &[WARM_SWEEP; 100], 1);
    warm.sort();
    let warm_p50 = percentile(&warm, 0.5);
    let warm_hits = engine_counter(addr, "cache_hits") - hits_before;
    let warm_calls = engine_counter(addr, "checker_calls") - calls_before;
    let hit_ratio = warm_hits as f64 / (warm_hits + warm_calls).max(1) as f64;
    assert!(
        hit_ratio > 0.90,
        "warm sweeps must be cache-served: hit ratio {hit_ratio:.3} \
         ({warm_hits} hits / {warm_calls} checker calls)"
    );
    assert!(
        warm_p50 < cold_p50,
        "the shared cache must pay for itself: warm p50 {warm_p50:.2?} \
         vs cold p50 {cold_p50:.2?}"
    );

    // Mixed phase on the same (now warm) server: 1000 requests, eight
    // generator threads against four workers, so the bounded queue and
    // 503 path genuinely engage under load.
    let requests: Vec<&str> = MIXED
        .iter()
        .cycle()
        .take(1000)
        .copied()
        .collect();
    let start = Instant::now();
    let mut mixed = drive(addr, &requests, 8);
    let wall = start.elapsed();
    assert_eq!(mixed.len(), 1000);
    mixed.sort();
    let p50 = percentile(&mixed, 0.5);
    let p99 = percentile(&mixed, 0.99);

    handle.shutdown();
    runner.join().expect("drained");

    println!(
        "serve_load: 1000 mixed requests in {wall:.2?} \
         (p50 {p50:.2?}, p99 {p99:.2?}); warm sweep hit ratio {:.1}% \
         (p50 {warm_p50:.2?} warm vs {cold_p50:.2?} cold)",
        hit_ratio * 100.0,
    );
}

fn bench_serve_load(c: &mut Criterion) {
    assert_serve_load_contract();

    // Timed benches run against one long-lived, pre-warmed server.
    let (addr, handle, runner) = boot(4);
    let _prime = timed_query(addr, WARM_SWEEP);
    let mut group = c.benchmark_group("serve_load");
    group.bench_function("healthz", |b| {
        b.iter(|| black_box(client::get(addr, "/healthz").expect("healthz").status));
    });
    group.bench_function("warm_sweep_request", |b| {
        b.iter(|| black_box(timed_query(addr, WARM_SWEEP)));
    });
    group.bench_function("compare_request", |b| {
        b.iter(|| {
            black_box(timed_query(
                addr,
                r#"{"query": "compare", "left": "TSO", "right": "x86"}"#,
            ))
        });
    });
    group.finish();
    handle.shutdown();
    runner.join().expect("drained");
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
