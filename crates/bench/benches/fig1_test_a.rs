//! E1 / Figure 1: admissibility of Test A under TSO (allowed via load
//! forwarding) and SC (forbidden). Benchmarks the single-test
//! admissibility query that underlies everything else.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{Checker, ExplicitChecker, MonolithicSatChecker, SatChecker};
use mcm_models::{catalog, named};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let test = catalog::test_a();
    let tso = named::tso();
    let sc = named::sc();

    // Correctness gate: the bench must measure the paper's verdicts.
    assert!(ExplicitChecker::new().is_allowed(&tso, &test));
    assert!(!ExplicitChecker::new().is_allowed(&sc, &test));

    let mut group = c.benchmark_group("fig1_test_a");
    group.bench_function("explicit/TSO-allowed", |b| {
        let checker = ExplicitChecker::new();
        b.iter(|| black_box(checker.check(black_box(&tso), black_box(&test)).allowed));
    });
    group.bench_function("explicit/SC-forbidden", |b| {
        let checker = ExplicitChecker::new();
        b.iter(|| black_box(checker.check(black_box(&sc), black_box(&test)).allowed));
    });
    group.bench_function("sat/TSO-allowed", |b| {
        let checker = SatChecker::new();
        b.iter(|| black_box(checker.check(black_box(&tso), black_box(&test)).allowed));
    });
    group.bench_function("sat-monolithic/TSO-allowed", |b| {
        let checker = MonolithicSatChecker::new();
        b.iter(|| black_box(checker.check(black_box(&tso), black_box(&test)).allowed));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
