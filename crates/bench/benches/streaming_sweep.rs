//! Streaming canonical-first sweep vs the materialize-then-dedup pipeline.
//!
//! Reported before the timed benches run (and asserted, so CI catches
//! regressions):
//!
//! * **lattice identity** — on bounds small enough to materialize, the
//!   streamed leader sweep and the materialized + canonicalized sweep
//!   produce identical pairwise model relations (the same Hasse diagram),
//!   while the streaming path's peak test count stays a fraction of the
//!   raw space;
//! * **the size-4 sweep** — the paper's title question, asked one step
//!   past Theorem 1: sweeping tests with up to *four* accesses per thread
//!   (plus fences and the `r - r + k` dependency idiom) over the Figure 4
//!   model space and reporting how many size-3-equivalent model pairs the
//!   longer tests split. Theorem 1 predicts none; the streamed sweep
//!   corroborates it empirically without ever materializing the
//!   billion-test raw space.
//!
//! The timed benches compare wall-clock of the two pipelines on equal
//! bounds. Run with `cargo bench -p mcm-bench --bench streaming_sweep`;
//! CI runs it with `-- --test`, which executes everything once, untimed.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_explore::{paper, report, EngineConfig, Exploration, Relation};
use mcm_gen::stream::{self, StreamBounds};
use mcm_gen::naive;
use std::hint::black_box;

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

/// Bounds small enough to materialize the whole raw space.
fn tiny_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
        include_deps: false,
    }
}

fn tiny_naive_bounds() -> naive::NaiveBounds {
    naive::NaiveBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: false,
    }
}

/// The materialize-then-dedup pipeline: enumerate the raw space, then let
/// the engine collapse it to orbit representatives.
fn run_materialized(models: Vec<mcm_core::MemoryModel>) -> (Exploration, usize) {
    let raw = naive::enumerate_tests_raw(&tiny_naive_bounds(), usize::MAX);
    let peak = raw.len();
    let (expl, _) = Exploration::run_engine(
        models,
        raw,
        factory,
        &EngineConfig::canonicalizing(),
        None,
    );
    (expl, peak)
}

fn run_streamed(
    models: Vec<mcm_core::MemoryModel>,
    bounds: &StreamBounds,
    limit: usize,
) -> (Exploration, mcm_explore::SweepStats) {
    Exploration::run_engine_streaming(
        models,
        stream::leaders(bounds).take(limit),
        factory,
        &EngineConfig::default(),
        None,
    )
}

/// Every pairwise model relation must agree — the two paths may order
/// their (identical) orbit sets differently, but the lattice they induce
/// is the same.
fn assert_same_lattice(a: &Exploration, b: &Exploration) {
    assert_eq!(a.models.len(), b.models.len());
    for i in 0..a.models.len() {
        for j in 0..a.models.len() {
            assert_eq!(
                a.relation(i, j),
                b.relation(i, j),
                "{} vs {} disagree between pipelines",
                a.models[i].name(),
                a.models[j].name(),
            );
        }
    }
}

fn report_lattice_identity() {
    let models = paper::digit_space_models(false);
    let (materialized, raw_peak) = run_materialized(models.clone());
    let (streamed, stats) = run_streamed(models, &tiny_bounds(), usize::MAX);
    assert_eq!(
        streamed.tests.len() as u64,
        stats.tests_streamed,
        "a leader stream contains no duplicates to drop"
    );
    assert_same_lattice(&materialized, &streamed);
    println!(
        "lattice identity: streamed {} leaders == dedup of {} raw tests; \
         peak in memory {} (streamed) vs {} (materialized)",
        streamed.tests.len(),
        raw_peak,
        stats.peak_batch,
        raw_peak,
    );
    println!("  {}", report::streaming_summary(&stats));
}

fn report_size4_sweep() {
    // The title question, one step past Theorem 1: do litmus tests with
    // four accesses per thread (plus fences and dependencies) tell the
    // Figure 4 model space apart any further than three-access tests do?
    let limit = if criterion::is_test_mode() { 2_000 } else { 40_000 };
    let models = paper::digit_space_models(false);
    let size3 = StreamBounds {
        max_accesses_per_thread: 3,
        threads: 2,
        max_locs: 2,
        include_fences: true,
        include_deps: true,
    };
    let size4 = StreamBounds::size4(2);
    let (base, base_stats) = run_streamed(models.clone(), &size3, limit);
    let (four, four_stats) = run_streamed(models.clone(), &size4, limit);
    println!("size-3 sweep: {}", report::streaming_summary(&base_stats));
    println!("size-4 sweep: {}", report::streaming_summary(&four_stats));

    // Sound assertion: models that are *truly* equivalent — same verdict
    // on the complete Theorem 1 template suite, hence on every test in
    // the class — must not be split by any streamed sweep. A split here
    // would be a bug in the stream or the engine, not a refutation of
    // the paper.
    let (truth, _) = Exploration::run_engine(
        models,
        paper::comparison_tests(false),
        factory,
        &EngineConfig::default(),
        None,
    );
    for (i, j) in truth.equivalent_pairs() {
        assert_eq!(
            base.relation(i, j),
            Relation::Equivalent,
            "size-3 sweep split the truly equivalent pair {} == {}",
            truth.models[i].name(),
            truth.models[j].name(),
        );
        assert_eq!(
            four.relation(i, j),
            Relation::Equivalent,
            "size-4 sweep split the truly equivalent pair {} == {}",
            truth.models[i].name(),
            truth.models[j].name(),
        );
    }

    // Observational headline (prefix-vs-prefix, so reported rather than
    // asserted: the two streams enumerate their spaces in different
    // orders, and Theorem 1 only promises stability over the *complete*
    // unrestricted space): how many model pairs the size-3 prefix calls
    // equivalent does the size-4 prefix split?
    let base_pairs = base.equivalent_pairs();
    let split = base_pairs
        .iter()
        .filter(|&&(i, j)| four.relation(i, j) != Relation::Equivalent)
        .count();
    println!(
        "size-4 sweep: {split} of {} size-3-equivalent model pairs split by \
         four-access tests (Theorem 1 predicts 0 over the complete space)",
        base_pairs.len(),
    );
}

fn bench_streaming_sweep(c: &mut Criterion) {
    report_lattice_identity();
    report_size4_sweep();

    let models = paper::digit_space_models(false);
    let mut group = c.benchmark_group("streaming_sweep");
    group.sample_size(10);

    group.bench_function("materialize+dedup/tiny-bounds", |b| {
        b.iter(|| {
            let (expl, _) = run_materialized(black_box(models.clone()));
            black_box(expl.tests.len())
        });
    });

    group.bench_function("leader-stream/tiny-bounds", |b| {
        b.iter(|| {
            let (expl, _) = run_streamed(black_box(models.clone()), &tiny_bounds(), usize::MAX);
            black_box(expl.tests.len())
        });
    });

    group.bench_function("leader-stream/size4-prefix", |b| {
        b.iter(|| {
            let (expl, _) = run_streamed(black_box(models.clone()), &StreamBounds::size4(2), 500);
            black_box(expl.tests.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_streaming_sweep);
criterion_main!(benches);
