//! The sweep prefilter: how many checker calls does static analysis save?
//!
//! The prefilter restricts every model's truth table to the valuations a
//! test's program-order pairs can actually realize (its relaxation
//! signature) and groups models whose restricted tables coincide — one
//! checker call per provably-equal group instead of one per model.
//!
//! Reported before the timed benches run (and asserted, so CI catches
//! regressions):
//!
//! * **soundness** — the full 90-model streamed sweep produces the
//!   bit-identical verdict matrix with the prefilter on and off;
//! * **the reduction** — checker calls with the prefilter on, versus
//!   off, over the same stream (saved calls are counted by the engine
//!   itself, so `on + saved == off` is asserted too).
//!
//! Run with `cargo bench -p mcm-bench --bench analyze_prune`; CI runs it
//! with `-- --test`, which executes everything once, untimed.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_explore::{paper, report, EngineConfig, Exploration, SweepStats};
use mcm_gen::stream::{self, StreamBounds};
use std::hint::black_box;

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

/// The dependency-discriminating bounds the 90-model space needs.
fn dep_bounds() -> StreamBounds {
    StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 2,
        include_fences: true,
        include_deps: true,
    }
}

fn run_sweep(
    models: Vec<mcm_core::MemoryModel>,
    prefilter: bool,
    limit: usize,
) -> (Exploration, SweepStats) {
    let config = EngineConfig {
        prefilter,
        ..EngineConfig::default()
    };
    Exploration::run_engine_streaming(
        models,
        stream::leaders(&dep_bounds()).take(limit),
        factory,
        &config,
        None,
    )
}

fn report_prefilter_soundness_and_savings(limit: usize) {
    let models = paper::digit_space_models(true);
    assert_eq!(models.len(), 90);
    let (on, on_stats) = run_sweep(models.clone(), true, limit);
    let (off, off_stats) = run_sweep(models, false, limit);

    // Bit-identical verdicts: same tests, same per-model verdict vectors.
    assert_eq!(on.tests.len(), off.tests.len());
    for (row, (a, b)) in on.verdicts.iter().zip(&off.verdicts).enumerate() {
        assert_eq!(
            a, b,
            "prefilter changed the verdict vector of {}",
            on.models[row].name(),
        );
    }

    // The engine's own accounting must balance: every call the prefilter
    // skipped is a call the unfiltered sweep made.
    assert_eq!(off_stats.prefilter_saved_calls, 0);
    assert_eq!(
        on_stats.checker_calls + on_stats.prefilter_saved_calls,
        off_stats.checker_calls,
        "prefilter accounting must balance against the unfiltered sweep"
    );

    let saved = on_stats.prefilter_saved_calls;
    let percent = 100.0 * saved as f64 / off_stats.checker_calls.max(1) as f64;
    println!(
        "prefilter soundness: 90-model sweep over {} streamed leaders is \
         bit-identical on vs off",
        on.tests.len(),
    );
    println!(
        "prefilter reduction: {} checker calls with, {} without — \
         {saved} saved ({percent:.1}%) across {} groups",
        on_stats.checker_calls, off_stats.checker_calls, on_stats.prefilter_groups,
    );
    println!("  on:  {}", report::streaming_summary(&on_stats));
    println!("  off: {}", report::streaming_summary(&off_stats));
}

fn bench_analyze_prune(c: &mut Criterion) {
    let limit = if criterion::is_test_mode() { 1_000 } else { 10_000 };
    report_prefilter_soundness_and_savings(limit);

    let models = paper::digit_space_models(true);
    let mut group = c.benchmark_group("analyze_prune");
    group.sample_size(10);

    group.bench_function("sweep-90/prefilter-on", |b| {
        b.iter(|| {
            let (expl, _) = run_sweep(black_box(models.clone()), true, 500);
            black_box(expl.tests.len())
        });
    });

    group.bench_function("sweep-90/prefilter-off", |b| {
        b.iter(|| {
            let (expl, _) = run_sweep(black_box(models.clone()), false, 500);
            black_box(expl.tests.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_analyze_prune);
criterion_main!(benches);
