//! Canonicalization + memoization on the Figure 4 exploration: how much
//! checker work the symmetry quotient and the verdict cache remove.
//!
//! Reported alongside the timings (one line each, printed before the
//! benches run):
//!
//! * the dedup ratio of the canonicalization pass on the raw naive
//!   enumeration (the paper's §3.4 baseline), on the catalog + template
//!   comparison suite, and on the pure template suite (already
//!   symmetry-irredundant — the generator emits one test per orbit);
//! * the sweep statistics of the §4.2 exploration with canonicalization,
//!   and the zero-checker-call warm sweep through the verdict cache.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_explore::{paper, EngineConfig, Exploration, VerdictCache};
use mcm_gen::{canon, naive, template_suite};
use std::hint::black_box;

fn factory() -> Box<dyn BatchChecker> {
    Box::new(BatchExplicitChecker::new())
}

fn report_dedup_ratios() {
    let raw_bounds = naive::NaiveBounds {
        max_accesses_per_thread: 2,
        max_locs: 3,
        ..Default::default()
    };
    let raw = naive::enumerate_tests_raw(&raw_bounds, usize::MAX);
    let raw_orbits = canon::dedup(&raw);
    println!(
        "dedup: naive raw enumeration     {:>6} tests -> {:>5} orbits ({:.2}x)",
        raw_orbits.original_len,
        raw_orbits.len(),
        raw_orbits.dedup_ratio()
    );
    assert!(raw_orbits.dedup_ratio() > 3.0);

    let comparison = paper::comparison_tests(true);
    let comparison_orbits = canon::dedup(&comparison);
    println!(
        "dedup: catalog + template suite  {:>6} tests -> {:>5} orbits ({:.2}x)",
        comparison_orbits.original_len,
        comparison_orbits.len(),
        comparison_orbits.dedup_ratio()
    );
    assert!(comparison_orbits.dedup_ratio() > 1.0);

    let template = template_suite(true);
    let template_orbits = canon::dedup(&template.tests);
    println!(
        "dedup: template suite alone      {:>6} tests -> {:>5} orbits ({:.2}x, symmetry-irredundant)",
        template_orbits.original_len,
        template_orbits.len(),
        template_orbits.dedup_ratio()
    );
}

fn report_sweep_stats() {
    let cache = VerdictCache::new();
    let config = EngineConfig::canonicalizing();
    let (_, cold) = Exploration::run_engine(
        paper::digit_space_models(true),
        paper::comparison_tests(true),
        factory,
        &config,
        Some(&cache),
    );
    println!(
        "sweep (cold): {} pairs -> {} unique, {} checker calls ({:.2}x reduction)",
        cold.total_pairs,
        cold.unique_pairs,
        cold.checker_calls,
        cold.reduction_factor()
    );
    let (_, warm) = Exploration::run_engine(
        paper::digit_space_models(true),
        paper::comparison_tests(true),
        factory,
        &config,
        Some(&cache),
    );
    println!(
        "sweep (warm): {} pairs, {} cache hits, {} checker calls",
        warm.total_pairs, warm.cache_hits, warm.checker_calls
    );
    assert_eq!(warm.checker_calls, 0, "warm sweep must be checker-free");
}

fn bench_canonical_dedup(c: &mut Criterion) {
    report_dedup_ratios();
    report_sweep_stats();

    let models = paper::digit_space_models(true);
    let tests = paper::comparison_tests(true);

    let mut group = c.benchmark_group("canonical_dedup");
    group.sample_size(10);

    group.bench_function("canonicalize/comparison-suite", |b| {
        b.iter(|| black_box(canon::dedup(black_box(&tests)).len()));
    });

    group.bench_function("sweep/90-models/baseline", |b| {
        b.iter(|| {
            let (expl, _) = Exploration::run_engine(
                models.clone(),
                tests.clone(),
                factory,
                &EngineConfig::default(),
                None,
            );
            black_box(expl.verdicts.len())
        });
    });

    group.bench_function("sweep/90-models/canonicalized", |b| {
        b.iter(|| {
            let (expl, _) = Exploration::run_engine(
                models.clone(),
                tests.clone(),
                factory,
                &EngineConfig::canonicalizing(),
                None,
            );
            black_box(expl.verdicts.len())
        });
    });

    group.bench_function("sweep/90-models/warm-cache", |b| {
        let cache = VerdictCache::new();
        let config = EngineConfig::canonicalizing();
        // Prime once; every iteration is then a pure cache replay.
        let _ = Exploration::run_engine(
            models.clone(),
            tests.clone(),
            factory,
            &config,
            Some(&cache),
        );
        b.iter(|| {
            let (expl, stats) = Exploration::run_engine(
                models.clone(),
                tests.clone(),
                factory,
                &config,
                Some(&cache),
            );
            assert_eq!(stats.checker_calls, 0);
            black_box(expl.verdicts.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_canonical_dedup);
criterion_main!(benches);
