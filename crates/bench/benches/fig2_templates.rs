//! E2 / Figure 2: instantiating the seven litmus-test templates. Measures
//! full-suite generation (the §3.4 reduction) with and without the
//! dependency predicate.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_gen::{template, template_suite, AddrRel, Connector, Segment, SegmentType};
use std::hint::black_box;

fn bench_templates(c: &mut Criterion) {
    // Correctness gate: the suite sizes are stable.
    assert!(template_suite(true).len() > template_suite(false).len());

    let mut group = c.benchmark_group("fig2_templates");
    group.bench_function("suite/with-deps", |b| {
        b.iter(|| black_box(template_suite(true).len()));
    });
    group.bench_function("suite/without-deps", |b| {
        b.iter(|| black_box(template_suite(false).len()));
    });
    let rw = Segment::new(SegmentType::ReadWrite, Connector::DataDep, AddrRel::Diff).unwrap();
    group.bench_function("single/case1", |b| {
        b.iter(|| black_box(template::case1(black_box(rw))));
    });
    let wr = Segment::new(SegmentType::WriteRead, Connector::None, AddrRel::Same).unwrap();
    group.bench_function("single/case5b", |b| {
        b.iter(|| black_box(template::case5b(black_box(wr), black_box(rw))));
    });
    group.finish();
}

criterion_group!(benches, bench_templates);
criterion_main!(benches);
