//! The query layer must be a zero-cost front door: routing the Figure-4
//! sweep through `mcm_query::Query` has to produce the **same
//! `SweepStats` counters** and **bit-identical verdicts** as calling
//! `Exploration::run_engine` directly, at indistinguishable wall time.
//!
//! Asserted before the timed benches run (so CI catches a query layer
//! that silently reconfigures the engine), then both paths are timed.
//!
//! Run with `cargo bench -p mcm-bench --bench query_overhead`; CI runs
//! it with `-- --test`, which executes everything once, untimed.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_explore::{paper, EngineConfig, Exploration};
use mcm_query::{CheckerKind, ModelSpec, Query, TestSource};

/// One worker, no cache: deterministic counters on both paths.
fn config() -> EngineConfig {
    EngineConfig {
        jobs: Some(1),
        ..EngineConfig::default()
    }
}

/// The pre-query code path, exactly as the CLI used to hand-wire it:
/// `run_engine` followed by `paper::report_from` (lattice + minimal-set
/// certificate), so the two timings cover the same work.
fn direct_sweep() -> (paper::SpaceReport, mcm_explore::SweepStats) {
    let (exploration, stats) = Exploration::run_engine(
        paper::digit_space_models(false),
        paper::comparison_tests(false),
        || CheckerKind::Explicit.build_batch(),
        &config(),
        None,
    );
    (paper::report_from(exploration), stats)
}

fn query_sweep() -> mcm_query::SweepReport {
    Query::sweep()
        .models(ModelSpec::Figure4)
        .tests(TestSource::TemplateSuite { with_deps: false })
        .checker(CheckerKind::Explicit)
        .engine(config())
        .run()
        .expect("the Figure 4 space resolves")
}

/// The guard: same counters, zero verdict mismatches, comparable time.
fn assert_query_adds_no_overhead() {
    let start = Instant::now();
    let (direct, direct_stats) = direct_sweep();
    let direct_time = start.elapsed();

    let start = Instant::now();
    let report = query_sweep();
    let query_time = start.elapsed();

    assert_eq!(
        report.stats, direct_stats,
        "Query must drive the engine with identical settings"
    );
    let direct_expl = &direct.exploration;
    let mut mismatches = 0usize;
    assert_eq!(report.exploration.models.len(), direct_expl.models.len());
    assert_eq!(report.exploration.tests.len(), direct_expl.tests.len());
    for (m, direct_row) in direct_expl.verdicts.iter().enumerate() {
        for t in 0..direct_expl.tests.len() {
            if report.exploration.verdicts[m].allowed(t) != direct_row.allowed(t) {
                mismatches += 1;
            }
        }
    }
    assert_eq!(mismatches, 0, "verdict lattices must be bit-identical");
    // The certified artifacts must agree too — the query layer adds a
    // declarative front door, not different answers.
    assert_eq!(
        report.minimal_set.as_ref().map(|m| m.tests.len()),
        Some(direct.minimal_set.tests.len()),
    );
    assert_eq!(report.equivalent_pairs, direct.equivalent_pairs);
    assert_eq!(report.lattice.classes.len(), direct.lattice.classes.len());
    println!(
        "query_overhead: direct {direct_time:.2?} vs query {query_time:.2?} \
         ({} models x {} tests, {} checker calls each, 0 mismatches)",
        direct_expl.models.len(),
        direct_expl.tests.len(),
        direct_stats.checker_calls,
    );
}

fn bench_query_overhead(c: &mut Criterion) {
    assert_query_adds_no_overhead();
    let mut group = c.benchmark_group("query_overhead");
    group.bench_function("run_engine_direct", |b| {
        b.iter(|| black_box(direct_sweep()));
    });
    group.bench_function("query_sweep", |b| {
        b.iter(|| black_box(query_sweep()));
    });
    group.finish();
}

criterion_group!(benches, bench_query_overhead);
criterion_main!(benches);
