//! The SAT substrate (the MiniSat substitute of §4.1) on standard solver
//! workloads: implication chains, pigeonhole (hard Unsat), and the CNF of
//! a real admissibility query.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_sat::{SatResult, Solver, Var};
use std::hint::black_box;

fn pigeonhole(n: usize, m: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| solver.new_var()).collect())
        .collect();
    for row in &vars {
        let clause: Vec<_> = row.iter().map(|v| v.positive()).collect();
        solver.add_clause(&clause);
    }
    for j in 0..m {
        for (i, row) in vars.iter().enumerate() {
            for other in vars.iter().skip(i + 1) {
                solver.add_clause(&[row[j].negative(), other[j].negative()]);
            }
        }
    }
    solver
}

fn chain(n: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
    for w in vars.windows(2) {
        solver.add_clause(&[w[0].negative(), w[1].positive()]);
    }
    solver.add_clause(&[vars[0].positive()]);
    solver
}

fn bench_sat(c: &mut Criterion) {
    assert_eq!(pigeonhole(6, 5).solve(), SatResult::Unsat);

    let mut group = c.benchmark_group("sat_solver");
    group.bench_function("chain-1000-propagations", |b| {
        b.iter(|| {
            let mut solver = chain(1000);
            black_box(solver.solve() == SatResult::Sat)
        });
    });
    group.bench_function("pigeonhole-6-into-5-unsat", |b| {
        b.iter(|| {
            let mut solver = pigeonhole(6, 5);
            black_box(solver.solve() == SatResult::Unsat)
        });
    });
    group.bench_function("pigeonhole-7-into-6-unsat", |b| {
        b.iter(|| {
            let mut solver = pigeonhole(7, 6);
            black_box(solver.solve() == SatResult::Unsat)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
