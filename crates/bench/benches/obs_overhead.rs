//! Observability must be close to free: the full 90-model streamed
//! sweep with `mcm-obs` instrumentation **enabled** (the default —
//! every check call records into latency histograms, the cache mirrors
//! its counters, spans take their two atomic loads) must produce
//! **bit-identical verdicts** to the same sweep with
//! `mcm_obs::set_enabled(false)`, within a 3% wall-clock overhead
//! budget (best-of-3 on both sides, so scheduler noise does not decide
//! the verdict).
//!
//! Asserted before the timed benches run, so CI catches an
//! instrumentation point that drifts onto a hot path. Run with
//! `cargo bench -p mcm-bench --bench obs_overhead`; CI runs it with
//! `-- --test`, which executes everything once, untimed.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_explore::{paper, EngineConfig, Exploration, SweepStats};
use mcm_gen::stream::{self, StreamBounds};
use mcm_query::CheckerKind;

/// The acceptance workload: `mcm explore --models 90 --stream` —
/// the full digit space against the streamed leader enumeration.
fn bounds() -> StreamBounds {
    StreamBounds::default()
}

/// Fixed worker count: both sides schedule identically.
fn config() -> EngineConfig {
    EngineConfig {
        jobs: Some(2),
        ..EngineConfig::default()
    }
}

fn streamed_sweep() -> (Exploration, SweepStats) {
    Exploration::run_engine_streaming(
        paper::digit_space_models(true),
        stream::leaders(&bounds()),
        || CheckerKind::Explicit.build_batch(),
        &config(),
        None,
    )
}

/// The verdict matrix as plain bits, for exact comparison.
fn verdict_bits(exploration: &Exploration) -> Vec<bool> {
    let tests = exploration.tests.len();
    exploration
        .verdicts
        .iter()
        .flat_map(|row| (0..tests).map(move |t| row.allowed(t)))
        .collect()
}

/// Best-of-N wall clock of one sweep, returning the last exploration.
fn best_of(n: usize) -> (Duration, Exploration, SweepStats) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..n {
        let start = Instant::now();
        let (exploration, stats) = streamed_sweep();
        best = best.min(start.elapsed());
        last = Some((exploration, stats));
    }
    let (exploration, stats) = last.unwrap();
    (best, exploration, stats)
}

fn assert_obs_is_nearly_free() {
    assert!(mcm_obs::enabled(), "instrumentation starts enabled");
    let (on_time, on_expl, on_stats) = best_of(3);

    mcm_obs::set_enabled(false);
    let (off_time, off_expl, off_stats) = best_of(3);
    mcm_obs::set_enabled(true);

    // Identical answers first: instrumentation observes, never steers.
    assert_eq!(
        on_expl.models.len(),
        off_expl.models.len(),
        "same model space"
    );
    assert_eq!(on_expl.tests.len(), off_expl.tests.len(), "same leaders");
    assert_eq!(
        verdict_bits(&on_expl),
        verdict_bits(&off_expl),
        "verdicts must be bit-identical with obs on and off"
    );
    assert_eq!(
        on_stats, off_stats,
        "engine counters must not depend on instrumentation"
    );

    // Then the budget. Sub-millisecond sweeps cannot resolve a 3%
    // ratio, so grant a small absolute floor alongside the headline
    // relative budget.
    let budget = (off_time.mul_f64(1.03)).max(off_time + Duration::from_millis(5));
    println!(
        "obs_overhead: enabled {on_time:.2?} vs disabled {off_time:.2?} \
         (best of 3; {} models x {} streamed leaders; budget {budget:.2?})",
        on_expl.models.len(),
        on_expl.tests.len(),
    );
    assert!(
        on_time <= budget,
        "instrumentation overhead exceeds 3%: enabled {on_time:?} vs \
         disabled {off_time:?}"
    );
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_obs_is_nearly_free();
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("streamed_sweep_obs_on", |b| {
        b.iter(|| black_box(streamed_sweep()));
    });
    group.bench_function("streamed_sweep_obs_off", |b| {
        mcm_obs::set_enabled(false);
        b.iter(|| black_box(streamed_sweep()));
        mcm_obs::set_enabled(true);
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
