//! E9 / §4.2: "The comparison of each pair of models was done in a few
//! seconds". One pair = two verdict vectors over the complete template
//! suite plus classification.

use criterion::{criterion_group, criterion_main, Criterion};
use mcm_axiomatic::ExplicitChecker;
use mcm_explore::paper::comparison_tests;
use mcm_explore::{Exploration, Relation};
use mcm_models::named;
use std::hint::black_box;

fn bench_pair(c: &mut Criterion) {
    let tests = comparison_tests(true);

    let mut group = c.benchmark_group("pair_comparison");
    let pairs = [
        ("TSO-vs-SC", named::tso(), named::sc()),
        ("TSO-vs-IBM370", named::tso(), named::ibm370()),
        ("RMO-vs-Alpha", named::rmo(), named::alpha()),
        ("TSO-vs-x86-equivalent", named::tso(), named::x86()),
    ];
    for (name, left, right) in pairs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let expl = Exploration::run(
                    vec![left.clone(), right.clone()],
                    tests.clone(),
                    &ExplicitChecker::new(),
                );
                black_box(expl.relation(0, 1) == Relation::Equivalent)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pair);
criterion_main!(benches);
