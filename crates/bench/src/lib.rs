//! Benchmark-only crate; see the `benches/` directory for the paper's
//! experiments (E-numbers refer to the evaluation section):
//!
//! * `fig1_test_a` — checking Figure 1's Test A under TSO/SC/IBM370;
//! * `fig2_templates` — materialising single templates and whole suites;
//! * `fig3_nine_tests` — the nine contrasting tests under each model;
//! * `fig4_exploration` — the §4.2 model-space exploration and lattice;
//! * `canonical_dedup` — the symmetry quotient + verdict-cache engine:
//!   dedup ratios and cold/warm sweep timings;
//! * `pair_comparison` — single model-pair comparisons ("a few seconds"
//!   in the paper);
//! * `checkers` — explicit vs SAT vs monolithic-SAT checker ablation;
//! * `sat_solver` — the CDCL solver on pigeonhole/chain instances;
//! * `tab_corollary1` — Corollary 1 counting vs naive enumeration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
