//! Properties of the verdict-log format:
//!
//! * any sequence of appended batches reads back exactly, across a
//!   writer reopen;
//! * a log truncated at *every* byte offset opens without panicking,
//!   yielding a prefix of the written records — and whenever the cut
//!   lands mid-frame, a recoverable tail error, never a wrong verdict;
//! * compaction preserves the live record set exactly (last write wins)
//!   and is idempotent.

use mcm_store::log::{read_log, LogWriter, Record, HEADER_LEN};
use mcm_store::{compact, CheckpointFile};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mcm-store-prop-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.log",
        std::process::id(),
        NEXT_FILE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (0u64..50, 0u64..50, proptest::bool::ANY).prop_map(|(model_fp, test_fp, allowed)| Record {
        model_fp,
        test_fp,
        allowed,
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Record>>> {
    proptest::collection::vec(
        proptest::collection::vec(record_strategy(), 0..12),
        0..6,
    )
}

fn write_batches(path: &PathBuf, batches: &[Vec<Record>]) {
    let _ = std::fs::remove_file(path);
    let (_, mut writer) = LogWriter::append(path).unwrap();
    for batch in batches {
        writer.append_batch(batch).unwrap();
    }
}

/// Last write wins per `(model_fp, test_fp)` key.
fn live_map(records: &[Record]) -> std::collections::BTreeMap<(u64, u64), bool> {
    records
        .iter()
        .map(|r| ((r.model_fp, r.test_fp), r.allowed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_batches_roundtrip_across_reopen(batches in batches_strategy()) {
        let path = temp_path("roundtrip");
        write_batches(&path, &batches);
        let flat: Vec<Record> = batches.iter().flatten().copied().collect();
        let back = read_log(&path).unwrap();
        prop_assert!(back.tail.is_none());
        prop_assert_eq!(&back.records, &flat);
        // Reopening for append sees the same records and appending more
        // extends, never rewrites.
        let (contents, mut writer) = LogWriter::append(&path).unwrap();
        prop_assert_eq!(&contents.records, &flat);
        let extra = Record { model_fp: 999, test_fp: 999, allowed: true };
        writer.append_batch(&[extra]).unwrap();
        drop(writer);
        let again = read_log(&path).unwrap();
        let mut expected = flat.clone();
        expected.push(extra);
        prop_assert_eq!(again.records, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_every_offset_yields_a_clean_prefix(batches in batches_strategy()) {
        let path = temp_path("truncate");
        write_batches(&path, &batches);
        let full = std::fs::read(&path).unwrap();
        let flat: Vec<Record> = batches.iter().flatten().copied().collect();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            // Must never panic and never invent or corrupt a verdict.
            let back = read_log(&path).unwrap();
            prop_assert!(
                back.records.len() <= flat.len(),
                "cut at {cut} produced extra records"
            );
            prop_assert_eq!(
                &back.records[..],
                &flat[..back.records.len()],
                "cut at {} is not a prefix", cut
            );
            prop_assert!(back.valid_bytes <= cut as u64);
            if cut < full.len() && (cut as u64) < HEADER_LEN {
                // Inside the header: zero records, and (unless empty)
                // a reported truncation.
                prop_assert_eq!(back.records.len(), 0);
                prop_assert_eq!(back.tail.is_some(), cut > 0);
            } else if back.valid_bytes < cut as u64 {
                // Cut landed mid-frame: the ignored tail must be reported.
                prop_assert!(back.tail.is_some(), "silent tail drop at cut {}", cut);
            } else {
                // Cut landed on a frame boundary: clean open.
                prop_assert!(back.tail.is_none());
            }
            // The log stays writable after recovery.
            let (_, mut writer) = LogWriter::append(&path).unwrap();
            writer.append_batch(&[Record { model_fp: 1, test_fp: 1, allowed: false }]).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_the_live_set(batches in batches_strategy()) {
        let path = temp_path("compact");
        write_batches(&path, &batches);
        let flat: Vec<Record> = batches.iter().flatten().copied().collect();
        let before = live_map(&flat);
        let stats = compact(&path).unwrap();
        let back = read_log(&path).unwrap();
        prop_assert!(back.tail.is_none());
        prop_assert_eq!(live_map(&back.records), before);
        prop_assert_eq!(back.records.len() as u64, stats.records_out);
        // No duplicate keys remain.
        let keys: std::collections::BTreeSet<_> = back.records.iter().map(Record::key).collect();
        prop_assert_eq!(keys.len(), back.records.len());
        // Idempotent: compacting a compacted log is byte-identical.
        let bytes_once = std::fs::read(&path).unwrap();
        compact(&path).unwrap();
        prop_assert_eq!(std::fs::read(&path).unwrap(), bytes_once);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_truncation_never_yields_a_wrong_checkpoint(
        kept in 0u64..130,
        fps in proptest::collection::vec(0u64..1000, 1..4),
    ) {
        use mcm_explore::{StreamCheckpoint, SweepStats, VerdictVector};
        use mcm_gen::StreamBounds;
        use mcm_store::SweepMeta;
        let rows = fps.len();
        let ckpt = CheckpointFile {
            meta: SweepMeta {
                bounds: StreamBounds::default(),
                limit: None,
                shard: None,
                canonicalize: false,
                stream_chunk: 64,
            },
            state: StreamCheckpoint {
                tests_streamed: kept + 7,
                tests_kept: kept,
                model_fps: fps,
                row_verdicts: (0..rows)
                    .map(|i| {
                        let mut row = VerdictVector::new(0);
                        for j in 0..kept {
                            row.push((i as u64 + j).is_multiple_of(2));
                        }
                        row
                    })
                    .collect(),
                stats: SweepStats::default(),
            },
        };
        let path = temp_path("ckpt").with_extension("ckpt");
        ckpt.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        prop_assert_eq!(CheckpointFile::load(&path).unwrap().unwrap(), ckpt);
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            // All-or-nothing: a truncated checkpoint is an error, never
            // a silently shorter sweep state.
            prop_assert!(
                CheckpointFile::load(&path).is_err(),
                "truncation at {} accepted", cut
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
