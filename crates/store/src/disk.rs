//! [`DiskCache`]: the verdict cache with a durable tier underneath.
//!
//! Opening a `DiskCache` replays the verdict log into a fresh
//! [`VerdictCache`] (those entries count as *disk-tier* hits when a
//! sweep uses them) and installs a [`DurableSink`] so every batch of
//! fresh verdicts the cache absorbs is appended to the log as one
//! checksummed frame. The write path is an optimization, never a
//! correctness dependency: append errors are counted and the in-RAM
//! cache keeps serving; torn tails from a crash are shed on the next
//! open.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mcm_explore::{DurableSink, VerdictCache};

use crate::log::{LogWriter, Record};

/// Counters describing a [`DiskCache`]'s life so far.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Records replayed from the log when the cache opened.
    pub hydrated: u64,
    /// Fresh records appended to the log since opening.
    pub appended: u64,
    /// Frames flushed (one per batch of fresh verdicts).
    pub flushes: u64,
    /// Append failures (counted, not propagated — the RAM tier keeps
    /// serving).
    pub write_errors: u64,
    /// Current log size in bytes.
    pub bytes: u64,
    /// Whether the open recovered from a torn/corrupt tail.
    pub recovered_tail: bool,
}

impl StoreStats {
    /// The counters as stable `(name, value)` pairs for reports and
    /// `/statsz` (the boolean renders as 0/1).
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("hydrated", self.hydrated),
            ("appended", self.appended),
            ("flushes", self.flushes),
            ("write_errors", self.write_errors),
            ("bytes", self.bytes),
            ("recovered_tail", u64::from(self.recovered_tail)),
        ]
    }
}

/// The write half shared between the cache (as its [`DurableSink`]) and
/// the owning [`DiskCache`]. Holds only the log writer and counters —
/// never the cache — so there is no `Arc` cycle.
#[derive(Debug)]
struct SinkInner {
    writer: Mutex<LogWriter>,
    appended: AtomicU64,
    flushes: AtomicU64,
    write_errors: AtomicU64,
}

impl SinkInner {
    fn bytes(&self) -> u64 {
        self.writer.lock().expect("store writer lock poisoned").bytes()
    }
}

impl DurableSink for SinkInner {
    fn persist(&self, batch: &[((u64, u64), bool)]) {
        if batch.is_empty() {
            return;
        }
        let timer = mcm_obs::Stopwatch::start();
        let records: Vec<Record> = batch
            .iter()
            .map(|&((model_fp, test_fp), allowed)| Record {
                model_fp,
                test_fp,
                allowed,
            })
            .collect();
        let mut writer = self.writer.lock().expect("store writer lock poisoned");
        match writer.append_batch(&records) {
            Ok(()) => {
                self.appended
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                self.flushes.fetch_add(1, Ordering::Relaxed);
                if mcm_obs::enabled() {
                    timer.record(&mcm_obs::metrics::histogram("mcm_store_flush_us", &[]));
                    mcm_obs::metrics::gauge("mcm_store_bytes", &[("log", "live")])
                        .set(i64::try_from(writer.bytes()).unwrap_or(i64::MAX));
                }
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for SinkInner {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; crash tolerance comes
        // from the frame checksums, not from this sync.
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.sync();
        }
    }
}

/// A [`VerdictCache`] whose contents survive the process: hydrated from
/// an append-only verdict log on open, written through to it batch by
/// batch. Hand [`DiskCache::cache`] to the engine exactly like a plain
/// cache.
#[derive(Debug)]
pub struct DiskCache {
    cache: Arc<VerdictCache>,
    sink: Arc<SinkInner>,
    path: PathBuf,
    hydrated: u64,
    recovered_tail: bool,
}

impl DiskCache {
    /// Opens (or creates) the verdict log at `path` and builds a cache
    /// hydrated with its live records. The log's intact prefix always
    /// loads; a torn tail is shed and noted in [`StoreStats`].
    pub fn open(path: &Path) -> io::Result<DiskCache> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let (contents, writer) = LogWriter::append(path)?;
        let cache = Arc::new(VerdictCache::new());
        let hydrated = contents.records.len() as u64;
        // Log order means later (fresher) duplicates overwrite earlier
        // ones during hydration, matching last-write-wins compaction.
        cache.hydrate(contents.records.iter().map(|r| (r.key(), r.allowed)));
        let sink = Arc::new(SinkInner {
            writer: Mutex::new(writer),
            appended: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        });
        assert!(
            cache.set_sink(sink.clone() as Arc<dyn DurableSink>),
            "a freshly built cache has no sink yet"
        );
        if mcm_obs::enabled() {
            mcm_obs::metrics::gauge("mcm_store_bytes", &[("log", "live")])
                .set(i64::try_from(sink.bytes()).unwrap_or(i64::MAX));
        }
        Ok(DiskCache {
            cache,
            sink,
            path: path.to_path_buf(),
            hydrated,
            recovered_tail: contents.tail.is_some(),
        })
    }

    /// The cache to sweep with — share it with the engine via `clone`.
    #[must_use]
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// The log path this cache persists to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Forces appended frames to stable storage now (also attempted on
    /// drop).
    pub fn sync(&self) -> io::Result<()> {
        self.sink
            .writer
            .lock()
            .expect("store writer lock poisoned")
            .sync()
    }

    /// A snapshot of the store's counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hydrated: self.hydrated,
            appended: self.sink.appended.load(Ordering::Relaxed),
            flushes: self.sink.flushes.load(Ordering::Relaxed),
            write_errors: self.sink.write_errors.load(Ordering::Relaxed),
            bytes: self.sink.bytes(),
            recovered_tail: self.recovered_tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcm-store-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    #[test]
    fn verdicts_survive_a_reopen_as_disk_tier_hits() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let store = DiskCache::open(&path).unwrap();
            store.cache().insert((11, 101), true);
            store.cache().insert((22, 101), false);
            let stats = store.stats();
            assert_eq!(stats.hydrated, 0);
            assert_eq!(stats.appended, 2);
            assert_eq!(stats.flushes, 2);
            assert_eq!(stats.write_errors, 0);
            // First-process lookups are RAM-tier.
            let row = store.cache().get_row_tiered(&[11, 22], 101);
            assert_eq!((row.hits_ram, row.hits_disk), (2, 0));
        }
        let store = DiskCache::open(&path).unwrap();
        let stats = store.stats();
        assert_eq!(stats.hydrated, 2);
        assert_eq!(stats.appended, 0);
        assert!(!stats.recovered_tail);
        let row = store.cache().get_row_tiered(&[11, 22], 101);
        assert_eq!(row.verdicts, vec![Some(true), Some(false)]);
        assert_eq!(
            (row.hits_ram, row.hits_disk),
            (0, 2),
            "hydrated entries answer from the disk tier"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn known_verdicts_are_not_reappended() {
        let path = temp_path("dedupe");
        let _ = std::fs::remove_file(&path);
        {
            let store = DiskCache::open(&path).unwrap();
            store.cache().merge([((1, 2), true)]);
            store.cache().merge([((1, 2), true)]);
            assert_eq!(store.stats().appended, 1, "duplicate write-throughs skipped");
        }
        {
            let store = DiskCache::open(&path).unwrap();
            // Re-learning a hydrated verdict must not grow the log either.
            store.cache().merge([((1, 2), true)]);
            assert_eq!(store.stats().appended, 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_log_still_opens_and_keeps_accepting_writes() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = DiskCache::open(&path).unwrap();
            store.cache().insert((5, 50), true);
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x77; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskCache::open(&path).unwrap();
        assert!(store.stats().recovered_tail);
        assert_eq!(store.stats().hydrated, 1);
        store.cache().insert((6, 60), false);
        drop(store);
        let store = DiskCache::open(&path).unwrap();
        assert_eq!(store.stats().hydrated, 2);
        assert!(!store.stats().recovered_tail);
        std::fs::remove_file(&path).unwrap();
    }
}
