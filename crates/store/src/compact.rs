//! Log compaction: rewrite a verdict log down to its live record set.
//!
//! The append-only log keeps every write, so a long-lived store
//! accumulates duplicate keys (re-confirmed verdicts from later sweeps).
//! Compaction replays the log with last-write-wins semantics and
//! atomically replaces the file with one holding exactly the live set,
//! in first-seen key order — a deterministic function of the input log,
//! so compacting twice is a no-op.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::log::{read_log, write_atomic, Record};

/// What a [`compact`] run did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactStats {
    /// Records read from the old log (including duplicates).
    pub records_in: u64,
    /// Live records written to the new log.
    pub records_out: u64,
    /// Log size before, in bytes (valid prefix only).
    pub bytes_before: u64,
    /// Log size after, in bytes.
    pub bytes_after: u64,
    /// Whether the old log carried a torn/corrupt tail that compaction
    /// dropped.
    pub dropped_tail: bool,
}

/// Collapses `records` to the live set: last write wins per key, emitted
/// in first-seen key order.
pub(crate) fn live_set(records: &[Record]) -> Vec<Record> {
    let mut index: HashMap<(u64, u64), usize> = HashMap::with_capacity(records.len());
    let mut live: Vec<Record> = Vec::new();
    for record in records {
        match index.entry(record.key()) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                live[*slot.get()].allowed = record.allowed;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(live.len());
                live.push(*record);
            }
        }
    }
    live
}

/// Compacts the verdict log at `path` in place (via an atomic
/// rename-over). A missing log compacts to a valid empty log. The
/// rewrite also upgrades the file to the current format version and
/// sheds any torn tail.
pub fn compact(path: &Path) -> io::Result<CompactStats> {
    let timer = mcm_obs::Stopwatch::start();
    let contents = read_log(path)?;
    let live = live_set(&contents.records);
    let bytes_after = write_atomic(path, &live)?;
    let stats = CompactStats {
        records_in: contents.records.len() as u64,
        records_out: live.len() as u64,
        bytes_before: contents.valid_bytes,
        bytes_after,
        dropped_tail: contents.tail.is_some(),
    };
    if mcm_obs::enabled() {
        timer.record(&mcm_obs::metrics::histogram("mcm_store_compact_us", &[]));
        mcm_obs::metrics::gauge("mcm_store_bytes", &[("log", "compacted")])
            .set(i64::try_from(bytes_after).unwrap_or(i64::MAX));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcm-store-compact-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    fn rec(model_fp: u64, test_fp: u64, allowed: bool) -> Record {
        Record {
            model_fp,
            test_fp,
            allowed,
        }
    }

    #[test]
    fn compaction_keeps_the_live_set_last_write_wins() {
        let path = temp_path("live-set");
        let _ = std::fs::remove_file(&path);
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer
            .append_batch(&[rec(1, 10, true), rec(2, 20, false)])
            .unwrap();
        writer
            .append_batch(&[rec(1, 10, false), rec(3, 30, true), rec(2, 20, false)])
            .unwrap();
        drop(writer);
        let stats = compact(&path).unwrap();
        assert_eq!(stats.records_in, 5);
        assert_eq!(stats.records_out, 3);
        assert!(stats.bytes_after < stats.bytes_before);
        assert!(!stats.dropped_tail);
        let back = read_log(&path).unwrap();
        assert_eq!(
            back.records,
            vec![rec(1, 10, false), rec(2, 20, false), rec(3, 30, true)],
            "first-seen key order, last-written verdict"
        );
        // Idempotent: a second compaction changes nothing.
        let again = compact(&path).unwrap();
        assert_eq!(again.records_in, again.records_out);
        assert_eq!(again.bytes_before, again.bytes_after);
        assert_eq!(read_log(&path).unwrap().records, back.records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_a_torn_tail_and_missing_logs_compact_to_empty() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer.append_batch(&[rec(7, 70, true)]).unwrap();
        drop(writer);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xab; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let stats = compact(&path).unwrap();
        assert!(stats.dropped_tail);
        assert_eq!(stats.records_out, 1);
        assert!(read_log(&path).unwrap().tail.is_none());
        std::fs::remove_file(&path).unwrap();

        let missing = temp_path("missing");
        let _ = std::fs::remove_file(&missing);
        let stats = compact(&missing).unwrap();
        assert_eq!((stats.records_in, stats.records_out), (0, 0));
        assert!(read_log(&missing).unwrap().records.is_empty());
        std::fs::remove_file(&missing).unwrap();
    }
}
