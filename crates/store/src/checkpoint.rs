//! Checkpoint files: resumable streaming-sweep state on disk.
//!
//! A checkpoint is the engine's [`StreamCheckpoint`] (cursor, verdict
//! rows, counters) plus a [`SweepMeta`] describing the sweep it belongs
//! to — stream bounds, limit, shard, engine knobs. On `--resume`, the
//! loader hands both back; the caller compares the meta against the
//! sweep it is about to run and rejects a mismatched checkpoint instead
//! of silently producing a lattice stitched from two different sweeps.
//!
//! The file is a single whole-payload-checksummed blob (layout pinned in
//! `docs/STORE_FORMAT.md`): unlike the verdict log there is no notion of
//! a usable prefix — a checkpoint is either exactly what was saved or
//! rejected. Saves go through a `.tmp` sibling and an atomic rename, so
//! a crash mid-save leaves the previous checkpoint intact.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use mcm_explore::{StreamCheckpoint, SweepStats, VerdictVector};
use mcm_gen::{Shard, StreamBounds};

use crate::bytes::{fnv1a, put_bool, put_u32, put_u64, put_u8, Reader};

/// First 8 bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"MCMCKPT\0";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// The identity of the sweep a checkpoint was taken from. Everything
/// that shapes the deterministic test stream (and therefore the meaning
/// of the cursor) lives here; resume must run with an identical meta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepMeta {
    /// Leader-stream enumeration bounds.
    pub bounds: StreamBounds,
    /// `--limit`: cap on tests taken from the stream, if any.
    pub limit: Option<u64>,
    /// `--shard i/n` partition the sweep ran under, if any.
    pub shard: Option<Shard>,
    /// Whether the engine canonicalized per chunk.
    pub canonicalize: bool,
    /// Tests materialized per chunk — checkpoints land on chunk
    /// boundaries, so the cursor is only meaningful at the same chunking.
    pub stream_chunk: u64,
}

/// A deserialized checkpoint: sweep identity plus resumable state.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointFile {
    /// Which sweep this checkpoint belongs to.
    pub meta: SweepMeta,
    /// The engine state to resume from.
    pub state: StreamCheckpoint,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn encode_stats(out: &mut Vec<u8>, stats: &SweepStats) {
    for (_, value) in stats.counters() {
        put_u64(out, value);
    }
    let sat = &stats.sat;
    for value in [
        sat.decisions,
        sat.propagations,
        sat.conflicts,
        sat.restarts,
        sat.learnt_clauses,
    ] {
        put_u64(out, value);
    }
    let batch = &stats.batch;
    for value in [
        batch.rows,
        batch.models_checked,
        batch.model_groups,
        batch.shared_candidates,
        batch.group_evals,
        batch.assumption_solves,
    ] {
        put_u64(out, value);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Option<SweepStats> {
    let mut stats = SweepStats {
        total_pairs: r.u64()?,
        unique_pairs: r.u64()?,
        cache_hits: r.u64()?,
        cache_hits_disk: r.u64()?,
        checker_calls: r.u64()?,
        canonical_tests: usize::try_from(r.u64()?).ok()?,
        distinct_models: usize::try_from(r.u64()?).ok()?,
        tests_streamed: r.u64()?,
        peak_batch: usize::try_from(r.u64()?).ok()?,
        semantic_merged_models: usize::try_from(r.u64()?).ok()?,
        prefilter_groups: r.u64()?,
        prefilter_saved_calls: r.u64()?,
        ..SweepStats::default()
    };
    stats.sat.decisions = r.u64()?;
    stats.sat.propagations = r.u64()?;
    stats.sat.conflicts = r.u64()?;
    stats.sat.restarts = r.u64()?;
    stats.sat.learnt_clauses = r.u64()?;
    stats.batch.rows = r.u64()?;
    stats.batch.models_checked = r.u64()?;
    stats.batch.model_groups = r.u64()?;
    stats.batch.shared_candidates = r.u64()?;
    stats.batch.group_evals = r.u64()?;
    stats.batch.assumption_solves = r.u64()?;
    Some(stats)
}

fn encode_payload(ckpt: &CheckpointFile) -> Vec<u8> {
    let mut out = Vec::new();
    let meta = &ckpt.meta;
    put_u64(&mut out, meta.bounds.max_accesses_per_thread as u64);
    put_u64(&mut out, meta.bounds.threads as u64);
    put_u8(&mut out, meta.bounds.max_locs);
    put_bool(&mut out, meta.bounds.include_fences);
    put_bool(&mut out, meta.bounds.include_deps);
    put_bool(&mut out, meta.limit.is_some());
    put_u64(&mut out, meta.limit.unwrap_or(0));
    put_bool(&mut out, meta.shard.is_some());
    put_u32(&mut out, meta.shard.map_or(0, |s| s.index()));
    put_u32(&mut out, meta.shard.map_or(1, |s| s.count()));
    put_bool(&mut out, meta.canonicalize);
    put_u64(&mut out, meta.stream_chunk);

    let state = &ckpt.state;
    put_u64(&mut out, state.tests_streamed);
    put_u64(&mut out, state.tests_kept);
    put_u32(
        &mut out,
        u32::try_from(state.model_fps.len()).expect("model count fits u32"),
    );
    for &fp in &state.model_fps {
        put_u64(&mut out, fp);
    }
    put_u32(
        &mut out,
        u32::try_from(state.row_verdicts.len()).expect("row count fits u32"),
    );
    for row in &state.row_verdicts {
        put_u64(&mut out, row.len() as u64);
        let words = row.words();
        put_u32(&mut out, u32::try_from(words.len()).expect("word count fits u32"));
        for &w in words {
            put_u64(&mut out, w);
        }
    }
    encode_stats(&mut out, &state.stats);
    out
}

fn decode_payload(payload: &[u8]) -> Option<CheckpointFile> {
    let mut r = Reader::new(payload);
    let bounds = StreamBounds {
        max_accesses_per_thread: usize::try_from(r.u64()?).ok()?,
        threads: usize::try_from(r.u64()?).ok()?,
        max_locs: r.u8()?,
        include_fences: r.bool()?,
        include_deps: r.bool()?,
    };
    let limit = { let some = r.bool()?; let v = r.u64()?; some.then_some(v) };
    let shard = {
        let some = r.bool()?;
        let index = r.u32()?;
        let count = r.u32()?;
        if some {
            Some(Shard::new(index, count)?)
        } else {
            None
        }
    };
    let canonicalize = r.bool()?;
    let stream_chunk = r.u64()?;
    let tests_streamed = r.u64()?;
    let tests_kept = r.u64()?;
    let model_count = r.u32()? as usize;
    let mut model_fps = Vec::with_capacity(model_count);
    for _ in 0..model_count {
        model_fps.push(r.u64()?);
    }
    let row_count = r.u32()? as usize;
    if row_count != model_count {
        return None;
    }
    let mut row_verdicts = Vec::with_capacity(row_count);
    for _ in 0..row_count {
        let len = usize::try_from(r.u64()?).ok()?;
        if len as u64 != tests_kept {
            return None;
        }
        let word_count = r.u32()? as usize;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.u64()?);
        }
        row_verdicts.push(VerdictVector::from_words(words, len)?);
    }
    let stats = decode_stats(&mut r)?;
    if r.remaining() != 0 {
        return None;
    }
    Some(CheckpointFile {
        meta: SweepMeta {
            bounds,
            limit,
            shard,
            canonicalize,
            stream_chunk,
        },
        state: StreamCheckpoint {
            tests_streamed,
            tests_kept,
            model_fps,
            row_verdicts,
            stats,
        },
    })
}

impl CheckpointFile {
    /// Atomically writes the checkpoint to `path` (build in a `.tmp`
    /// sibling, fsync, rename over) — a crash mid-save leaves the
    /// previous checkpoint readable.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let payload = encode_payload(self);
        let mut out = Vec::with_capacity(12 + payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        let checksum = fnv1a(&payload);
        out.extend_from_slice(&payload);
        put_u64(&mut out, checksum);
        let mut file_name = path
            .file_name()
            .ok_or_else(|| invalid(format!("{} has no file name", path.display())))?
            .to_os_string();
        file_name.push(".tmp");
        let tmp = path.with_file_name(file_name);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&out)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads the checkpoint at `path`. A missing file is `Ok(None)` —
    /// the cold-start case for `--resume` pointing at a checkpoint that
    /// was never written. Anything present but unreadable (foreign file,
    /// newer version, failed checksum, inconsistent structure) is a hard
    /// [`io::ErrorKind::InvalidData`] error: a damaged checkpoint must
    /// not silently degrade to a cold start.
    pub fn load(path: &Path) -> io::Result<Option<CheckpointFile>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        if bytes.len() < 12 + 8 || bytes[..8] != MAGIC {
            return Err(invalid(format!(
                "{} is not an mcm-store checkpoint",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
        if version == 0 || version > VERSION {
            return Err(invalid(format!(
                "{} has checkpoint version {version}, this build reads <= {VERSION}",
                path.display()
            )));
        }
        let payload = &bytes[12..bytes.len() - 8];
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - 8..].try_into().expect("8 trailer bytes"),
        );
        if fnv1a(payload) != stored {
            return Err(invalid(format!(
                "{} failed its checksum (torn or corrupt checkpoint)",
                path.display()
            )));
        }
        decode_payload(payload)
            .map(Some)
            .ok_or_else(|| invalid(format!("{} has inconsistent checkpoint structure", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcm-store-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.ckpt", std::process::id()))
    }

    fn sample() -> CheckpointFile {
        let mut stats = SweepStats {
            total_pairs: 1000,
            unique_pairs: 400,
            cache_hits: 37,
            cache_hits_disk: 12,
            checker_calls: 363,
            canonical_tests: 90,
            distinct_models: 5,
            tests_streamed: 130,
            peak_batch: 64,
            semantic_merged_models: 1,
            prefilter_groups: 20,
            prefilter_saved_calls: 11,
            ..SweepStats::default()
        };
        stats.sat.decisions = 12345;
        stats.sat.conflicts = 99;
        stats.batch.rows = 90;
        stats.batch.assumption_solves = 7;
        CheckpointFile {
            meta: SweepMeta {
                bounds: StreamBounds {
                    max_accesses_per_thread: 3,
                    threads: 2,
                    max_locs: 2,
                    include_fences: true,
                    include_deps: false,
                },
                limit: Some(130),
                shard: Shard::new(1, 3),
                canonicalize: false,
                stream_chunk: 64,
            },
            state: StreamCheckpoint {
                tests_streamed: 130,
                tests_kept: 90,
                model_fps: vec![0xaaaa, 0xbbbb, 0xcccc],
                row_verdicts: (0..3)
                    .map(|i| {
                        let mut row = VerdictVector::new(0);
                        for j in 0..90u64 {
                            row.push((i + j) % 3 == 0);
                        }
                        row
                    })
                    .collect(),
                stats,
            },
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        let path = temp_path("roundtrip");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let back = CheckpointFile::load(&path).unwrap().expect("file exists");
        assert_eq!(back, ckpt);
        // Saving again over the old file works (rename-over).
        ckpt.save(&path).unwrap();
        assert_eq!(CheckpointFile::load(&path).unwrap().unwrap(), ckpt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_a_cold_start_not_an_error() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert_eq!(CheckpointFile::load(&path).unwrap(), None);
    }

    #[test]
    fn damaged_checkpoints_are_rejected_loudly() {
        let path = temp_path("damaged");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Bit flip in the payload → checksum failure.
        let mut flipped = good.clone();
        flipped[40] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(
            CheckpointFile::load(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Truncation → checksum failure (whole-payload blob, no prefix).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(
            CheckpointFile::load(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Foreign file.
        std::fs::write(&path, b"not a checkpoint at all, sorry").unwrap();
        assert_eq!(
            CheckpointFile::load(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_file(&path).unwrap();
    }
}
