//! # mcm-store
//!
//! Disk persistence for the verdict corpus: the durable tier under
//! `mcm-explore`'s RAM [`VerdictCache`](mcm_explore::VerdictCache), and
//! checkpoint/resume state for streaming sweeps. Zero external
//! dependencies, in the house style of `mcm-core::json` — the on-disk
//! formats are hand-rolled little-endian frames with explicit checksums,
//! pinned in `docs/STORE_FORMAT.md`.
//!
//! * [`log`] — the append-only, fingerprint-keyed verdict log:
//!   length-prefixed frames of `(model_fp, test_fp) → verdict` records,
//!   each frame checksummed, behind a versioned header. Torn tails from
//!   a crash are detected by checksum and cleanly ignored on open.
//! * [`mod@compact`] — rewrites a log to its live record set (duplicates
//!   dropped, last write wins) with an atomic rename-over.
//! * [`mod@merge`] — combines the logs of N sharded sweep processes into
//!   one corpus.
//! * [`disk`] — [`DiskCache`]: a [`VerdictCache`](mcm_explore::VerdictCache)
//!   hydrated from a log on open and writing fresh verdicts through to it
//!   on every batch boundary, so a warm cache survives process restarts.
//! * [`checkpoint`] — serializes
//!   [`StreamCheckpoint`](mcm_explore::StreamCheckpoint) (plus the sweep
//!   identity it belongs to) so `mcm explore --stream --checkpoint FILE`
//!   can be killed and resumed with `--resume FILE`, bit-identically.
//!
//! ## Example
//!
//! ```
//! use mcm_store::log::{LogWriter, Record};
//!
//! let path = std::env::temp_dir().join("mcm-store-doc-example.log");
//! let _ = std::fs::remove_file(&path);
//! let (contents, mut writer) = LogWriter::append(&path).unwrap();
//! assert!(contents.records.is_empty());
//! writer
//!     .append_batch(&[Record { model_fp: 1, test_fp: 2, allowed: true }])
//!     .unwrap();
//! drop(writer);
//! let reopened = mcm_store::log::read_log(&path).unwrap();
//! assert_eq!(reopened.records.len(), 1);
//! assert!(reopened.tail.is_none());
//! std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
pub mod checkpoint;
pub mod compact;
pub mod disk;
pub mod log;
pub mod merge;

pub use checkpoint::{CheckpointFile, SweepMeta};
pub use compact::{compact, CompactStats};
pub use disk::{DiskCache, StoreStats};
pub use log::{read_log, LogContents, LogWriter, Record, TailError};
pub use merge::{merge, MergeStats};
