//! The append-only verdict log: the durable tier of the verdict cache.
//!
//! A log is a versioned header followed by zero or more *frames*, each a
//! length-prefixed, checksummed batch of fixed-width records (the exact
//! byte layout is pinned in `docs/STORE_FORMAT.md`):
//!
//! ```text
//! header:  "MCMVLOG\0" (8 bytes) · version u32-le         = 12 bytes
//! frame:   payload_len u32-le · payload · fnv1a(payload) u64-le
//! payload: record_count u32-le · record_count × record
//! record:  model_fp u64-le · test_fp u64-le · allowed u8   = 17 bytes
//! ```
//!
//! Appending is crash-tolerant by construction: a frame becomes visible
//! only once its checksum lands, so a reader that hits a torn or
//! truncated tail verifies nothing after the last complete frame and
//! reports the tail as recoverable — every record before it is intact.
//! [`LogWriter::append`] then truncates the torn bytes so new frames butt
//! against valid data. Duplicate keys are allowed (later frames win);
//! [`mod@crate::compact`] rewrites the live set.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::bytes::{fnv1a, put_u32, put_u64, put_u8, Reader};

/// First 8 bytes of every verdict log.
pub const MAGIC: [u8; 8] = *b"MCMVLOG\0";
/// Current format version. Readers reject logs written by a *newer*
/// version (forward compatibility is not promised); older versions are
/// upgraded on compaction.
pub const VERSION: u32 = 1;
/// Header length: magic plus version.
pub const HEADER_LEN: u64 = 12;
/// Encoded length of one record.
pub const RECORD_LEN: usize = 17;
/// Records per frame written by [`write_atomic`] — bounds frame size (and
/// the blast radius of a torn tail) to ~1 MiB without making tiny frames.
const ATOMIC_FRAME_RECORDS: usize = 65_536;

/// One persisted verdict: the cache key plus the boolean outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Record {
    /// The model-formula fingerprint
    /// ([`mcm_explore::VerdictCache::model_fingerprint`]).
    pub model_fp: u64,
    /// The canonical-orbit test fingerprint (`mcm_gen::canon::fingerprint`).
    pub test_fp: u64,
    /// The memoized verdict: is the outcome allowed?
    pub allowed: bool,
}

impl Record {
    /// The cache key this record carries.
    #[must_use]
    pub fn key(&self) -> (u64, u64) {
        (self.model_fp, self.test_fp)
    }
}

/// Why the tail of a log was ignored. Both conditions are *recoverable*:
/// every record before the reported offset is intact, and
/// [`LogWriter::append`] drops the bad tail so the log keeps working.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailError {
    /// The file ended mid-frame (torn write or truncation) at `offset`.
    Truncated {
        /// Byte offset of the first incomplete frame.
        offset: u64,
    },
    /// A complete-looking frame at `offset` failed its checksum or
    /// internal structure check (bit rot, or garbage after a crash).
    Corrupt {
        /// Byte offset of the bad frame.
        offset: u64,
    },
}

impl std::fmt::Display for TailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailError::Truncated { offset } => {
                write!(f, "log tail truncated mid-frame at byte {offset}")
            }
            TailError::Corrupt { offset } => {
                write!(f, "log frame at byte {offset} failed its checksum")
            }
        }
    }
}

/// Everything a read of a log recovered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogContents {
    /// The records of every intact frame, in file order (duplicates kept;
    /// later records supersede earlier ones for the same key).
    pub records: Vec<Record>,
    /// Bytes of the file that parsed cleanly — the boundary a writer
    /// truncates to before appending.
    pub valid_bytes: u64,
    /// `None` when the file ended exactly on a frame boundary; otherwise
    /// why (and where) the tail was ignored.
    pub tail: Option<TailError>,
}

impl LogContents {
    fn empty() -> Self {
        LogContents {
            records: Vec::new(),
            valid_bytes: 0,
            tail: None,
        }
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encodes one frame for `records`.
pub(crate) fn encode_frame(records: &[Record]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + records.len() * RECORD_LEN);
    put_u32(
        &mut payload,
        u32::try_from(records.len()).expect("a frame holds fewer than 2^32 records"),
    );
    for record in records {
        put_u64(&mut payload, record.model_fp);
        put_u64(&mut payload, record.test_fp);
        put_u8(&mut payload, u8::from(record.allowed));
    }
    let mut frame = Vec::with_capacity(4 + payload.len() + 8);
    put_u32(
        &mut frame,
        u32::try_from(payload.len()).expect("frame payloads stay far below 4 GiB"),
    );
    let checksum = fnv1a(&payload);
    frame.extend_from_slice(&payload);
    put_u64(&mut frame, checksum);
    frame
}

/// Parses a frame payload whose checksum already verified. `None` means
/// the payload structure is inconsistent (declared count does not match
/// the byte count, or a verdict byte is not 0/1).
fn decode_payload(payload: &[u8], out: &mut Vec<Record>) -> Option<()> {
    let mut r = Reader::new(payload);
    let count = r.u32()? as usize;
    if r.remaining() != count * RECORD_LEN {
        return None;
    }
    out.reserve(count);
    for _ in 0..count {
        out.push(Record {
            model_fp: r.u64()?,
            test_fp: r.u64()?,
            allowed: r.bool()?,
        });
    }
    Some(())
}

/// Reads a verdict log, tolerating a torn or truncated tail.
///
/// A missing or empty file reads as an empty log. A non-empty file whose
/// header is not a (possibly truncated) `mcm-store` header, or that was
/// written by a newer format version, is a hard [`io::ErrorKind::InvalidData`]
/// error — the store never silently treats someone else's file as its
/// own. Everything after the last intact frame is reported via
/// [`LogContents::tail`] and excluded from [`LogContents::valid_bytes`].
pub fn read_log(path: &Path) -> io::Result<LogContents> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LogContents::empty()),
        Err(e) => return Err(e),
    }
    if bytes.is_empty() {
        return Ok(LogContents::empty());
    }
    if bytes.len() < HEADER_LEN as usize {
        // A prefix of our header (crash during creation) is a recoverable
        // truncation; anything else is not our file.
        if MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Ok(LogContents {
                records: Vec::new(),
                valid_bytes: 0,
                tail: Some(TailError::Truncated { offset: 0 }),
            });
        }
        return Err(invalid(format!("{} is not an mcm-store verdict log", path.display())));
    }
    if bytes[..8] != MAGIC {
        return Err(invalid(format!("{} is not an mcm-store verdict log", path.display())));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version == 0 || version > VERSION {
        return Err(invalid(format!(
            "{} has verdict-log version {version}, this build reads <= {VERSION}",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut tail = None;
    while pos < bytes.len() {
        let frame_start = pos as u64;
        if bytes.len() - pos < 4 {
            tail = Some(TailError::Truncated { offset: frame_start });
            break;
        }
        let payload_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let frame_end = pos + 4 + payload_len + 8;
        if frame_end > bytes.len() {
            tail = Some(TailError::Truncated { offset: frame_start });
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + payload_len];
        let stored = u64::from_le_bytes(
            bytes[pos + 4 + payload_len..frame_end]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a(payload) != stored {
            tail = Some(TailError::Corrupt { offset: frame_start });
            break;
        }
        let before = records.len();
        if decode_payload(payload, &mut records).is_none() {
            records.truncate(before);
            tail = Some(TailError::Corrupt { offset: frame_start });
            break;
        }
        pos = frame_end;
    }
    Ok(LogContents {
        records,
        valid_bytes: pos as u64,
        tail,
    })
}

/// An open verdict log positioned for appending.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl LogWriter {
    /// Opens (or creates) the log at `path` for appending, first reading
    /// everything it already holds. A torn tail reported by the read is
    /// truncated away, so the next frame lands on the valid boundary.
    pub fn append(path: &Path) -> io::Result<(LogContents, LogWriter)> {
        let contents = read_log(path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = contents.valid_bytes;
        file.set_len(bytes)?;
        if bytes == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&MAGIC);
            put_u32(&mut header, VERSION);
            file.write_all(&header)?;
            bytes = HEADER_LEN;
        } else {
            file.seek(SeekFrom::End(0))?;
        }
        Ok((
            contents,
            LogWriter {
                file,
                path: path.to_path_buf(),
                bytes,
            },
        ))
    }

    /// Appends one frame holding `records` (no-op for an empty batch).
    /// The frame is handed to the OS in a single write, so a process
    /// crash leaves either the whole frame or a checksummed-detectable
    /// tear — never a silently half-applied batch.
    pub fn append_batch(&mut self, records: &[Record]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(records);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Bytes the log occupies (header plus intact frames).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Writes `records` to `path` atomically: a fresh log (current
/// [`VERSION`], frames of at most 64 Ki records) is built in a `.tmp`
/// sibling and renamed over the destination, so readers see either the
/// old log or the complete new one. Returns the bytes written.
pub fn write_atomic(path: &Path, records: &[Record]) -> io::Result<u64> {
    let mut file_name = path
        .file_name()
        .ok_or_else(|| invalid(format!("{} has no file name", path.display())))?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    let mut out = Vec::with_capacity(HEADER_LEN as usize + records.len() * (RECORD_LEN + 1));
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    for chunk in records.chunks(ATOMIC_FRAME_RECORDS) {
        out.extend_from_slice(&encode_frame(chunk));
    }
    let bytes = out.len() as u64;
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcm-store-log-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    fn sample(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record {
                model_fp: i * 3 + 1,
                test_fp: i.rotate_left(17) ^ 0xdead,
                allowed: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn write_reopen_roundtrip_across_batches() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (contents, mut writer) = LogWriter::append(&path).unwrap();
        assert!(contents.records.is_empty());
        writer.append_batch(&sample(5)).unwrap();
        writer.append_batch(&[]).unwrap();
        writer.append_batch(&sample(3)).unwrap();
        let bytes = writer.bytes();
        drop(writer);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        let back = read_log(&path).unwrap();
        assert!(back.tail.is_none());
        assert_eq!(back.valid_bytes, bytes);
        let mut expected = sample(5);
        expected.extend(sample(3));
        assert_eq!(back.records, expected);
        // Reopening for append keeps the existing records.
        let (contents, _) = LogWriter::append(&path).unwrap();
        assert_eq!(contents.records, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated_on_reopen() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer.append_batch(&sample(4)).unwrap();
        let valid = writer.bytes();
        drop(writer);
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_frame(&sample(2))[..10]);
        std::fs::write(&path, &bytes).unwrap();
        let back = read_log(&path).unwrap();
        assert_eq!(back.records, sample(4));
        assert_eq!(back.valid_bytes, valid);
        assert_eq!(back.tail, Some(TailError::Truncated { offset: valid }));
        // Reopen-for-append drops the tail and keeps working.
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer.append_batch(&sample(1)).unwrap();
        drop(writer);
        let back = read_log(&path).unwrap();
        assert!(back.tail.is_none());
        let mut expected = sample(4);
        expected.extend(sample(1));
        assert_eq!(back.records, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_is_reported_not_trusted() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer.append_batch(&sample(2)).unwrap();
        writer.append_batch(&sample(6)).unwrap();
        drop(writer);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one verdict byte inside the second frame.
        let second_frame = HEADER_LEN as usize + encode_frame(&sample(2)).len();
        bytes[second_frame + 4 + 4 + 16] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let back = read_log(&path).unwrap();
        assert_eq!(back.records, sample(2), "only the intact frame survives");
        assert_eq!(
            back.tail,
            Some(TailError::Corrupt {
                offset: second_frame as u64
            })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_and_future_files_are_hard_errors() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a verdict log").unwrap();
        assert_eq!(
            read_log(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        put_u32(&mut future, VERSION + 1);
        std::fs::write(&path, &future).unwrap();
        assert_eq!(
            read_log(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_atomic_replaces_the_log_in_one_step() {
        let path = temp_path("atomic");
        let _ = std::fs::remove_file(&path);
        let records = sample(100);
        let bytes = write_atomic(&path, &records).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        let back = read_log(&path).unwrap();
        assert_eq!(back.records, records);
        assert!(back.tail.is_none());
        // No .tmp sibling left behind.
        assert!(!path.with_file_name("atomic.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }
}
