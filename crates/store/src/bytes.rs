//! Little-endian byte (de)serialization shared by the log and checkpoint
//! formats, plus the FNV-1a checksum both use.

/// 64-bit FNV-1a over `bytes` — the frame checksum. Not cryptographic;
/// it detects torn writes and bit rot, which is all the formats need,
/// without pulling in a CRC dependency.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// A cursor over a byte slice whose reads all fail softly: `None` means
/// the input ran out or held an invalid value, so parsers surface one
/// "corrupt" path instead of panicking on malformed files.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn reader_roundtrips_and_fails_softly() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX);
        put_u8(&mut out, 3);
        put_bool(&mut out, true);
        let mut r = Reader::new(&out);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.u8(), Some(3));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "reads past the end fail, not panic");
        let mut bad = Reader::new(&[2]);
        assert_eq!(bad.bool(), None, "non-0/1 booleans are corrupt");
    }
}
