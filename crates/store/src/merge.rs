//! Merging the verdict logs of sharded sweeps.
//!
//! An N-way sharded sweep (`mcm explore --stream --shard i/N --store`)
//! leaves N disjoint-by-construction logs. [`merge`] concatenates their
//! live sets into one destination log so a later unsharded run — or a
//! warm `mcm serve --store-dir` — sees the whole corpus. Inputs are
//! processed in argument order with last-write-wins per key, so merging
//! genuinely-overlapping logs (e.g. re-runs) is also well-defined.

use std::io;
use std::path::Path;

use crate::compact::live_set;
use crate::log::{read_log, write_atomic, Record};

/// What a [`merge`] run did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeStats {
    /// Input logs read.
    pub inputs: u64,
    /// Records read across all inputs (including duplicates).
    pub records_in: u64,
    /// Live records written to the destination.
    pub records_out: u64,
    /// Destination size, in bytes.
    pub bytes_out: u64,
    /// How many inputs carried a torn/corrupt tail (their intact prefix
    /// still merged).
    pub torn_inputs: u64,
}

/// Merges the logs at `inputs` into a fresh log at `dest` (atomic
/// rename-over; `dest` may be one of the inputs or missing). Missing
/// inputs read as empty rather than failing, so a sweep shard that never
/// produced verdicts does not block the merge.
pub fn merge(inputs: &[&Path], dest: &Path) -> io::Result<MergeStats> {
    let mut all: Vec<Record> = Vec::new();
    let mut torn_inputs = 0u64;
    for input in inputs {
        let contents = read_log(input)?;
        torn_inputs += u64::from(contents.tail.is_some());
        all.extend(contents.records);
    }
    let records_in = all.len() as u64;
    let live = live_set(&all);
    let bytes_out = write_atomic(dest, &live)?;
    if mcm_obs::enabled() {
        mcm_obs::metrics::gauge("mcm_store_bytes", &[("log", "merged")])
            .set(i64::try_from(bytes_out).unwrap_or(i64::MAX));
    }
    Ok(MergeStats {
        inputs: inputs.len() as u64,
        records_in,
        records_out: live.len() as u64,
        bytes_out,
        torn_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcm-store-merge-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    fn write_log(name: &str, records: &[Record]) -> PathBuf {
        let path = temp_path(name);
        let _ = std::fs::remove_file(&path);
        let (_, mut writer) = LogWriter::append(&path).unwrap();
        writer.append_batch(records).unwrap();
        path
    }

    fn rec(model_fp: u64, test_fp: u64, allowed: bool) -> Record {
        Record {
            model_fp,
            test_fp,
            allowed,
        }
    }

    #[test]
    fn merge_unions_shards_and_later_inputs_win_overlaps() {
        let a = write_log("shard-a", &[rec(1, 10, true), rec(1, 11, true)]);
        let b = write_log("shard-b", &[rec(1, 12, false), rec(1, 10, false)]);
        let missing = temp_path("shard-missing");
        let _ = std::fs::remove_file(&missing);
        let dest = temp_path("merged");
        let _ = std::fs::remove_file(&dest);
        let stats = merge(&[&a, &b, &missing], &dest).unwrap();
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.records_out, 3);
        assert_eq!(stats.torn_inputs, 0);
        let back = read_log(&dest).unwrap();
        assert_eq!(
            back.records,
            vec![rec(1, 10, false), rec(1, 11, true), rec(1, 12, false)],
            "key 10 overlapped: the later input's verdict wins"
        );
        for p in [a, b, dest] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn merge_may_write_over_one_of_its_inputs() {
        let a = write_log("inplace-a", &[rec(2, 20, true)]);
        let b = write_log("inplace-b", &[rec(2, 21, false)]);
        let stats = merge(&[&a, &b], &a).unwrap();
        assert_eq!(stats.records_out, 2);
        assert_eq!(
            read_log(&a).unwrap().records,
            vec![rec(2, 20, true), rec(2, 21, false)]
        );
        for p in [a, b] {
            std::fs::remove_file(p).unwrap();
        }
    }
}
