//! Properties of the canonicalization pass (§2.3 symmetries):
//!
//! 1. **Idempotence** — canonicalizing a canonical test changes nothing,
//!    and the fingerprint is stable across the round trip;
//! 2. **Verdict preservation** — every model in the paper's class gives
//!    the same verdict to a test and to its canonical form (this is what
//!    makes checking one representative per orbit sound);
//! 3. **Orbit invariance** — mechanically transformed symmetric variants
//!    (thread permutation, location rotation) land in the same orbit.

use mcm_axiomatic::{Checker, ExplicitChecker};
use mcm_core::{
    AddrExpr, Instruction, LitmusTest, Loc, MemoryModel, Outcome, Program, RegExpr, Thread,
    ThreadId,
};
use mcm_gen::{canon, local, template_suite_extended};
use mcm_models::{named, DigitModel};
use proptest::prelude::*;

fn all_generated() -> Vec<LitmusTest> {
    let mut tests = template_suite_extended(true, true).tests;
    for n in 1..=3 {
        tests.push(local::special_chain_contrast_test(n));
    }
    tests
}

fn model_pool() -> Vec<MemoryModel> {
    let mut models = vec![
        named::sc(),
        named::tso(),
        named::pso(),
        named::ibm370(),
        named::rmo(),
        named::alpha(),
    ];
    models.extend(
        ["M1011", "M4031", "M1432", "M4044", "M1014"]
            .iter()
            .map(|n| n.parse::<DigitModel>().unwrap().to_model()),
    );
    models
}

fn rename_loc_in_expr(expr: &RegExpr, map: &dyn Fn(Loc) -> Loc) -> RegExpr {
    match expr {
        RegExpr::Const(v) => RegExpr::Const(*v),
        RegExpr::Reg(r) => RegExpr::Reg(*r),
        RegExpr::LocAddr(l) => RegExpr::LocAddr(map(*l)),
        RegExpr::Add(a, b) => RegExpr::Add(
            Box::new(rename_loc_in_expr(a, map)),
            Box::new(rename_loc_in_expr(b, map)),
        ),
        RegExpr::Sub(a, b) => RegExpr::Sub(
            Box::new(rename_loc_in_expr(a, map)),
            Box::new(rename_loc_in_expr(b, map)),
        ),
    }
}

/// Applies an injective location renaming (same transformation as the
/// workspace's symmetry property test).
fn rename_locations(test: &LitmusTest, map: &dyn Fn(Loc) -> Loc) -> LitmusTest {
    let threads = test
        .program()
        .threads
        .iter()
        .map(|t| Thread {
            instructions: t
                .instructions
                .iter()
                .map(|i| match i {
                    Instruction::Read { addr, dst } => Instruction::Read {
                        addr: match addr {
                            AddrExpr::Loc(l) => AddrExpr::Loc(map(*l)),
                            AddrExpr::Reg(r) => AddrExpr::Reg(*r),
                        },
                        dst: *dst,
                    },
                    Instruction::Write { addr, val } => Instruction::Write {
                        addr: match addr {
                            AddrExpr::Loc(l) => AddrExpr::Loc(map(*l)),
                            AddrExpr::Reg(r) => AddrExpr::Reg(*r),
                        },
                        val: rename_loc_in_expr(val, map),
                    },
                    Instruction::Op { dst, expr } => Instruction::Op {
                        dst: *dst,
                        expr: rename_loc_in_expr(expr, map),
                    },
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    let mut outcome = Outcome::new();
    for &(t, r, v) in test.outcome().constraints() {
        outcome = outcome.constrain(t, r, v);
    }
    LitmusTest::new(test.name(), Program { threads }, outcome)
        .expect("renaming preserves well-formedness")
}

fn swap_threads(test: &LitmusTest) -> LitmusTest {
    let mut threads = test.program().threads.clone();
    threads.reverse();
    let n = test.program().threads.len() as u8;
    let mut outcome = Outcome::new();
    for &(t, r, v) in test.outcome().constraints() {
        outcome = outcome.constrain(ThreadId(n - 1 - t.0), r, v);
    }
    LitmusTest::new(test.name(), Program { threads }, outcome)
        .expect("thread permutation preserves well-formedness")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonicalization_is_idempotent(index in 0usize..1000) {
        let tests = all_generated();
        let test = &tests[index % tests.len()];
        let once = canon::canonicalize(test);
        let twice = canon::canonicalize(&once);
        prop_assert_eq!(once.program(), twice.program(), "program changed: {}", test.name());
        prop_assert_eq!(once.outcome(), twice.outcome(), "outcome changed: {}", test.name());
        prop_assert_eq!(
            canon::fingerprint(test),
            canon::fingerprint(&once),
            "fingerprint unstable: {}", test.name()
        );
    }

    #[test]
    fn canonicalization_preserves_verdicts(
        index in 0usize..1000,
        model_idx in 0usize..11,
    ) {
        let tests = all_generated();
        let test = &tests[index % tests.len()];
        let canonical = canon::canonicalize(test);
        let model = &model_pool()[model_idx];
        let checker = ExplicitChecker::new();
        prop_assert_eq!(
            checker.is_allowed(model, test),
            checker.is_allowed(model, &canonical),
            "canonicalization changed the verdict of {} under {}",
            test.name(),
            model.name()
        );
    }

    #[test]
    fn symmetric_variants_share_an_orbit(
        index in 0usize..1000,
        offset in 1u8..4,
        swap in proptest::bool::ANY,
    ) {
        let tests = all_generated();
        let test = &tests[index % tests.len()];
        let map = move |l: Loc| Loc((l.0 + offset) % 8);
        let mut variant = rename_locations(test, &map);
        if swap {
            variant = swap_threads(&variant);
        }
        prop_assert_eq!(
            canon::fingerprint(test),
            canon::fingerprint(&variant),
            "variant of {} left its orbit",
            test.name()
        );
        prop_assert_eq!(
            canon::canonicalize(test).program(),
            canon::canonicalize(&variant).program(),
            "canonical programs differ for {}",
            test.name()
        );
    }
}

#[test]
fn verdicts_preserved_exhaustively_on_the_suite() {
    // The deterministic backstop: every suite test, three diverse models.
    let checker = ExplicitChecker::new();
    let models = [named::sc(), named::tso(), named::rmo()];
    for test in template_suite_extended(true, false).tests {
        let canonical = canon::canonicalize(&test);
        for model in &models {
            assert_eq!(
                checker.is_allowed(model, &test),
                checker.is_allowed(model, &canonical),
                "verdict changed for {} under {}",
                test.name(),
                model.name()
            );
        }
    }
}
