//! Property: every generated litmus test (template suites with and
//! without dependency/control connectors, the §3.3 chain family) survives
//! a round trip through the text format — print, reparse, compare
//! structurally — and keeps its verdict-relevant shape.

use mcm_core::parse::{parse_litmus, to_source};
use mcm_gen::{local, template_suite_extended};
use proptest::prelude::*;

fn all_generated() -> Vec<mcm_core::LitmusTest> {
    let mut tests = template_suite_extended(true, true).tests;
    for n in 1..=3 {
        tests.push(local::special_chain_contrast_test(n));
    }
    tests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_tests_round_trip(index in 0usize..500) {
        let tests = all_generated();
        let test = &tests[index % tests.len()];
        let source = to_source(test);
        let reparsed = parse_litmus(&source)
            .unwrap_or_else(|e| panic!("{}: {e}\n{source}", test.name()));
        prop_assert_eq!(&reparsed, test, "round trip changed {}", test.name());
    }
}

#[test]
fn every_suite_test_round_trips() {
    // Exhaustive version of the property (the suite is small enough).
    for test in all_generated() {
        let source = to_source(&test);
        let reparsed = parse_litmus(&source)
            .unwrap_or_else(|e| panic!("{}: {e}\n{source}", test.name()));
        assert_eq!(reparsed, test, "round trip changed {}", test.name());
        // The reparsed execution matches too (same events, same deps).
        assert_eq!(reparsed.execution(), test.execution());
    }
}
