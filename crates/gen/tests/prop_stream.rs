//! Properties of the streaming canonical-first enumeration:
//!
//! 1. **Fixed points** — every streamed test is a fixed point of
//!    [`canon::canonical`] (the leader of its own orbit);
//! 2. **Completeness** — on bounds small enough to materialize, the
//!    streamed leader set equals `dedup(raw enumeration)` orbit for
//!    orbit: same fingerprints, no more, no fewer;
//! 3. **Irredundancy** — no two streamed leaders share an orbit.
//!
//! Together these are the soundness argument for sweeping a bounded space
//! through the stream instead of materializing it: the stream visits
//! exactly one representative of every orbit the raw space contains.

use mcm_gen::stream::{self, StreamBounds};
use mcm_gen::{canon, naive};
use proptest::prelude::*;

fn bounds_strategy() -> impl Strategy<Value = StreamBounds> {
    (1usize..=2, 1usize..=2, 1u8..=2, proptest::bool::ANY, proptest::bool::ANY).prop_map(
        |(accesses, threads, locs, fences, deps)| StreamBounds {
            max_accesses_per_thread: accesses,
            threads,
            max_locs: locs,
            include_fences: fences,
            include_deps: deps,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    fn streamed_tests_are_canonical_fixed_points(bounds in bounds_strategy()) {
        for test in stream::leaders(&bounds).take(600) {
            prop_assert!(
                canon::is_leader(&test),
                "{} is not its own canonical form:\n{test}",
                test.name()
            );
        }
    }

    fn streamed_leaders_are_pairwise_distinct_orbits(bounds in bounds_strategy()) {
        let mut fingerprints: Vec<u64> = stream::leaders(&bounds)
            .take(600)
            .map(|t| canon::fingerprint(&t))
            .collect();
        let len = fingerprints.len();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        prop_assert_eq!(fingerprints.len(), len);
    }

    fn stream_equals_dedup_of_materialized_enumeration(
        accesses in 1usize..=2,
        locs in 1u8..=2,
        fences in proptest::bool::ANY,
    ) {
        // The dependency-free slice is the one the materializing baseline
        // can enumerate; compare orbit sets exactly on it.
        let naive_bounds = naive::NaiveBounds {
            max_accesses_per_thread: accesses,
            threads: 2,
            max_locs: locs,
            include_fences: fences,
        };
        let raw = naive::enumerate_tests_raw(&naive_bounds, usize::MAX);
        let mut materialized: Vec<u64> = canon::dedup(&raw).fingerprints;
        materialized.sort_unstable();
        let mut streamed: Vec<u64> = stream::leaders(&StreamBounds::from(&naive_bounds))
            .map(|t| canon::fingerprint(&t))
            .collect();
        streamed.sort_unstable();
        prop_assert_eq!(streamed, materialized);
    }
}
