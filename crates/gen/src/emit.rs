//! Low-level emitter used by the template engine to materialise segments
//! into concrete litmus programs.
//!
//! The emitter owns register allocation (fresh register per read / op, per
//! thread), value allocation (distinct non-zero value per write, per
//! location, so read-from maps are unambiguous) and outcome constraints.

use mcm_core::{
    CoreError, LitmusTest, Loc, Outcome, Program, Reg, RegExpr, ThreadId, Value,
};

use crate::segment::Connector;

/// Handle to a read emitted into the program (for outcome wiring).
#[derive(Clone, Copy, Debug)]
pub struct ReadHandle {
    thread: ThreadId,
    reg: Reg,
}

/// Builds a litmus program thread by thread.
#[derive(Debug, Default)]
pub struct Emitter {
    builder: Option<mcm_core::ProgramBuilder>,
    current_thread: Option<ThreadId>,
    thread_count: u8,
    next_reg: u8,
    next_value: i64,
    outcome: Outcome,
}

impl Emitter {
    /// Creates an empty emitter.
    #[must_use]
    pub fn new() -> Self {
        Emitter {
            builder: Some(Program::builder()),
            current_thread: None,
            thread_count: 0,
            next_reg: 1,
            next_value: 1,
            outcome: Outcome::new(),
        }
    }

    fn with_builder(
        &mut self,
        f: impl FnOnce(mcm_core::ProgramBuilder) -> mcm_core::ProgramBuilder,
    ) {
        let builder = self.builder.take().expect("emitter not finished");
        self.builder = Some(f(builder));
    }

    /// Opens a new thread; subsequent emissions go to it.
    pub fn thread(&mut self) -> ThreadId {
        self.with_builder(mcm_core::ProgramBuilder::thread);
        let tid = ThreadId(self.thread_count);
        self.thread_count += 1;
        self.current_thread = Some(tid);
        // Registers are per-thread in display but globally unique here to
        // keep generated programs easy to read.
        tid
    }

    fn current(&self) -> ThreadId {
        self.current_thread.expect("call thread() first")
    }

    /// Emits `read loc -> fresh_reg` and returns its handle.
    pub fn read(&mut self, loc: Loc) -> ReadHandle {
        let reg = Reg(self.next_reg);
        self.next_reg += 1;
        self.with_builder(|b| b.read(loc, reg));
        ReadHandle {
            thread: self.current(),
            reg,
        }
    }

    /// Emits a read of `loc` whose *address* depends on the earlier read
    /// `src` (the `t = r - r + &loc; read [t]` idiom).
    pub fn read_with_addr_dep(&mut self, src: ReadHandle, loc: Loc) -> ReadHandle {
        assert_eq!(src.thread, self.current(), "dependency must be local");
        let tmp = Reg(self.next_reg);
        let dst = Reg(self.next_reg + 1);
        self.next_reg += 2;
        self.with_builder(|b| b.dep_addr(tmp, src.reg, loc).read_indirect(tmp, dst));
        ReadHandle {
            thread: self.current(),
            reg: dst,
        }
    }

    /// Emits a branch on `src` followed by a read of `loc`: the read is
    /// control-dependent on `src`.
    pub fn read_with_ctrl_dep(&mut self, src: ReadHandle, loc: Loc) -> ReadHandle {
        assert_eq!(src.thread, self.current(), "dependency must be local");
        let src_reg = src.reg;
        self.with_builder(move |b| b.branch_on(src_reg));
        self.read(loc)
    }

    /// Emits `write loc = fresh_value` and returns the stored value.
    pub fn write(&mut self, loc: Loc) -> Value {
        let value = Value(self.next_value);
        self.next_value += 1;
        self.with_builder(|b| b.write(loc, value));
        value
    }

    /// Emits a write of a fresh value to `loc` whose stored value depends
    /// on the earlier read `src` (the `t = r - r + v; write loc = t` idiom).
    pub fn write_with_data_dep(&mut self, src: ReadHandle, loc: Loc) -> Value {
        assert_eq!(src.thread, self.current(), "dependency must be local");
        let value = Value(self.next_value);
        self.next_value += 1;
        let tmp = Reg(self.next_reg);
        self.next_reg += 1;
        self.with_builder(|b| {
            b.dep_const(tmp, src.reg, value)
                .write_expr(loc, RegExpr::Reg(tmp))
        });
        value
    }

    /// Emits a branch on `src` followed by a write to `loc`: the write is
    /// control-dependent on `src`.
    pub fn write_with_ctrl_dep(&mut self, src: ReadHandle, loc: Loc) -> Value {
        assert_eq!(src.thread, self.current(), "dependency must be local");
        let src_reg = src.reg;
        self.with_builder(move |b| b.branch_on(src_reg));
        self.write(loc)
    }

    /// Emits a full fence.
    pub fn fence(&mut self) {
        self.with_builder(mcm_core::ProgramBuilder::fence);
    }

    /// Emits a special fence flavour (§3.3).
    pub fn special_fence(&mut self, flavour: u8) {
        self.with_builder(move |b| b.special_fence(flavour));
    }

    /// Emits the connector between a segment's two accesses. For
    /// [`Connector::DataDep`] and [`Connector::CtrlDep`] the *caller* emits
    /// the dependent access via the `*_with_*_dep` methods; this method
    /// then does nothing.
    pub fn connector(&mut self, connector: Connector) {
        match connector {
            Connector::None | Connector::DataDep | Connector::CtrlDep => {}
            Connector::Fence => self.fence(),
        }
    }

    /// Constrains `read` to observe `value` in the outcome.
    pub fn expect(&mut self, read: ReadHandle, value: Value) {
        self.outcome = std::mem::take(&mut self.outcome).constrain(read.thread, read.reg, value);
    }

    /// Constrains `read` to observe the initial value (zero).
    pub fn expect_init(&mut self, read: ReadHandle) {
        self.expect(read, Value::INIT);
    }

    /// Finishes the program and wraps it into a named litmus test.
    ///
    /// # Errors
    ///
    /// Propagates program/outcome validation failures — template
    /// construction bugs, surfaced eagerly.
    pub fn finish(mut self, name: impl Into<String>) -> Result<LitmusTest, CoreError> {
        let builder = self.builder.take().expect("emitter not finished");
        let program = builder.build()?;
        LitmusTest::new(name, program, self.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_store_buffering() {
        let mut em = Emitter::new();
        em.thread();
        let _v1 = em.write(Loc::X);
        let r1 = em.read(Loc::Y);
        em.thread();
        let _v2 = em.write(Loc::Y);
        let r2 = em.read(Loc::X);
        em.expect_init(r1);
        em.expect_init(r2);
        let test = em.finish("sb").unwrap();
        assert_eq!(test.program().access_count(), 4);
        assert_eq!(test.outcome().len(), 2);
    }

    #[test]
    fn values_are_distinct_across_writes() {
        let mut em = Emitter::new();
        em.thread();
        let v1 = em.write(Loc::X);
        let v2 = em.write(Loc::X);
        em.thread();
        let v3 = em.write(Loc::Y);
        assert!(v1 != v2 && v2 != v3 && v1 != v3);
        em.finish("w3").unwrap();
    }

    #[test]
    fn dependency_emissions_produce_dependencies() {
        let mut em = Emitter::new();
        em.thread();
        let r1 = em.read(Loc::X);
        let r2 = em.read_with_addr_dep(r1, Loc::Y);
        let _v = em.write_with_data_dep(r2, Loc::Z);
        em.expect_init(r1);
        em.expect_init(r2);
        let test = em.finish("deps").unwrap();
        let exec = test.execution();
        let reads: Vec<_> = exec.reads().map(|e| e.id).collect();
        let write = exec.writes().next().unwrap().id;
        assert!(exec.addr_dep(reads[0], reads[1]));
        assert!(exec.data_dep(reads[1], write));
    }

    #[test]
    fn cross_thread_dependency_panics() {
        let mut em = Emitter::new();
        em.thread();
        let r1 = em.read(Loc::X);
        em.thread();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            em.read_with_addr_dep(r1, Loc::Y);
        }));
        assert!(result.is_err());
    }
}
