//! Corollary 1: counting the template instantiations.
//!
//! > *Suppose the number of distinct local segments of each type given by
//! > `N_WW`, `N_WR`, `N_RW`, and `N_RR`. The total number of required
//! > tests is given by*
//! > `N_RW + N_WW + N_RR·(N_WW + N_WR·N_RW) + N_WR·(1 + N_RR + N_RW)`.
//!
//! With the paper's predicate set (`N_RW = N_RR = 6`, `N_WR = N_WW = 4`)
//! this gives **230** tests; without data dependencies (`all = 4`), **124**
//! — versus roughly a million naively enumerated tests (see
//! [`crate::naive`]) and the "several thousands" of the earlier
//! CAV 2010 generator the paper improves on.

use crate::segment::Segment;

/// Evaluates Corollary 1 for the given per-type segment counts.
#[must_use]
pub fn corollary1(n_ww: u64, n_wr: u64, n_rw: u64, n_rr: u64) -> u64 {
    n_rw + n_ww + n_rr * (n_ww + n_wr * n_rw) + n_wr * (1 + n_rr + n_rw)
}

/// The paper's headline numbers: 230 tests with the `DataDep` predicate,
/// 124 without.
#[must_use]
pub fn paper_bound(with_deps: bool) -> u64 {
    extended_bound(with_deps, false)
}

/// Corollary 1 evaluated for a predicate set that may also include
/// `ControlDep` (an extension over the paper's tool): with both dependency
/// predicates the bound is 368.
#[must_use]
pub fn extended_bound(with_deps: bool, with_ctrl: bool) -> u64 {
    let (ww, wr, rw, rr) = Segment::counts_extended(with_deps, with_ctrl);
    corollary1(ww as u64, wr as u64, rw as u64, rr as u64)
}

/// Breakdown of the bound by template case, in proof order
/// (1, 2, 3a, 3b, 4, 5a, 5b).
#[must_use]
pub fn per_case_bounds(with_deps: bool) -> [u64; 7] {
    let (ww, wr, rw, rr) = Segment::counts(with_deps);
    let (ww, wr, rw, rr) = (ww as u64, wr as u64, rw as u64, rr as u64);
    [
        rw,           // case 1
        ww,           // case 2
        rr * ww,      // case 3a
        rr * wr * rw, // case 3b
        wr,           // case 4
        wr * rr,      // case 5a
        wr * rw,      // case 5b
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        assert_eq!(corollary1(4, 4, 6, 6), 230);
        assert_eq!(corollary1(4, 4, 4, 4), 124);
        assert_eq!(paper_bound(true), 230);
        assert_eq!(paper_bound(false), 124);
    }

    #[test]
    fn per_case_sums_match_the_total() {
        for with_deps in [true, false] {
            let total: u64 = per_case_bounds(with_deps).iter().sum();
            assert_eq!(total, paper_bound(with_deps));
        }
    }

    #[test]
    fn formula_is_monotone_in_each_argument() {
        let base = corollary1(4, 4, 6, 6);
        assert!(corollary1(5, 4, 6, 6) > base);
        assert!(corollary1(4, 5, 6, 6) > base);
        assert!(corollary1(4, 4, 7, 6) > base);
        assert!(corollary1(4, 4, 6, 7) > base);
    }
}
