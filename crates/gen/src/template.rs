//! The seven litmus-test templates of Theorem 1 (§3.2, Figure 2).
//!
//! The proof constructs, for every possible *critical segment* (the
//! program-ordered pair of accesses on which two models disagree), a
//! two-thread litmus test with at most six memory accesses whose demanded
//! outcome is allowed exactly when the critical edge is absent:
//!
//! | template | critical segment       | auxiliary segments      | accesses |
//! |----------|------------------------|-------------------------|----------|
//! | Case 1   | read-write             | mirrored copy           | 4        |
//! | Case 2   | write-write            | copy + two reads        | 6        |
//! | Case 3a  | read-read              | write-write             | 4        |
//! | Case 3b  | read-read              | write-read ⋈ read-write | 5        |
//! | Case 4   | write-read (diff addr) | mirrored copy           | 4        |
//! | Case 5a  | write-read (same addr) | read-read continuation  | 6        |
//! | Case 5b  | write-read (same addr) | read-write continuation | 6        |
//!
//! Some `(critical, auxiliary)` combinations are geometrically impossible —
//! e.g. Case 3a with a same-address read-read segment but a
//! different-address write-write segment needs the two write targets to be
//! simultaneously equal and distinct. Those slots return `None`; Corollary
//! 1 counts them anyway, which is why its bound (230 with dependencies) is
//! an over-approximation of the materialised suite.

use mcm_core::{LitmusTest, Loc, Value};

use crate::emit::{Emitter, ReadHandle};
use crate::segment::{AddrRel, Connector, Segment, SegmentType};

fn pair_locs(rel: AddrRel, first: Loc, other: Loc) -> (Loc, Loc) {
    match rel {
        AddrRel::Same => (first, first),
        AddrRel::Diff => (first, other),
    }
}

/// Emits a read-read segment; returns the two read handles.
fn emit_rr(em: &mut Emitter, seg: Segment, loc1: Loc, loc2: Loc) -> (ReadHandle, ReadHandle) {
    debug_assert_eq!(seg.ty, SegmentType::ReadRead);
    let r1 = em.read(loc1);
    let r2 = match seg.connector {
        Connector::DataDep => em.read_with_addr_dep(r1, loc2),
        Connector::CtrlDep => em.read_with_ctrl_dep(r1, loc2),
        c => {
            em.connector(c);
            em.read(loc2)
        }
    };
    (r1, r2)
}

/// Emits a read-write segment; returns the read handle and written value.
fn emit_rw(em: &mut Emitter, seg: Segment, loc_r: Loc, loc_w: Loc) -> (ReadHandle, Value) {
    debug_assert_eq!(seg.ty, SegmentType::ReadWrite);
    let r = em.read(loc_r);
    let v = match seg.connector {
        Connector::DataDep => em.write_with_data_dep(r, loc_w),
        Connector::CtrlDep => em.write_with_ctrl_dep(r, loc_w),
        c => {
            em.connector(c);
            em.write(loc_w)
        }
    };
    (r, v)
}

/// Emits a write-read segment; returns the written value and read handle.
fn emit_wr(em: &mut Emitter, seg: Segment, loc_w: Loc, loc_r: Loc) -> (Value, ReadHandle) {
    debug_assert_eq!(seg.ty, SegmentType::WriteRead);
    let v = em.write(loc_w);
    em.connector(seg.connector);
    let r = em.read(loc_r);
    (v, r)
}

/// Emits a write-write segment; returns the two written values.
fn emit_ww(em: &mut Emitter, seg: Segment, loc1: Loc, loc2: Loc) -> (Value, Value) {
    debug_assert_eq!(seg.ty, SegmentType::WriteWrite);
    let v1 = em.write(loc1);
    em.connector(seg.connector);
    let v2 = em.write(loc2);
    (v1, v2)
}

/// Case 1: critical read-write segment, mirrored (4 accesses).
///
/// The generalised load-buffering shape: each thread's read observes the
/// other thread's write.
#[must_use]
pub fn case1(rw: Segment) -> Option<LitmusTest> {
    if rw.ty != SegmentType::ReadWrite {
        return None;
    }
    let (a, b) = pair_locs(rw.addr_rel, Loc::X, Loc::Y);
    let mut em = Emitter::new();
    em.thread();
    let (r1, v1) = emit_rw(&mut em, rw, a, b);
    em.thread();
    let (r2, v2) = emit_rw(&mut em, rw, b, a);
    em.expect(r1, v2);
    em.expect(r2, v1);
    Some(
        em.finish(format!("c1[{}]", rw.tag()))
            .expect("case 1 construction is well-formed")
            .with_description(format!("Theorem 1 Case 1: critical {rw}")),
    )
}

/// Case 2: critical write-write segment, copied with switched addresses,
/// plus one observer read per thread (6 accesses).
#[must_use]
pub fn case2(ww: Segment) -> Option<LitmusTest> {
    if ww.ty != SegmentType::WriteWrite {
        return None;
    }
    let (a, b) = pair_locs(ww.addr_rel, Loc::X, Loc::Y);
    let mut em = Emitter::new();
    em.thread();
    let (v1a, _v1b) = emit_ww(&mut em, ww, a, b);
    let r1 = em.read(b);
    em.thread();
    let (v2b, _v2a) = emit_ww(&mut em, ww, b, a);
    let r2 = em.read(a);
    // Each observer reads the *first* write of the other thread, which
    // forces the coherence order to close the cycle (§3.1 rule 4).
    em.expect(r1, v2b);
    em.expect(r2, v1a);
    Some(
        em.finish(format!("c2[{}]", ww.tag()))
            .expect("case 2 construction is well-formed")
            .with_description(format!("Theorem 1 Case 2: critical {ww}")),
    )
}

/// Case 3a: critical read-read segment against a write-write segment
/// (4 accesses — the generalised message-passing shape).
///
/// Returns `None` when the address relations are incompatible (the
/// write-write segment's targets are dictated by the read addresses).
#[must_use]
pub fn case3a(rr: Segment, ww: Segment) -> Option<LitmusTest> {
    if rr.ty != SegmentType::ReadRead || ww.ty != SegmentType::WriteWrite {
        return None;
    }
    if rr.addr_rel != ww.addr_rel {
        return None;
    }
    let (a, b) = pair_locs(rr.addr_rel, Loc::X, Loc::Y);
    let mut em = Emitter::new();
    em.thread();
    let (ra, rb) = emit_rr(&mut em, rr, a, b);
    em.thread();
    let (_vb, va) = emit_ww(&mut em, ww, b, a);
    em.expect(ra, va);
    em.expect_init(rb);
    Some(
        em.finish(format!("c3a[{}+{}]", rr.tag(), ww.tag()))
            .expect("case 3a construction is well-formed")
            .with_description(format!("Theorem 1 Case 3a: critical {rr} against {ww}")),
    )
}

/// Case 3b: critical read-read segment against a write-read and a
/// read-write segment merged into a `W … R … W` chain (5 accesses).
///
/// Returns `None` when the three address relations cannot be realised
/// simultaneously.
#[must_use]
pub fn case3b(rr: Segment, wr: Segment, rw: Segment) -> Option<LitmusTest> {
    if rr.ty != SegmentType::ReadRead
        || wr.ty != SegmentType::WriteRead
        || rw.ty != SegmentType::ReadWrite
    {
        return None;
    }
    let (a, b) = pair_locs(rr.addr_rel, Loc::X, Loc::Y);
    let (p, s) = (b, a); // first write observes the fr edge, last feeds rf
    let q = match (wr.addr_rel, rw.addr_rel) {
        (AddrRel::Same, AddrRel::Same) => {
            if a != b {
                return None; // q = p and q = s forces p = s, i.e. a = b
            }
            p
        }
        (AddrRel::Same, AddrRel::Diff) => {
            if a == b {
                return None; // q = p = b must differ from s = a
            }
            p
        }
        (AddrRel::Diff, AddrRel::Same) => {
            if a == b {
                return None; // q = s = a must differ from p = b
            }
            s
        }
        (AddrRel::Diff, AddrRel::Diff) => Loc::Z, // fresh, distinct from X/Y
    };
    let mut em = Emitter::new();
    em.thread();
    let (ra, rb) = emit_rr(&mut em, rr, a, b);
    em.thread();
    let vp = em.write(p);
    em.connector(wr.connector);
    let rq = em.read(q);
    let vs = match rw.connector {
        Connector::DataDep => em.write_with_data_dep(rq, s),
        Connector::CtrlDep => em.write_with_ctrl_dep(rq, s),
        c => {
            em.connector(c);
            em.write(s)
        }
    };
    em.expect(ra, vs);
    em.expect_init(rb);
    if q == p {
        em.expect(rq, vp); // forwarded from the local write
    } else {
        em.expect_init(rq);
    }
    Some(
        em.finish(format!("c3b[{}+{}+{}]", rr.tag(), wr.tag(), rw.tag()))
            .expect("case 3b construction is well-formed")
            .with_description(format!(
                "Theorem 1 Case 3b: critical {rr} against merged {wr} / {rw}"
            )),
    )
}

/// Case 4: critical write-read segment to different addresses, mirrored
/// (4 accesses — the generalised store-buffering shape).
#[must_use]
pub fn case4(wr: Segment) -> Option<LitmusTest> {
    if wr.ty != SegmentType::WriteRead || wr.addr_rel != AddrRel::Diff {
        return None;
    }
    let mut em = Emitter::new();
    em.thread();
    let (_v1, r1) = emit_wr(&mut em, wr, Loc::X, Loc::Y);
    em.thread();
    let (_v2, r2) = emit_wr(&mut em, wr, Loc::Y, Loc::X);
    em.expect_init(r1);
    em.expect_init(r2);
    Some(
        em.finish(format!("c4[{}]", wr.tag()))
            .expect("case 4 construction is well-formed")
            .with_description(format!("Theorem 1 Case 4: critical {wr}")),
    )
}

/// Case 5a: critical write-read segment to the *same* address, continued
/// by a read-read segment to a different address, mirrored (6 accesses —
/// the L8 shape).
#[must_use]
pub fn case5a(wr: Segment, rr: Segment) -> Option<LitmusTest> {
    if wr.ty != SegmentType::WriteRead || wr.addr_rel != AddrRel::Same {
        return None;
    }
    if rr.ty != SegmentType::ReadRead || rr.addr_rel != AddrRel::Diff {
        // The proof requires the closing reads to target the other
        // thread's location.
        return None;
    }
    let mut em = Emitter::new();
    let continue_rr = |em: &mut Emitter, from: ReadHandle, loc: Loc| match rr.connector {
        Connector::DataDep => em.read_with_addr_dep(from, loc),
        Connector::CtrlDep => em.read_with_ctrl_dep(from, loc),
        c => {
            em.connector(c);
            em.read(loc)
        }
    };
    em.thread();
    let (v1, r1) = emit_wr(&mut em, wr, Loc::X, Loc::X);
    let r1y = continue_rr(&mut em, r1, Loc::Y);
    em.thread();
    let (v2, r2) = emit_wr(&mut em, wr, Loc::Y, Loc::Y);
    let r2x = continue_rr(&mut em, r2, Loc::X);
    em.expect(r1, v1);
    em.expect_init(r1y);
    em.expect(r2, v2);
    em.expect_init(r2x);
    Some(
        em.finish(format!("c5a[{}+{}]", wr.tag(), rr.tag()))
            .expect("case 5a construction is well-formed")
            .with_description(format!("Theorem 1 Case 5a: critical {wr} closed by {rr}")),
    )
}

/// Case 5b: critical write-read segment to the *same* address, continued
/// by a read-write segment whose copy runs on the second thread, plus a
/// coherence-observer read (6 accesses — the L9 shape).
#[must_use]
pub fn case5b(wr: Segment, rw: Segment) -> Option<LitmusTest> {
    if wr.ty != SegmentType::WriteRead || wr.addr_rel != AddrRel::Same {
        return None;
    }
    if rw.ty != SegmentType::ReadWrite {
        return None;
    }
    let x = Loc::X;
    let y = match rw.addr_rel {
        AddrRel::Same => x,
        AddrRel::Diff => Loc::Y,
    };
    let mut em = Emitter::new();
    em.thread();
    let (v1, r1) = emit_wr(&mut em, wr, x, x);
    let vy = match rw.connector {
        Connector::DataDep => em.write_with_data_dep(r1, y),
        Connector::CtrlDep => em.write_with_ctrl_dep(r1, y),
        c => {
            em.connector(c);
            em.write(y)
        }
    };
    em.thread();
    let r2 = em.read(y);
    let _v2x = match rw.connector {
        Connector::DataDep => em.write_with_data_dep(r2, x),
        Connector::CtrlDep => em.write_with_ctrl_dep(r2, x),
        c => {
            em.connector(c);
            em.write(x)
        }
    };
    let r3 = em.read(x);
    em.expect(r1, v1);
    em.expect(r2, vy);
    // The observer read sees the *first* write of T1, forcing T2's write
    // to be coherence-earlier and closing the cycle.
    em.expect(r3, v1);
    Some(
        em.finish(format!("c5b[{}+{}]", wr.tag(), rw.tag()))
            .expect("case 5b construction is well-formed")
            .with_description(format!("Theorem 1 Case 5b: critical {wr} closed by {rw}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn seg(ty: SegmentType, connector: Connector, addr_rel: AddrRel) -> Segment {
        Segment::new(ty, connector, addr_rel).expect("valid segment")
    }

    #[test]
    fn case1_produces_four_accesses() {
        for s in Segment::enumerate(SegmentType::ReadWrite, true) {
            let test = case1(s).expect("case 1 always materialises");
            assert_eq!(test.program().access_count(), 4, "{}", test.name());
            assert_eq!(test.program().threads.len(), 2);
        }
    }

    #[test]
    fn case2_produces_six_accesses() {
        for s in Segment::enumerate(SegmentType::WriteWrite, true) {
            let test = case2(s).expect("case 2 always materialises");
            assert_eq!(test.program().access_count(), 6, "{}", test.name());
        }
    }

    #[test]
    fn case3a_respects_address_compatibility() {
        let rr_same = seg(SegmentType::ReadRead, Connector::None, AddrRel::Same);
        let rr_diff = seg(SegmentType::ReadRead, Connector::None, AddrRel::Diff);
        let ww_same = seg(SegmentType::WriteWrite, Connector::None, AddrRel::Same);
        let ww_diff = seg(SegmentType::WriteWrite, Connector::None, AddrRel::Diff);
        assert!(case3a(rr_same, ww_same).is_some());
        assert!(case3a(rr_diff, ww_diff).is_some());
        assert!(case3a(rr_same, ww_diff).is_none());
        assert!(case3a(rr_diff, ww_same).is_none());
        let test = case3a(rr_diff, ww_diff).unwrap();
        assert_eq!(test.program().access_count(), 4);
    }

    #[test]
    fn case3b_access_count_is_five() {
        let rr = seg(SegmentType::ReadRead, Connector::None, AddrRel::Diff);
        let wr = seg(SegmentType::WriteRead, Connector::None, AddrRel::Diff);
        let rw = seg(SegmentType::ReadWrite, Connector::DataDep, AddrRel::Diff);
        let test = case3b(rr, wr, rw).expect("compatible combination");
        assert_eq!(test.program().access_count(), 5);
    }

    #[test]
    fn case3b_rejects_impossible_geometry() {
        let rr_diff = seg(SegmentType::ReadRead, Connector::None, AddrRel::Diff);
        let rr_same = seg(SegmentType::ReadRead, Connector::None, AddrRel::Same);
        let wr_same = seg(SegmentType::WriteRead, Connector::None, AddrRel::Same);
        let rw_same = seg(SegmentType::ReadWrite, Connector::None, AddrRel::Same);
        let rw_diff = seg(SegmentType::ReadWrite, Connector::None, AddrRel::Diff);
        // WR-same + RW-same needs all addresses equal, so RR must be Same.
        assert!(case3b(rr_diff, wr_same, rw_same).is_none());
        assert!(case3b(rr_same, wr_same, rw_same).is_some());
        // WR-same + RW-diff needs the read addresses to differ.
        assert!(case3b(rr_same, wr_same, rw_diff).is_none());
        assert!(case3b(rr_diff, wr_same, rw_diff).is_some());
    }

    #[test]
    fn case4_is_store_buffering_shaped() {
        let wr = seg(SegmentType::WriteRead, Connector::None, AddrRel::Diff);
        let test = case4(wr).unwrap();
        assert_eq!(test.program().access_count(), 4);
        // Same-address write-read segments belong to Case 5.
        let wr_same = seg(SegmentType::WriteRead, Connector::None, AddrRel::Same);
        assert!(case4(wr_same).is_none());
    }

    #[test]
    fn case5_shapes_have_six_accesses() {
        let wr_same = seg(SegmentType::WriteRead, Connector::None, AddrRel::Same);
        let rr = seg(SegmentType::ReadRead, Connector::DataDep, AddrRel::Diff);
        let rw = seg(SegmentType::ReadWrite, Connector::DataDep, AddrRel::Diff);
        let a = case5a(wr_same, rr).unwrap();
        assert_eq!(a.program().access_count(), 6);
        let b = case5b(wr_same, rw).unwrap();
        assert_eq!(b.program().access_count(), 6);
        // Diff-address critical segments are Case 4 material.
        let wr_diff = seg(SegmentType::WriteRead, Connector::None, AddrRel::Diff);
        assert!(case5a(wr_diff, rr).is_none());
        assert!(case5b(wr_diff, rw).is_none());
    }

    #[test]
    fn all_templates_respect_theorem1_bounds() {
        let all: Vec<LitmusTest> = crate::suite::template_suite(true).tests;
        for test in &all {
            assert!(test.program().access_count() <= 6, "{}", test.name());
            assert_eq!(test.program().threads.len(), 2, "{}", test.name());
        }
    }
}
