//! Canonicalization of litmus tests under the paper's symmetries (§2.3).
//!
//! §2.3 requires every predicate in the model class to "preserve some
//! symmetry": verdicts are invariant under
//!
//! * **thread permutation** — threads are unordered;
//! * **location renaming** — any injective renaming of shared locations;
//! * **register renaming** — registers are thread-local names;
//! * **value renaming** — any injective renaming of written/expected
//!   values that fixes the initial value `0` (values only matter through
//!   equality with writes and with the initial state).
//!
//! Two tests in the same orbit of this symmetry group therefore receive
//! the same verdict from *every* model in the class, so a checker only
//! ever needs to run on one representative per orbit. This module computes
//! a canonical representative (the lexicographically least encoding over
//! all thread permutations, with names normalised to first-use order), a
//! 64-bit [`fingerprint`] of that representative, and a [`dedup`] pass
//! that collapses a generated suite to its orbit representatives before
//! any checker runs.
//!
//! ## Example
//!
//! Store buffering is symmetric under swapping its threads:
//!
//! ```
//! use mcm_core::{LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};
//! use mcm_gen::canon;
//!
//! # fn main() -> Result<(), mcm_core::CoreError> {
//! let sb = |first: Loc, second: Loc| -> Result<LitmusTest, mcm_core::CoreError> {
//!     let program = Program::builder()
//!         .thread().write(first, Value(1)).read(second, Reg(1))
//!         .thread().write(second, Value(1)).read(first, Reg(2))
//!         .build()?;
//!     let outcome = Outcome::new()
//!         .constrain(ThreadId(0), Reg(1), Value(0))
//!         .constrain(ThreadId(1), Reg(2), Value(0));
//!     LitmusTest::new("SB", program, outcome)
//! };
//! let a = sb(Loc::X, Loc::Y)?;
//! let b = sb(Loc::Y, Loc::X)?; // same test, threads/locations swapped
//! assert_eq!(canon::fingerprint(&a), canon::fingerprint(&b));
//! assert_eq!(
//!     canon::canonicalize(&a).program(),
//!     canon::canonicalize(&b).program(),
//! );
//! # Ok(())
//! # }
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use mcm_core::{
    AddrExpr, FenceKind, Instruction, LitmusTest, Loc, Outcome, Program, Reg, RegExpr, Thread,
    ThreadId, Value,
};

/// Threads above this count fall back to the identity permutation (the
/// suite's tests all have two threads; `n!` enumeration is only attempted
/// for tiny `n`).
const MAX_PERMUTED_THREADS: usize = 4;

/// A test together with its canonical form and fingerprint.
#[derive(Clone, Debug)]
pub struct Canonical {
    /// The canonical representative (same name/description as the input).
    pub test: LitmusTest,
    /// Hash of the canonical encoding: equal for every member of a
    /// symmetry orbit, and (up to 64-bit hash collisions) distinct across
    /// orbits.
    pub fingerprint: u64,
    encoding: Vec<u8>,
}

/// Computes the canonical form and fingerprint of a test in one pass.
#[must_use]
pub fn canonical(test: &LitmusTest) -> Canonical {
    let plan = value_plan(test);
    let threads = test.program().threads.len();
    let mut best: Option<(Vec<u8>, Program, Outcome)> = None;
    for perm in thread_permutations(threads) {
        let (program, outcome) = apply_renaming(test, &perm, &plan);
        let encoding = encode(&program, &outcome);
        let better = match &best {
            None => true,
            Some((e, _, _)) => encoding < *e,
        };
        if better {
            best = Some((encoding, program, outcome));
        }
    }
    let (encoding, program, outcome) = best.expect("at least the identity permutation");
    let canonical_test = LitmusTest::new(test.name(), program, outcome)
        .expect("canonicalization preserves well-formedness")
        .with_description(test.description());
    let mut hasher = DefaultHasher::new();
    encoding.hash(&mut hasher);
    Canonical {
        test: canonical_test,
        fingerprint: hasher.finish(),
        encoding,
    }
}

/// The canonical representative of `test`'s symmetry orbit.
///
/// Idempotent: canonicalizing a canonical test is a no-op (structurally),
/// and verdict-preserving for every model in the paper's class.
#[must_use]
pub fn canonicalize(test: &LitmusTest) -> LitmusTest {
    canonical(test).test
}

/// A 64-bit fingerprint of `test`'s symmetry orbit, suitable as a cache
/// key for (model, test) verdict memoization.
#[must_use]
pub fn fingerprint(test: &LitmusTest) -> u64 {
    canonical(test).fingerprint
}

/// Whether `test` is the **leader** (canonical representative) of its own
/// symmetry orbit: canonicalizing it is structurally a no-op.
///
/// This is the emission predicate of the streaming enumeration
/// ([`crate::stream`]): a bounded space can be swept one orbit
/// representative at a time, without ever storing the raw space, by
/// yielding exactly the tests for which `is_leader` holds.
#[must_use]
pub fn is_leader(test: &LitmusTest) -> bool {
    let canonical = canonical(test);
    canonical.test.program() == test.program() && canonical.test.outcome() == test.outcome()
}

/// The result of deduplicating a suite modulo symmetry.
#[derive(Clone, Debug)]
pub struct CanonicalSuite {
    /// One canonical representative per orbit, in first-seen order.
    pub tests: Vec<LitmusTest>,
    /// Orbit fingerprints, parallel to [`CanonicalSuite::tests`].
    pub fingerprints: Vec<u64>,
    /// For each input test, the index of its representative in
    /// [`CanonicalSuite::tests`].
    pub class_of: Vec<usize>,
    /// Number of input tests.
    pub original_len: usize,
}

impl CanonicalSuite {
    /// Number of representatives (distinct orbits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the input suite was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// `original / deduplicated` — how many checker invocations per model
    /// the canonicalization pass saves (1.0 means nothing was symmetric).
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.tests.is_empty() {
            1.0
        } else {
            self.original_len as f64 / self.tests.len() as f64
        }
    }
}

/// Collapses a suite to one representative per symmetry orbit.
#[must_use]
pub fn dedup(tests: &[LitmusTest]) -> CanonicalSuite {
    merge(tests.iter().map(canonical).collect(), tests.len())
}

/// [`dedup`] with the per-test canonicalization (the dominant cost —
/// each test is independent and pure) fanned out over `jobs` threads.
/// The orbit merge itself stays sequential to preserve first-seen
/// representative order, identical to [`dedup`].
#[must_use]
pub fn dedup_parallel(tests: &[LitmusTest], jobs: usize) -> CanonicalSuite {
    let jobs = jobs.max(1).min(tests.len());
    if jobs <= 1 || tests.len() < 64 {
        return dedup(tests);
    }
    let chunk = tests.len().div_ceil(jobs);
    let canonicals: Vec<Canonical> = std::thread::scope(|scope| {
        let handles: Vec<_> = tests
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(canonical).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("canonicalization workers do not panic"))
            .collect()
    });
    merge(canonicals, tests.len())
}

/// Sequential orbit merge: first occurrence of an encoding becomes the
/// representative.
fn merge(canonicals: Vec<Canonical>, original_len: usize) -> CanonicalSuite {
    let mut reps: Vec<LitmusTest> = Vec::new();
    let mut fingerprints: Vec<u64> = Vec::new();
    let mut class_of: Vec<usize> = Vec::with_capacity(original_len);
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    for canonical in canonicals {
        let next = reps.len();
        let class = *seen.entry(canonical.encoding).or_insert(next);
        if class == next {
            reps.push(canonical.test);
            fingerprints.push(canonical.fingerprint);
        }
        class_of.push(class);
    }
    CanonicalSuite {
        tests: reps,
        fingerprints,
        class_of,
        original_len,
    }
}

/// All permutations of `0..n` (identity only above [`MAX_PERMUTED_THREADS`]).
pub(crate) fn thread_permutations(n: usize) -> Vec<Vec<usize>> {
    if n > MAX_PERMUTED_THREADS {
        return vec![(0..n).collect()];
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    permute(&mut current, 0, &mut out);
    out
}

fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

/// Whether every value-carrying expression is simple enough for injective
/// value renaming to commute with evaluation: constants, registers,
/// location addresses, and the paper's dependency idiom
/// `r - r + (const | &loc)`. Anything else (true arithmetic over
/// constants) disables value renaming for the whole test.
fn values_renameable(program: &Program) -> bool {
    fn simple(expr: &RegExpr) -> bool {
        match expr {
            RegExpr::Const(_) | RegExpr::Reg(_) | RegExpr::LocAddr(_) => true,
            RegExpr::Add(a, b) => {
                matches!(
                    (&**a, &**b),
                    (RegExpr::Sub(x, y), RegExpr::Const(_) | RegExpr::LocAddr(_))
                        if matches!((&**x, &**y), (RegExpr::Reg(p), RegExpr::Reg(q)) if p == q)
                )
            }
            RegExpr::Sub(a, b) => {
                matches!((&**a, &**b), (RegExpr::Reg(p), RegExpr::Reg(q)) if p == q)
            }
        }
    }
    program.threads.iter().all(|t| {
        t.instructions.iter().all(|i| match i {
            Instruction::Write { val, .. } => simple(val),
            Instruction::Op { expr, .. } => simple(expr),
            Instruction::Branch { cond } => simple(cond),
            Instruction::Read { .. } | Instruction::Fence(_) => true,
        })
    })
}

/// How the canonicalizer may rename literal values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ValueMode {
    /// Arithmetic too complex to rename safely: values kept verbatim.
    Fixed,
    /// One injective renaming over all literals (always sound for simple
    /// expressions — values only ever matter through equality).
    Global,
    /// An independent injective renaming per memory location. Strictly
    /// coarser orbits than [`ValueMode::Global`] (writes to different
    /// locations never interact through reads-from or coherence), but
    /// requires the dataflow analysis in [`value_plan`] to prove no value
    /// flows from a read of one location into a write of another.
    PerLocation,
}

/// Abstract value of a register during the [`value_plan`] dataflow pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Abs {
    /// The numeric address of a location (`&X` idioms).
    Addr(Loc),
    /// A statically known constant.
    Num(i64),
    /// The dynamic value read from this location.
    ReadFrom(Loc),
    /// Anything else.
    Opaque,
}

/// Where each literal constant must be renamed: a bucket (location) per
/// instruction site plus a bucket per outcome constraint.
pub(crate) struct ValuePlan {
    mode: ValueMode,
    /// `site_bucket[thread][instr]`: the location bucket for that
    /// instruction's (unique) constant leaf, when [`ValueMode::PerLocation`].
    site_bucket: Vec<Vec<Option<Loc>>>,
    /// Bucket for an outcome constraint on `(thread, reg)`.
    outcome_bucket: HashMap<(u8, u8), Loc>,
}

/// The unique non-address constant leaf of a simple expression, if any.
fn const_leaf(expr: &RegExpr) -> Option<Value> {
    match expr {
        RegExpr::Const(v) => Some(*v),
        RegExpr::Reg(_) | RegExpr::LocAddr(_) => None,
        RegExpr::Add(a, b) | RegExpr::Sub(a, b) => const_leaf(a).or_else(|| const_leaf(b)),
    }
}

fn sym_eval(expr: &RegExpr, regs: &BTreeMap<u8, Abs>) -> Abs {
    match expr {
        RegExpr::Const(v) => match Loc::from_address(*v) {
            Some(loc) => Abs::Addr(loc),
            None => Abs::Num(v.0),
        },
        RegExpr::Reg(r) => regs.get(&r.0).copied().unwrap_or(Abs::Opaque),
        RegExpr::LocAddr(l) => Abs::Addr(*l),
        RegExpr::Add(a, b) => match (sym_eval(a, regs), sym_eval(b, regs)) {
            (Abs::Num(x), Abs::Num(y)) => Abs::Num(x.wrapping_add(y)),
            (Abs::Num(0), v) | (v, Abs::Num(0)) => v,
            _ => Abs::Opaque,
        },
        RegExpr::Sub(a, b) => {
            if matches!((&**a, &**b), (RegExpr::Reg(p), RegExpr::Reg(q)) if p == q) {
                return Abs::Num(0);
            }
            match (sym_eval(a, regs), sym_eval(b, regs)) {
                (Abs::Num(x), Abs::Num(y)) => Abs::Num(x.wrapping_sub(y)),
                _ => Abs::Opaque,
            }
        }
    }
}

fn resolve_addr(addr: &AddrExpr, regs: &BTreeMap<u8, Abs>) -> Option<Loc> {
    match addr {
        AddrExpr::Loc(l) => Some(*l),
        AddrExpr::Reg(r) => match regs.get(&r.0) {
            Some(Abs::Addr(l)) => Some(*l),
            _ => None,
        },
    }
}

/// Decides the strongest sound [`ValueMode`] for a test and assigns each
/// constant site its location bucket.
///
/// Per-location renaming is sound exactly when every literal's "equality
/// neighbourhood" is a single location: each written constant reaches one
/// statically known location, each constrained register holds the value of
/// a read from one statically known location, and no dynamic value is
/// forwarded from a read into a write (which would link two locations'
/// value namespaces). Anything unprovable degrades to the global mode.
pub(crate) fn value_plan(test: &LitmusTest) -> ValuePlan {
    let program = test.program();
    let mut plan = ValuePlan {
        mode: ValueMode::PerLocation,
        site_bucket: program
            .threads
            .iter()
            .map(|t| vec![None; t.instructions.len()])
            .collect(),
        outcome_bucket: HashMap::new(),
    };
    if !values_renameable(program) {
        plan.mode = ValueMode::Fixed;
        return plan;
    }
    let mut per_loc_ok = true;
    for (t, thread) in program.threads.iter().enumerate() {
        let mut regs: BTreeMap<u8, Abs> = BTreeMap::new();
        // Op-defined register -> site of its pending constant leaf.
        let mut pending_const: BTreeMap<u8, usize> = BTreeMap::new();
        let mut consumed: Vec<u8> = Vec::new();
        for (i, instr) in thread.instructions.iter().enumerate() {
            match instr {
                Instruction::Read { addr, dst } => {
                    match resolve_addr(addr, &regs) {
                        Some(l) => {
                            regs.insert(dst.0, Abs::ReadFrom(l));
                            plan.outcome_bucket
                                .insert((u8::try_from(t).expect("thread id"), dst.0), l);
                        }
                        None => {
                            regs.insert(dst.0, Abs::Opaque);
                        }
                    }
                }
                Instruction::Op { dst, expr } => {
                    regs.insert(dst.0, sym_eval(expr, &regs));
                    if let Some(v) = const_leaf(expr) {
                        if v != Value::INIT && Loc::from_address(v).is_none() {
                            pending_const.insert(dst.0, i);
                        }
                    }
                }
                Instruction::Write { addr, val } => {
                    let Some(loc) = resolve_addr(addr, &regs) else {
                        // A write to a statically unknown location could
                        // alias anything; no per-location namespace holds.
                        per_loc_ok = false;
                        continue;
                    };
                    if let Some(v) = const_leaf(val) {
                        if v != Value::INIT && Loc::from_address(v).is_none() {
                            plan.site_bucket[t][i] = Some(loc);
                        }
                    } else if let RegExpr::Reg(r) = val {
                        match regs.get(&r.0).copied().unwrap_or(Abs::Opaque) {
                            Abs::Num(0) => {}
                            Abs::Num(_) => match pending_const.get(&r.0) {
                                // The constant lives in the defining op;
                                // bucket it by this write's location.
                                Some(&site) => match plan.site_bucket[t][site] {
                                    None => {
                                        plan.site_bucket[t][site] = Some(loc);
                                        consumed.push(r.0);
                                    }
                                    Some(prev) if prev == loc => {}
                                    Some(_) => per_loc_ok = false,
                                },
                                None => per_loc_ok = false,
                            },
                            Abs::Addr(_) => {}
                            // Forwarding a read's dynamic value into a
                            // write links two locations' namespaces.
                            Abs::ReadFrom(_) | Abs::Opaque => per_loc_ok = false,
                        }
                    } else {
                        // A dependency idiom whose leaf is a LocAddr (or
                        // no leaf at all) writes an address: nothing to
                        // bucket.
                        match sym_eval(val, &regs) {
                            Abs::Addr(_) | Abs::Num(0) => {}
                            _ => per_loc_ok = false,
                        }
                    }
                }
                Instruction::Branch { cond } => {
                    if let Some(v) = const_leaf(cond) {
                        if v != Value::INIT && Loc::from_address(v).is_none() {
                            // Branch conditions never interact with memory
                            // values; still, refuse rather than invent a
                            // namespace for them.
                            per_loc_ok = false;
                        }
                    }
                }
                Instruction::Fence(_) => {}
            }
        }
        // Pending constants that never reached a write: sound only if the
        // register is dead (value never observable).
        for (reg, site) in pending_const {
            if plan.site_bucket[t][site].is_some() {
                continue;
            }
            let outcome_uses = test
                .outcome()
                .constraints()
                .iter()
                .any(|&(ct, cr, _)| ct.index() == t && cr.0 == reg);
            let program_uses = thread
                .instructions
                .iter()
                .any(|i| i.uses().iter().any(|u| u.0 == reg));
            if (outcome_uses || program_uses) && !consumed.contains(&reg) {
                per_loc_ok = false;
            }
        }
    }
    // Every constrained non-trivial value must have a read bucket.
    for &(ct, cr, v) in test.outcome().constraints() {
        if v == Value::INIT || Loc::from_address(v).is_some() {
            continue;
        }
        if !plan.outcome_bucket.contains_key(&(ct.0, cr.0)) {
            per_loc_ok = false;
        }
    }
    plan.mode = if per_loc_ok {
        ValueMode::PerLocation
    } else {
        ValueMode::Global
    };
    plan
}

/// First-use renaming state for one candidate thread permutation.
struct Renaming<'a> {
    plan: &'a ValuePlan,
    locs: BTreeMap<u8, u8>,
    next_loc: u8,
    /// Per (new) thread: old register -> new register.
    regs: Vec<BTreeMap<u8, u8>>,
    /// Per bucket (`Some(old location)` or `None` for the global
    /// namespace): the injective value map and its next fresh value.
    vals: BTreeMap<Option<u8>, (BTreeMap<i64, i64>, i64)>,
}

impl<'a> Renaming<'a> {
    fn new(threads: usize, plan: &'a ValuePlan) -> Self {
        Renaming {
            plan,
            locs: BTreeMap::new(),
            next_loc: 0,
            regs: vec![BTreeMap::new(); threads],
            vals: BTreeMap::new(),
        }
    }

    fn map_loc(&mut self, loc: Loc) -> Loc {
        let next = self.next_loc;
        let new = *self.locs.entry(loc.0).or_insert(next);
        if new == next {
            self.next_loc += 1;
        }
        Loc(new)
    }

    fn map_reg(&mut self, thread: usize, reg: Reg) -> Reg {
        let next = u8::try_from(self.regs[thread].len() + 1).expect("register count fits u8");
        Reg(*self.regs[thread].entry(reg.0).or_insert(next))
    }

    /// Renames a literal value within `bucket` (an old location for
    /// per-location mode; ignored in global mode).
    fn map_value(&mut self, value: Value, bucket: Option<Loc>) -> Value {
        if self.plan.mode == ValueMode::Fixed || value == Value::INIT {
            return value;
        }
        // Address-valued constants follow the *location* renaming so that
        // address arithmetic stays consistent with renamed locations.
        if let Some(loc) = Loc::from_address(value) {
            let mapped = self.map_loc(loc);
            return mapped.base_address();
        }
        let key = match self.plan.mode {
            ValueMode::Global => None,
            ValueMode::PerLocation => match bucket {
                Some(loc) => Some(loc.0),
                // An unbucketed (dead) constant: leave it verbatim.
                None => return value,
            },
            ValueMode::Fixed => unreachable!("handled above"),
        };
        let (map, next) = self.vals.entry(key).or_insert_with(|| (BTreeMap::new(), 1));
        let fresh = *next;
        let new = *map.entry(value.0).or_insert(fresh);
        if new == fresh {
            *next += 1;
        }
        Value(new)
    }

    fn map_expr(&mut self, thread: usize, expr: &RegExpr, bucket: Option<Loc>) -> RegExpr {
        match expr {
            RegExpr::Const(v) => RegExpr::Const(self.map_value(*v, bucket)),
            RegExpr::Reg(r) => RegExpr::Reg(self.map_reg(thread, *r)),
            RegExpr::LocAddr(l) => RegExpr::LocAddr(self.map_loc(*l)),
            RegExpr::Add(a, b) => RegExpr::Add(
                Box::new(self.map_expr(thread, a, bucket)),
                Box::new(self.map_expr(thread, b, bucket)),
            ),
            RegExpr::Sub(a, b) => RegExpr::Sub(
                Box::new(self.map_expr(thread, a, bucket)),
                Box::new(self.map_expr(thread, b, bucket)),
            ),
        }
    }

    fn map_addr(&mut self, thread: usize, addr: &AddrExpr) -> AddrExpr {
        match addr {
            AddrExpr::Loc(l) => AddrExpr::Loc(self.map_loc(*l)),
            AddrExpr::Reg(r) => AddrExpr::Reg(self.map_reg(thread, *r)),
        }
    }

    /// Renames one instruction; `old_thread`/`index` locate its constant
    /// bucket in the [`ValuePlan`].
    fn map_instruction(
        &mut self,
        thread: usize,
        old_thread: usize,
        index: usize,
        instr: &Instruction,
    ) -> Instruction {
        let bucket = self.plan.site_bucket[old_thread][index];
        match instr {
            Instruction::Read { addr, dst } => {
                let addr = self.map_addr(thread, addr);
                Instruction::Read {
                    addr,
                    dst: self.map_reg(thread, *dst),
                }
            }
            Instruction::Write { addr, val } => {
                let addr = self.map_addr(thread, addr);
                Instruction::Write {
                    addr,
                    val: self.map_expr(thread, val, bucket),
                }
            }
            Instruction::Fence(kind) => Instruction::Fence(*kind),
            Instruction::Op { dst, expr } => {
                let expr = self.map_expr(thread, expr, bucket);
                Instruction::Op {
                    dst: self.map_reg(thread, *dst),
                    expr,
                }
            }
            Instruction::Branch { cond } => Instruction::Branch {
                cond: self.map_expr(thread, cond, bucket),
            },
        }
    }
}

/// Applies thread permutation `perm` (new index -> old index) and derives
/// first-use renamings of locations, registers and values.
pub(crate) fn apply_renaming(
    test: &LitmusTest,
    perm: &[usize],
    plan: &ValuePlan,
) -> (Program, Outcome) {
    let old_threads = &test.program().threads;
    let mut renaming = Renaming::new(perm.len(), plan);
    let threads: Vec<Thread> = perm
        .iter()
        .enumerate()
        .map(|(new_tid, &old_tid)| Thread {
            instructions: old_threads[old_tid]
                .instructions
                .iter()
                .enumerate()
                .map(|(index, i)| renaming.map_instruction(new_tid, old_tid, index, i))
                .collect(),
        })
        .collect();

    // Old thread id -> new thread id.
    let mut new_of_old = vec![0u8; perm.len()];
    for (new_tid, &old_tid) in perm.iter().enumerate() {
        new_of_old[old_tid] = u8::try_from(new_tid).expect("thread count fits u8");
    }
    let mut constraints: Vec<(ThreadId, Reg, Value, Option<Loc>)> = test
        .outcome()
        .constraints()
        .iter()
        .map(|&(t, r, v)| {
            let new_tid = usize::from(new_of_old[t.index()]);
            let bucket = plan.outcome_bucket.get(&(t.0, r.0)).copied();
            (
                ThreadId(new_of_old[t.index()]),
                renaming.map_reg(new_tid, r),
                v,
                bucket,
            )
        })
        .collect();
    // Deterministic order before value renaming so the derived value map
    // does not depend on the input constraint order.
    constraints.sort_by_key(|&(t, r, _, _)| (t.0, r.0));
    let mut outcome = Outcome::new();
    for (t, r, v, bucket) in constraints {
        outcome = outcome.constrain(t, r, renaming.map_value(v, bucket));
    }
    (Program { threads }, outcome)
}

/// A compact, total byte encoding of a (program, outcome) pair: the
/// comparison key selecting the canonical permutation. The program bytes
/// come first, so comparing [`encode_program`] prefixes decides any
/// permutation contest that the programs alone settle.
pub(crate) fn encode(program: &Program, outcome: &Outcome) -> Vec<u8> {
    let mut out = encode_program(program);
    out.push(0xFF); // outcome separator
    for &(t, r, v) in outcome.constraints() {
        out.push(t.0);
        out.push(r.0);
        push_i64(&mut out, v.0);
    }
    out
}

fn push_i64(out: &mut Vec<u8>, v: i64) {
    // Order-preserving encoding (offset binary, big endian) so byte
    // comparison matches numeric comparison.
    out.extend_from_slice(&(v as u64 ^ (1 << 63)).to_be_bytes());
}

/// The program prefix of [`encode`].
pub(crate) fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    fn push_expr(out: &mut Vec<u8>, expr: &RegExpr) {
        match expr {
            RegExpr::Const(v) => {
                out.push(0x01);
                push_i64(out, v.0);
            }
            RegExpr::Reg(r) => {
                out.push(0x02);
                out.push(r.0);
            }
            RegExpr::LocAddr(l) => {
                out.push(0x03);
                out.push(l.0);
            }
            RegExpr::Add(a, b) => {
                out.push(0x04);
                push_expr(out, a);
                push_expr(out, b);
            }
            RegExpr::Sub(a, b) => {
                out.push(0x05);
                push_expr(out, a);
                push_expr(out, b);
            }
        }
    }
    fn push_addr(out: &mut Vec<u8>, addr: &AddrExpr) {
        match addr {
            AddrExpr::Loc(l) => {
                out.push(0x01);
                out.push(l.0);
            }
            AddrExpr::Reg(r) => {
                out.push(0x02);
                out.push(r.0);
            }
        }
    }
    for thread in &program.threads {
        out.push(0xFE); // thread separator
        for instr in &thread.instructions {
            match instr {
                Instruction::Read { addr, dst } => {
                    out.push(0x10);
                    push_addr(&mut out, addr);
                    out.push(dst.0);
                }
                Instruction::Write { addr, val } => {
                    out.push(0x11);
                    push_addr(&mut out, addr);
                    push_expr(&mut out, val);
                }
                Instruction::Fence(FenceKind::Full) => out.push(0x12),
                Instruction::Fence(FenceKind::Special(n)) => {
                    out.push(0x13);
                    out.push(*n);
                }
                Instruction::Op { dst, expr } => {
                    out.push(0x14);
                    out.push(dst.0);
                    push_expr(&mut out, expr);
                }
                Instruction::Branch { cond } => {
                    out.push(0x15);
                    push_expr(&mut out, cond);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::template_suite;
    use mcm_core::{Outcome, Program};

    fn sb_variant(first: Loc, second: Loc, value: Value) -> LitmusTest {
        let program = Program::builder()
            .thread()
            .write(first, value)
            .read(second, Reg(1))
            .thread()
            .write(second, value)
            .read(first, Reg(2))
            .build()
            .unwrap();
        let outcome = Outcome::new()
            .constrain(ThreadId(0), Reg(1), Value(0))
            .constrain(ThreadId(1), Reg(2), Value(0));
        LitmusTest::new("SB-variant", program, outcome).unwrap()
    }

    #[test]
    fn symmetric_variants_share_a_fingerprint() {
        let base = sb_variant(Loc::X, Loc::Y, Value(1));
        let swapped_locs = sb_variant(Loc::Y, Loc::X, Value(1));
        let renamed_locs = sb_variant(Loc::Z, Loc::W, Value(1));
        let renamed_value = sb_variant(Loc::X, Loc::Y, Value(7));
        let fp = fingerprint(&base);
        assert_eq!(fp, fingerprint(&swapped_locs));
        assert_eq!(fp, fingerprint(&renamed_locs));
        assert_eq!(fp, fingerprint(&renamed_value));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for test in template_suite(true).tests.iter().take(40) {
            let once = canonicalize(test);
            let twice = canonicalize(&once);
            assert_eq!(once.program(), twice.program(), "{}", test.name());
            assert_eq!(once.outcome(), twice.outcome(), "{}", test.name());
            assert_eq!(fingerprint(test), fingerprint(&once), "{}", test.name());
        }
    }

    #[test]
    fn template_suite_is_symmetry_irredundant() {
        // The §3.4 generator already emits exactly one test per orbit:
        // canonicalization finds nothing left to collapse. (The win shows
        // up on suites that were *not* generated symmetry-aware — the
        // catalog + template comparison suite and the naive enumeration —
        // see `crates/bench/benches/canonical_dedup.rs`.)
        let suite = template_suite(true);
        let canonical = dedup(&suite.tests);
        assert_eq!(canonical.original_len, suite.tests.len());
        assert_eq!(canonical.len(), suite.tests.len());
        // Every class index is a valid representative index.
        assert!(canonical.class_of.iter().all(|&c| c < canonical.len()));
        assert_eq!(canonical.class_of.len(), canonical.original_len);
        // Representatives are pairwise distinct orbits.
        let mut fps = canonical.fingerprints.clone();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), canonical.len());
    }

    #[test]
    fn dedup_collapses_the_raw_naive_enumeration() {
        let bounds = crate::naive::NaiveBounds {
            max_accesses_per_thread: 2,
            max_locs: 2,
            ..Default::default()
        };
        let raw = crate::naive::enumerate_tests_raw(&bounds, usize::MAX);
        let filtered = crate::naive::enumerate_tests(&bounds, usize::MAX);
        let canonical = dedup(&raw);
        assert!(
            canonical.dedup_ratio() > 3.0,
            "raw {} -> {} orbits",
            raw.len(),
            canonical.len()
        );
        // The orbit quotient is at least as sharp as the enumerator's
        // built-in shape filter (it also sees outcome/value symmetries).
        assert!(canonical.len() <= filtered.len());
    }

    #[test]
    fn dedup_collapses_transformed_suite_copies() {
        // Appending a thread-swapped copy of every test must not create
        // any new orbits.
        let suite = template_suite(false);
        let mut all = suite.tests.clone();
        for test in &suite.tests {
            let mut threads = test.program().threads.clone();
            threads.reverse();
            let n = u8::try_from(threads.len()).unwrap();
            let mut outcome = Outcome::new();
            for &(t, r, v) in test.outcome().constraints() {
                outcome = outcome.constrain(ThreadId(n - 1 - t.0), r, v);
            }
            all.push(
                LitmusTest::new(test.name(), Program { threads }, outcome)
                    .expect("thread swap preserves well-formedness"),
            );
        }
        let canonical = dedup(&all);
        assert_eq!(canonical.len(), suite.tests.len());
    }

    #[test]
    fn members_of_a_class_share_the_representative_fingerprint() {
        let suite = template_suite(false);
        let canonical = dedup(&suite.tests);
        for (i, test) in suite.tests.iter().enumerate() {
            let rep = canonical.class_of[i];
            assert_eq!(
                fingerprint(test),
                canonical.fingerprints[rep],
                "{} not in its class",
                test.name()
            );
        }
    }

    #[test]
    fn value_renaming_is_disabled_for_true_arithmetic() {
        // `write X = r1 + r1` is not a renameable idiom: the program's
        // values must survive canonicalization untouched.
        let program = Program::builder()
            .thread()
            .read(Loc::X, Reg(1))
            .write_expr(
                Loc::Y,
                RegExpr::Add(
                    Box::new(RegExpr::Reg(Reg(1))),
                    Box::new(RegExpr::Reg(Reg(1))),
                ),
            )
            .thread()
            .write(Loc::Y, Value(6))
            .build()
            .unwrap();
        assert!(!values_renameable(&program));
        let outcome = Outcome::new().constrain(ThreadId(0), Reg(1), Value(3));
        let test = LitmusTest::new("arith", program, outcome).unwrap();
        let canonical = canonicalize(&test);
        // The outcome value 3 and the literal 6 must be preserved.
        assert_eq!(canonical.outcome().constraints()[0].2, Value(3));
    }

    #[test]
    fn canonical_form_uses_first_use_names() {
        let test = sb_variant(Loc::W, Loc::Z, Value(9));
        let canonical = canonicalize(&test);
        let locs = canonical.program().locations();
        assert_eq!(locs, vec![Loc(0), Loc(1)]);
        // The written value is renamed to the first value id.
        let rendered = canonical.program().to_string();
        assert!(rendered.contains("= 1"), "{rendered}");
    }
}
