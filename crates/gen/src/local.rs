//! Local-segment length bounds (§3.3).
//!
//! Theorem 1 bounds threads and memory accesses, but the number of
//! *non-memory* instructions in a litmus test depends on the predicate
//! set: §3.3 exhibits a family of models with `n` special fence flavours
//! `f1 … fn` whose contrasting test needs a local segment of `n + 2`
//! instructions (`Read X, f1, …, fn, Write Y`), and shows a matching upper
//! bound — a minimal segment never contains two *equivalent* non-memory
//! instructions, so its length is bounded by the number of equivalence
//! classes induced by the predicates.
//!
//! This module materialises that example family and the bound.

use mcm_core::{
    ArgPos, Atom, Formula, LitmusTest, Loc, MemoryModel, Outcome, Program, Reg, ThreadId, Value,
};

/// The `special(x, y)` predicate of §3.3 as a positive formula: true when
/// `x` is an access and `y = f1`, when `x = fn` and `y` is an access, or
/// when `x = f_i` and `y = f_{i+1}`.
#[must_use]
pub fn special_chain_formula(n: u8) -> Formula {
    assert!(n >= 1, "the chain needs at least one flavour");
    let access = |pos| Formula::atom(Atom::IsAccess(pos));
    let flavour = |i: u8, pos| Formula::atom(Atom::IsSpecialFence(i, pos));
    let mut disjuncts = vec![
        Formula::and([access(ArgPos::First), flavour(1, ArgPos::Second)]),
        Formula::and([flavour(n, ArgPos::First), access(ArgPos::Second)]),
    ];
    for i in 1..n {
        disjuncts.push(Formula::and([
            flavour(i, ArgPos::First),
            flavour(i + 1, ArgPos::Second),
        ]));
    }
    Formula::or(disjuncts)
}

/// The §3.3 model pair: `F1 = SameAddr ∨ special(x, y)` and
/// `F2 = SameAddr`. They differ, but only on tests whose local segment
/// threads an access through the complete chain `f1 … fn`.
#[must_use]
pub fn special_chain_models(n: u8) -> (MemoryModel, MemoryModel) {
    let f1 = Formula::or([
        Formula::atom(Atom::SameAddr),
        special_chain_formula(n),
    ]);
    let f2 = Formula::atom(Atom::SameAddr);
    (
        MemoryModel::new(format!("F1-chain{n}"), f1),
        MemoryModel::new("F2", f2),
    )
}

/// The contrasting litmus test: a load-buffering shape whose threads run
/// the full fence chain between read and write (local segments of `n + 2`
/// instructions). `F2` allows the outcome; `F1` forbids it.
#[must_use]
pub fn special_chain_contrast_test(n: u8) -> LitmusTest {
    special_chain_test(n, &(1..=n).collect::<Vec<u8>>())
}

/// Like [`special_chain_contrast_test`] but with an arbitrary subsequence
/// of the chain — used to demonstrate that any *incomplete* chain fails to
/// contrast the two models (hence the `n + 2` lower bound).
#[must_use]
pub fn special_chain_test(n: u8, flavours: &[u8]) -> LitmusTest {
    assert!(flavours.iter().all(|&f| f >= 1 && f <= n));
    let chain = |mut b: mcm_core::ProgramBuilder| {
        for &f in flavours {
            b = b.special_fence(f);
        }
        b
    };
    let mut builder = Program::builder()
        .thread()
        .read(Loc::X, Reg(1));
    builder = chain(builder).write(Loc::Y, Value(1)).thread().read(Loc::Y, Reg(2));
    let program = chain(builder)
        .write(Loc::X, Value(1))
        .build()
        .expect("chain test is well-formed");
    let outcome = Outcome::new()
        .constrain(ThreadId(0), Reg(1), Value(1))
        .constrain(ThreadId(1), Reg(2), Value(1));
    LitmusTest::new(format!("chain{n}-{:?}", flavours), program, outcome)
        .expect("outcome constrains all reads")
        .with_description(format!(
            "§3.3 special-fence family: LB with chain {flavours:?} of {n}"
        ))
}

/// The §3.3 upper bound on local-segment length for a must-not-reorder
/// function: two accesses plus at most one instruction per equivalence
/// class of non-memory instructions distinguishable by the formula's
/// predicates (generic ops, the full fence if mentioned, and each special
/// flavour mentioned).
#[must_use]
pub fn local_segment_bound(formula: &Formula) -> usize {
    let mut classes = 1; // ops/branches: indistinguishable by kind atoms
    let mut full_fence = false;
    let mut flavours: Vec<u8> = Vec::new();
    for atom in formula.atoms() {
        match atom {
            Atom::IsFence(_) => full_fence = true,
            Atom::IsSpecialFence(f, _) if !flavours.contains(&f) => flavours.push(f),
            _ => {}
        }
    }
    if full_fence {
        classes += 1;
    }
    classes += flavours.len();
    classes + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_formula_shape() {
        let f = special_chain_formula(3);
        let atoms = f.atoms();
        // 2 access atoms + 2 endpoint flavours + 2×2 link flavours.
        assert_eq!(atoms.len(), 8);
        assert!(!f.uses_dependencies());
    }

    #[test]
    fn contrast_test_has_n_plus_2_segments() {
        for n in 1..=4u8 {
            let test = special_chain_contrast_test(n);
            let thread = &test.program().threads[0];
            assert_eq!(thread.instructions.len(), usize::from(n) + 2);
            assert_eq!(test.program().access_count(), 4);
        }
    }

    #[test]
    fn bound_grows_with_the_chain() {
        for n in 1..=4u8 {
            let (f1, _) = special_chain_models(n);
            let bound = local_segment_bound(f1.formula());
            // 1 op class + n flavours + 2 accesses.
            assert_eq!(bound, usize::from(n) + 3);
            // The contrast test's segments fit within the bound.
            assert!(usize::from(n) + 2 <= bound);
        }
    }

    #[test]
    fn standard_formulas_have_small_bounds() {
        let fences_only = Formula::fence_either();
        assert_eq!(local_segment_bound(&fences_only), 4);
        let bare = Formula::atom(Atom::SameAddr);
        assert_eq!(local_segment_bound(&bare), 3);
    }

    #[test]
    fn subchain_tests_are_constructible() {
        let test = special_chain_test(3, &[1, 3]);
        assert_eq!(test.program().threads[0].instructions.len(), 4);
    }
}
