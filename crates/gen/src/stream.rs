//! Streaming canonical-first enumeration of bounded litmus-test spaces.
//!
//! The materialize-then-dedup pipeline ([`crate::naive`] +
//! [`crate::canon::dedup`]) stores the raw bounded space before collapsing
//! it to symmetry orbits — already ~a million tests at the paper's own
//! Theorem 1 bounds, and hopeless one step past them (four accesses per
//! thread, fences, dependencies). This module inverts the order: it
//! enumerates the space lazily and emits a test **iff it is the canonical
//! leader of its own orbit** ([`crate::canon::is_leader`]), so the raw
//! space is never stored and downstream sweeps see exactly one
//! representative per orbit, in a deterministic order, from an
//! `Iterator<Item = LitmusTest>` whose live state is a single program
//! shape and one mixed-radix outcome counter.
//!
//! ## Why a leader check needs no seen-set
//!
//! Every orbit of the §2.3 symmetry group contains exactly one canonical
//! representative, and that representative uses first-use names: locations
//! `0, 1, …` in order of first appearance, registers `r1, r2, …` per
//! thread, and write values `1, 2, …` per location in program order. The
//! enumeration materialises candidates in exactly that naming convention,
//! so the canonical representative of every orbit in the bounded space is
//! itself visited, and `test == canonical(test)` — a pure, memory-free
//! predicate — keeps it and drops the rest.
//!
//! ## Pruning
//!
//! Visiting the raw space candidate-by-candidate would be wasteful, so
//! whole program *shapes* are classified before any outcome is
//! materialised (the program bytes form the prefix of the canonical
//! encoding, so permutation contests that the programs settle transfer to
//! every outcome):
//!
//! * shapes whose locations are not in global first-use order can contain
//!   no leader and are skipped without materialising anything;
//! * shapes whose identity-permutation encoding strictly beats every
//!   other thread permutation emit **all** their outcomes with no
//!   per-test canonicalization at all;
//! * only shapes with a permutation tie (symmetric programs) fall back to
//!   a per-candidate [`canon::is_leader`] check.

use mcm_core::{LitmusTest, Loc, Outcome, Program, Reg, RegExpr, ThreadId, Value};

use crate::canon;
use crate::naive::NaiveBounds;

/// Bounds of the streamed space: the naive Theorem 1 box, generalized past
/// it (up to four accesses per thread, optional fences, optional
/// `r - r + k` data dependencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamBounds {
    /// Maximum memory accesses per thread (Theorem 1: 3; this module
    /// supports going past it).
    pub max_accesses_per_thread: usize,
    /// Number of threads.
    pub threads: usize,
    /// Maximum distinct locations.
    pub max_locs: u8,
    /// Also enumerate an optional full fence between consecutive accesses.
    pub include_fences: bool,
    /// Also enumerate the paper's data-dependency idiom: a write may store
    /// `r - r + k` where `r` is the most recent preceding read of its
    /// thread (instead of the plain constant `k`).
    pub include_deps: bool,
}

impl Default for StreamBounds {
    fn default() -> Self {
        StreamBounds {
            max_accesses_per_thread: 3,
            threads: 2,
            max_locs: 4,
            include_fences: false,
            include_deps: false,
        }
    }
}

impl From<&NaiveBounds> for StreamBounds {
    fn from(bounds: &NaiveBounds) -> Self {
        StreamBounds {
            max_accesses_per_thread: bounds.max_accesses_per_thread,
            threads: bounds.threads,
            max_locs: bounds.max_locs,
            include_fences: bounds.include_fences,
            include_deps: false,
        }
    }
}

impl StreamBounds {
    /// The "one step past Theorem 1" space: four accesses per thread,
    /// fences and dependencies on, over `max_locs` locations.
    #[must_use]
    pub fn size4(max_locs: u8) -> Self {
        StreamBounds {
            max_accesses_per_thread: 4,
            max_locs,
            include_fences: true,
            include_deps: true,
            ..StreamBounds::default()
        }
    }
}

/// A disjoint 1-of-N slice of a leader stream, for splitting one sweep
/// across N processes (`--shard i/n`): shard `i` keeps exactly the
/// leaders whose **global leader index** is `≡ i (mod n)`. The stripes
/// are disjoint, cover the stream, and balance load even when leader
/// density varies along the enumeration; test names stay keyed to the
/// global index, so the union of all shards is byte-identical to the
/// unsharded stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shard {
    index: u32,
    count: u32,
}

impl Shard {
    /// A validated shard assignment: `index < count`, `count >= 1`.
    /// `Shard::new(0, 1)` is the whole stream.
    #[must_use]
    pub fn new(index: u32, count: u32) -> Option<Shard> {
        (count >= 1 && index < count).then_some(Shard { index, count })
    }

    /// Which stripe this process sweeps (0-based).
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of stripes.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the leader with this global index belongs to the shard.
    #[must_use]
    pub fn keeps(&self, leader_index: u64) -> bool {
        leader_index % u64::from(self.count) == u64::from(self.index)
    }
}

impl std::fmt::Display for Shard {
    /// The `i/n` notation the CLI and wire format use.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    /// Parses the `i/n` notation; rejects `i >= n` and `n == 0`.
    fn from_str(s: &str) -> Result<Shard, String> {
        let err = || format!("shard must be i/n with i < n, got {s:?}");
        let (index, count) = s.split_once('/').ok_or_else(err)?;
        let index: u32 = index.trim().parse().map_err(|_| err())?;
        let count: u32 = count.trim().parse().map_err(|_| err())?;
        Shard::new(index, count).ok_or_else(err)
    }
}

/// One access slot of a program shape. `fence_after` inserts a full fence
/// between this access and the next; `dep` (writes only) routes the value
/// through `r - r + k` where `r` is the latest preceding read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Access {
    is_write: bool,
    loc: u8,
    fence_after: bool,
    dep: bool,
}

type ThreadShape = Vec<Access>;

/// Advances a mixed-radix odometer with `radix` possibilities per digit;
/// `false` when it wraps past the last combination.
fn advance_odometer(combo: &mut [usize], radix: usize) -> bool {
    let mut pos = 0;
    loop {
        if pos == combo.len() {
            return false;
        }
        combo[pos] += 1;
        if combo[pos] < radix {
            return true;
        }
        combo[pos] = 0;
        pos += 1;
    }
}

/// Number of outcome candidates of a shape combination: each read may
/// expect the initial value or any write to its location.
fn outcome_product(shape: &[&ThreadShape]) -> u64 {
    let mut writes = [0u64; 256];
    for thread in shape {
        for access in thread.iter() {
            if access.is_write {
                writes[access.loc as usize] += 1;
            }
        }
    }
    let mut product = 1u64;
    for thread in shape {
        for access in thread.iter() {
            if !access.is_write {
                product *= writes[access.loc as usize] + 1;
            }
        }
    }
    product
}

/// All non-empty per-thread access sequences within the bounds.
fn thread_shapes(bounds: &StreamBounds) -> Vec<ThreadShape> {
    let mut all = Vec::new();
    let mut current: ThreadShape = Vec::new();
    fn recurse(bounds: &StreamBounds, current: &mut ThreadShape, all: &mut Vec<ThreadShape>) {
        if !current.is_empty() {
            all.push(current.clone());
        }
        if current.len() == bounds.max_accesses_per_thread {
            return;
        }
        let reads_so_far = current.iter().filter(|a| !a.is_write).count();
        for is_write in [false, true] {
            for loc in 0..bounds.max_locs {
                let deps: &[bool] = if bounds.include_deps && is_write && reads_so_far > 0 {
                    &[false, true]
                } else {
                    &[false]
                };
                for &dep in deps {
                    let fences: &[bool] = if bounds.include_fences && !current.is_empty() {
                        &[false, true]
                    } else {
                        &[false]
                    };
                    for &fence_before in fences {
                        if fence_before {
                            let last = current.len() - 1;
                            current[last].fence_after = true;
                        }
                        current.push(Access {
                            is_write,
                            loc,
                            fence_after: false,
                            dep,
                        });
                        recurse(bounds, current, all);
                        current.pop();
                        if fence_before {
                            let last = current.len() - 1;
                            current[last].fence_after = false;
                        }
                    }
                }
            }
        }
    }
    recurse(bounds, &mut current, &mut all);
    all
}

/// Locations must appear in global first-use order `0, 1, 2, …` — the
/// canonical renaming always produces this, so any shape violating it
/// contains no orbit leader. (Thread order is *not* pruned here: which
/// thread permutation wins depends on the full renamed encoding, which
/// [`classify`] decides exactly.)
fn locs_first_use_ordered(shape: &[&ThreadShape]) -> bool {
    let mut next = 0u8;
    for thread in shape {
        for access in thread.iter() {
            if access.loc > next {
                return false;
            }
            if access.loc == next {
                next += 1;
            }
        }
    }
    true
}

/// How a shape's outcome space relates to orbit leadership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShapeMode {
    /// The identity permutation strictly wins on program bytes alone:
    /// every outcome of this shape is a leader.
    AllLeaders,
    /// Some permutation ties (or the materialization convention failed to
    /// reproduce the identity renaming): each candidate is checked with
    /// [`canon::is_leader`] individually.
    CheckEach,
}

/// A shape together with everything needed to materialise its outcomes.
struct ShapeState {
    program: Program,
    /// Values stored to each location, in program order.
    writes_per_loc: Vec<Vec<Value>>,
    /// `(thread, register, location)` of each read, in program order.
    read_slots: Vec<(u8, Reg, u8)>,
    mode: ShapeMode,
    /// Mixed-radix counter over read expectations; `None` once exhausted.
    choice: Option<Vec<usize>>,
}

impl ShapeState {
    /// Number of outcome candidates of this shape.
    fn outcome_total(&self) -> u64 {
        self.read_slots
            .iter()
            .map(|&(_, _, loc)| self.writes_per_loc[loc as usize].len() as u64 + 1)
            .product()
    }

    /// Builds the test for the current choice and advances the counter.
    fn next_candidate(&mut self, name: impl Into<String>) -> Option<LitmusTest> {
        let choice = self.choice.as_mut()?;
        let mut outcome = Outcome::new();
        for (slot, &(thread, reg, loc)) in self.read_slots.iter().enumerate() {
            let expected = match choice[slot] {
                0 => Value::INIT,
                n => self.writes_per_loc[loc as usize][n - 1],
            };
            outcome = outcome.constrain(ThreadId(thread), reg, expected);
        }
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == choice.len() {
                self.choice = None;
                break;
            }
            let radix = self.writes_per_loc[self.read_slots[pos].2 as usize].len() + 1;
            choice[pos] += 1;
            if choice[pos] < radix {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
        Some(
            LitmusTest::new(name, self.program.clone(), outcome)
                .expect("streamed shapes materialise valid tests"),
        )
    }
}

/// Per-location write values, in program order.
type WritesPerLoc = Vec<Vec<Value>>;
/// `(thread, register, location)` of each read, in program order.
type ReadSlots = Vec<(u8, Reg, u8)>;

/// Materialises a shape's base program in the canonical naming convention:
/// per-thread registers `r1, r2, …` in read order, per-location write
/// values `1, 2, …` in program order.
fn base_program(shape: &[&ThreadShape]) -> (Program, WritesPerLoc, ReadSlots) {
    let mut writes_per_loc: Vec<Vec<Value>> = vec![Vec::new(); 256];
    let mut next_value_per_loc = vec![1i64; 256];
    let mut read_slots: Vec<(u8, Reg, u8)> = Vec::new();
    let mut builder = Program::builder();
    for (t, thread) in shape.iter().enumerate() {
        builder = builder.thread();
        let mut next_reg = 1u8;
        let mut last_read: Option<Reg> = None;
        for access in thread.iter() {
            let loc = Loc(access.loc);
            if access.is_write {
                let value = Value(next_value_per_loc[access.loc as usize]);
                next_value_per_loc[access.loc as usize] += 1;
                writes_per_loc[access.loc as usize].push(value);
                builder = if access.dep {
                    let src = last_read.expect("dep writes follow a read");
                    builder.write_expr(loc, RegExpr::dep_const(src, value))
                } else {
                    builder.write(loc, value)
                };
            } else {
                let reg = Reg(next_reg);
                next_reg += 1;
                builder = builder.read(loc, reg);
                read_slots.push((u8::try_from(t).expect("thread count fits u8"), reg, access.loc));
                last_read = Some(reg);
            }
            if access.fence_after {
                builder = builder.fence();
            }
        }
    }
    let program = builder.build().expect("streamed shapes are valid programs");
    (program, writes_per_loc, read_slots)
}

/// Classifies a shape: `None` means no outcome can be a leader.
fn classify(shape: &[&ThreadShape]) -> Option<ShapeState> {
    if !locs_first_use_ordered(shape) {
        return None;
    }
    let (program, writes_per_loc, read_slots) = base_program(shape);
    // A representative test (all reads expect the initial value) fixes the
    // outcome-independent parts of the canonical machinery: the value plan
    // and the per-permutation program renamings.
    let mut rep_outcome = Outcome::new();
    for &(thread, reg, _) in &read_slots {
        rep_outcome = rep_outcome.constrain(ThreadId(thread), reg, Value::INIT);
    }
    let rep = LitmusTest::new("rep", program.clone(), rep_outcome)
        .expect("streamed shapes materialise valid tests");
    let plan = canon::value_plan(&rep);
    let threads = shape.len();
    let identity: Vec<usize> = (0..threads).collect();
    let mut identity_encoding: Option<Vec<u8>> = None;
    let mut best_other: Option<Vec<u8>> = None;
    let mut convention_holds = true;
    for perm in canon::thread_permutations(threads) {
        let (renamed, _) = canon::apply_renaming(&rep, &perm, &plan);
        let encoding = canon::encode_program(&renamed);
        if perm == identity {
            convention_holds = renamed == program;
            identity_encoding = Some(encoding);
        } else if best_other.as_ref().is_none_or(|b| encoding < *b) {
            best_other = Some(encoding);
        }
    }
    let identity_encoding = identity_encoding.expect("identity permutation always enumerated");
    let mode = if !convention_holds {
        // The materialization convention did not reproduce the identity
        // renaming (e.g. the value plan degraded below per-location mode);
        // fall back to exact per-candidate checks rather than reasoning
        // about encodings.
        ShapeMode::CheckEach
    } else {
        match best_other {
            // Another permutation strictly wins on program bytes: its full
            // encoding wins for every outcome, so no leader lives here.
            Some(other) if other < identity_encoding => return None,
            // A permutation ties on program bytes (symmetric threads): the
            // outcome bytes decide, candidate by candidate.
            Some(other) if other == identity_encoding => ShapeMode::CheckEach,
            _ => ShapeMode::AllLeaders,
        }
    };
    let choice = Some(vec![0usize; read_slots.len()]);
    Some(ShapeState {
        program,
        writes_per_loc,
        read_slots,
        mode,
        choice,
    })
}

/// A bounded-memory iterator over the orbit leaders of a streamed space.
///
/// Yields exactly one test per symmetry orbit of the bounded space — the
/// canonical representative — without ever materialising the raw space.
/// Live state is one program shape plus a mixed-radix outcome counter.
pub struct LeaderStream {
    shapes: Vec<ThreadShape>,
    /// Odometer over `shapes` (one digit per thread); `None` = exhausted.
    combo: Option<Vec<usize>>,
    current: Option<ShapeState>,
    /// Leaders yielded *by this stream* (shard-filtered).
    emitted: u64,
    /// Leaders encountered in the full stream, including those skipped by
    /// the shard filter — the global leader index used for test names.
    leaders_seen: u64,
    raw_visited: u64,
    shard: Option<Shard>,
}

impl LeaderStream {
    fn new(bounds: &StreamBounds, shard: Option<Shard>) -> Self {
        let shapes = thread_shapes(bounds);
        let combo = (bounds.threads > 0 && !shapes.is_empty())
            .then(|| vec![0usize; bounds.threads]);
        LeaderStream {
            shapes,
            combo,
            current: None,
            emitted: 0,
            leaders_seen: 0,
            raw_visited: 0,
            shard,
        }
    }

    /// Tests of the raw space visited (or skipped in bulk) so far —
    /// leaders plus everything the leader check rejected.
    #[must_use]
    pub fn raw_visited(&self) -> u64 {
        self.raw_visited
    }

    /// Leaders yielded so far (by this shard, when one is set).
    #[must_use]
    pub fn leaders_emitted(&self) -> u64 {
        self.emitted
    }

    /// Leaders of the full stream encountered so far, including those the
    /// shard filter skipped (equals [`LeaderStream::leaders_emitted`] on
    /// an unsharded stream).
    #[must_use]
    pub fn leaders_seen(&self) -> u64 {
        self.leaders_seen
    }

    /// The shard assignment, when this stream sweeps a slice.
    #[must_use]
    pub fn shard(&self) -> Option<Shard> {
        self.shard
    }

    /// The current shape combination, or `None` when exhausted.
    fn current_shape(&self) -> Option<Vec<&ThreadShape>> {
        let combo = self.combo.as_ref()?;
        Some(combo.iter().map(|&i| &self.shapes[i]).collect())
    }

    /// Advances the odometer; returns `false` when the space is exhausted.
    fn advance_combo(&mut self) -> bool {
        let Some(combo) = self.combo.as_mut() else {
            return false;
        };
        if advance_odometer(combo, self.shapes.len()) {
            true
        } else {
            self.combo = None;
            false
        }
    }
}

impl Iterator for LeaderStream {
    type Item = LitmusTest;

    fn next(&mut self) -> Option<LitmusTest> {
        loop {
            if let Some(state) = &mut self.current {
                while state.choice.is_some() {
                    let name = format!("stream-{}", self.leaders_seen);
                    let test = state
                        .next_candidate(name)
                        .expect("choice was present");
                    self.raw_visited += 1;
                    let keep = match state.mode {
                        ShapeMode::AllLeaders => true,
                        ShapeMode::CheckEach => canon::is_leader(&test),
                    };
                    if keep {
                        let global = self.leaders_seen;
                        self.leaders_seen += 1;
                        if self.shard.is_none_or(|s| s.keeps(global)) {
                            self.emitted += 1;
                            return Some(test);
                        }
                    }
                }
                self.current = None;
                if !self.advance_combo() {
                    return None;
                }
            }
            // Find the next shape that can contain a leader.
            loop {
                let shape = self.current_shape()?;
                match classify(&shape) {
                    Some(state) => {
                        self.current = Some(state);
                        break;
                    }
                    None => {
                        // Account for the skipped candidates without
                        // materialising them.
                        self.raw_visited += outcome_product(&shape);
                        if !self.advance_combo() {
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// Streams the orbit leaders of `bounds` in a deterministic order.
#[must_use]
pub fn leaders(bounds: &StreamBounds) -> LeaderStream {
    LeaderStream::new(bounds, None)
}

/// Streams only the leaders of `bounds` belonging to `shard` — one of N
/// disjoint stripes of the same deterministic enumeration. Running every
/// shard `0/n .. (n-1)/n` yields exactly the tests (and names) of
/// [`leaders`], partitioned.
#[must_use]
pub fn leaders_sharded(bounds: &StreamBounds, shard: Shard) -> LeaderStream {
    LeaderStream::new(bounds, Some(shard))
}

/// Counts the orbit leaders of `bounds` without materialising the
/// unambiguous ones: shapes whose identity permutation strictly wins
/// contribute their whole outcome product in one step; only permutation
/// ties are checked test by test.
#[must_use]
pub fn count_leaders(bounds: &StreamBounds) -> u64 {
    let mut total = 0u64;
    for_each_shape(bounds, |state| match state.mode {
        ShapeMode::AllLeaders => total += state.outcome_total(),
        ShapeMode::CheckEach => {
            let mut state = state;
            while state.choice.is_some() {
                let test = state.next_candidate("count").expect("choice present");
                if canon::is_leader(&test) {
                    total += 1;
                }
            }
        }
    });
    total
}

/// Counts the canonical *programs* (shapes modulo symmetry, ignoring
/// outcomes) within `bounds`.
#[must_use]
pub fn count_leader_programs(bounds: &StreamBounds) -> u64 {
    let mut total = 0u64;
    for_each_shape(bounds, |state| {
        // A shape is a canonical program iff its identity renaming is a
        // fixed point that no other permutation strictly beats — exactly
        // the shapes `classify` keeps in either mode, except conventions
        // that failed to reproduce the identity renaming.
        if state.mode == ShapeMode::AllLeaders || canon::is_leader(&leader_probe(&state)) {
            total += 1;
        }
    });
    total
}

/// A probe test for program-level leadership: the all-initial outcome.
fn leader_probe(state: &ShapeState) -> LitmusTest {
    let mut outcome = Outcome::new();
    for &(thread, reg, _) in &state.read_slots {
        outcome = outcome.constrain(ThreadId(thread), reg, Value::INIT);
    }
    LitmusTest::new("probe", state.program.clone(), outcome)
        .expect("streamed shapes materialise valid tests")
}

/// The raw (symmetry-unreduced) size of the bounded space — what a
/// materializing enumeration would have to store.
#[must_use]
pub fn count_raw(bounds: &StreamBounds) -> u64 {
    try_count_raw(bounds, u64::MAX).expect("uncapped count never bails")
}

/// [`count_raw`] that bails out with `None` when the number of shape
/// combinations exceeds `combo_cap` — past Theorem 1 with fences and
/// dependencies even *counting* the raw space by walking its shapes is
/// infeasible, which is rather the point of streaming it.
#[must_use]
pub fn try_count_raw(bounds: &StreamBounds, combo_cap: u64) -> Option<u64> {
    let shapes = thread_shapes(bounds);
    if bounds.threads == 0 || shapes.is_empty() {
        return Some(0);
    }
    if (shapes.len() as u64).checked_pow(u32::try_from(bounds.threads).ok()?)? > combo_cap {
        return None;
    }
    let mut total = 0u64;
    let mut combo = vec![0usize; bounds.threads];
    loop {
        let shape: Vec<&ThreadShape> = combo.iter().map(|&i| &shapes[i]).collect();
        total += outcome_product(&shape);
        if !advance_odometer(&mut combo, shapes.len()) {
            return Some(total);
        }
    }
}

/// Drives `f` over every shape that can contain a leader.
fn for_each_shape(bounds: &StreamBounds, mut f: impl FnMut(ShapeState)) {
    let shapes = thread_shapes(bounds);
    if bounds.threads == 0 || shapes.is_empty() {
        return;
    }
    let mut combo = vec![0usize; bounds.threads];
    loop {
        let shape: Vec<&ThreadShape> = combo.iter().map(|&i| &shapes[i]).collect();
        if let Some(state) = classify(&shape) {
            f(state);
        }
        if !advance_odometer(&mut combo, shapes.len()) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon;
    use crate::naive;

    fn small_bounds() -> StreamBounds {
        StreamBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
            include_deps: false,
        }
    }

    #[test]
    fn every_streamed_test_is_its_own_canonical_form() {
        for test in leaders(&small_bounds()) {
            assert!(canon::is_leader(&test), "{} is not a leader:\n{test}", test.name());
        }
    }

    #[test]
    fn streamed_leaders_match_dedup_of_the_raw_space() {
        // The leader set must be exactly one representative per orbit of
        // the raw materialized space: same orbit fingerprints, no more,
        // no fewer.
        let bounds = small_bounds();
        let raw = naive::enumerate_tests_raw(
            &NaiveBounds {
                max_accesses_per_thread: bounds.max_accesses_per_thread,
                threads: bounds.threads,
                max_locs: bounds.max_locs,
                include_fences: bounds.include_fences,
            },
            usize::MAX,
        );
        let orbits = canon::dedup(&raw);
        let mut expected: Vec<u64> = orbits.fingerprints.clone();
        expected.sort_unstable();
        let mut streamed: Vec<u64> = leaders(&bounds).map(|t| canon::fingerprint(&t)).collect();
        streamed.sort_unstable();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn count_leaders_matches_the_stream() {
        let bounds = small_bounds();
        assert_eq!(count_leaders(&bounds), leaders(&bounds).count() as u64);
    }

    #[test]
    fn fences_and_deps_extend_the_space() {
        let base = small_bounds();
        let with_fences = StreamBounds {
            include_fences: true,
            ..base
        };
        let with_deps = StreamBounds {
            include_deps: true,
            ..base
        };
        assert!(count_leaders(&with_fences) > count_leaders(&base));
        assert!(count_leaders(&with_deps) > count_leaders(&base));
        assert!(count_raw(&with_fences) > count_raw(&base));
    }

    #[test]
    fn fenced_and_dependent_leaders_are_canonical_fixed_points() {
        let bounds = StreamBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: true,
            include_deps: true,
        };
        let mut saw_fence = false;
        let mut saw_dep = false;
        for test in leaders(&bounds) {
            assert!(canon::is_leader(&test), "{test}");
            let rendered = test.program().to_string();
            saw_fence |= rendered.contains("fence");
            saw_dep |= rendered.contains(" - ");
        }
        assert!(saw_fence, "no fenced leader was streamed");
        assert!(saw_dep, "no dependency leader was streamed");
    }

    #[test]
    fn raw_visited_accounts_for_the_whole_space() {
        let bounds = small_bounds();
        let mut stream = leaders(&bounds);
        let mut kept = 0u64;
        while stream.next().is_some() {
            kept += 1;
        }
        assert_eq!(stream.leaders_emitted(), kept);
        assert_eq!(stream.raw_visited(), count_raw(&bounds));
        assert!(kept < stream.raw_visited());
    }

    #[test]
    fn four_access_bounds_stream_without_materializing() {
        // One step past Theorem 1: the iterator must hand out tests with
        // seven or eight accesses while holding only one shape live.
        let bounds = StreamBounds {
            max_accesses_per_thread: 4,
            threads: 2,
            max_locs: 2,
            include_fences: false,
            include_deps: false,
        };
        let mut long_tests = 0;
        for test in leaders(&bounds).take(2000) {
            assert!(test.program().access_count() <= 8);
            if test.program().access_count() > 6 {
                long_tests += 1;
            }
            assert!(canon::is_leader(&test));
        }
        assert!(long_tests > 0, "no beyond-Theorem-1 test was streamed");
    }

    #[test]
    fn leader_names_are_sequential() {
        let names: Vec<String> = leaders(&small_bounds())
            .take(3)
            .map(|t| t.name().to_string())
            .collect();
        assert_eq!(names, vec!["stream-0", "stream-1", "stream-2"]);
    }

    #[test]
    fn shards_partition_the_leader_stream() {
        let bounds = small_bounds();
        let full: Vec<(String, u64)> = leaders(&bounds)
            .map(|t| (t.name().to_string(), canon::fingerprint(&t)))
            .collect();
        for n in [1u32, 2, 3] {
            let mut union: Vec<(String, u64)> = Vec::new();
            for i in 0..n {
                let shard = Shard::new(i, n).unwrap();
                let slice: Vec<(String, u64)> = leaders_sharded(&bounds, shard)
                    .map(|t| (t.name().to_string(), canon::fingerprint(&t)))
                    .collect();
                // Each shard keeps exactly the indices ≡ i (mod n), with
                // names still keyed to the global leader index.
                assert_eq!(
                    slice,
                    full.iter()
                        .enumerate()
                        .filter(|(idx, _)| shard.keeps(*idx as u64))
                        .map(|(_, t)| t.clone())
                        .collect::<Vec<_>>(),
                    "shard {shard} differs from the filtered full stream"
                );
                union.extend(slice);
            }
            union.sort();
            let mut expected = full.clone();
            expected.sort();
            assert_eq!(union, expected, "{n}-way shards must partition the stream");
        }
    }

    #[test]
    fn sharded_stream_counts_both_cursors() {
        let bounds = small_bounds();
        let total = leaders(&bounds).count() as u64;
        let mut stream = leaders_sharded(&bounds, Shard::new(1, 2).unwrap());
        let kept = stream.by_ref().count() as u64;
        assert_eq!(stream.leaders_seen(), total);
        assert_eq!(stream.leaders_emitted(), kept);
        assert_eq!(kept, total / 2);
        assert_eq!(stream.shard(), Shard::new(1, 2));
    }

    #[test]
    fn shard_notation_parses_and_rejects_nonsense() {
        let shard: Shard = "1/4".parse().unwrap();
        assert_eq!((shard.index(), shard.count()), (1, 4));
        assert_eq!(shard.to_string(), "1/4");
        assert_eq!(" 0 / 1 ".trim().parse::<Shard>().unwrap(), Shard::new(0, 1).unwrap());
        for bad in ["", "2", "2/2", "3/2", "1/0", "a/b", "1/2/3", "-1/2"] {
            assert!(bad.parse::<Shard>().is_err(), "{bad:?} must not parse");
        }
        assert!(Shard::new(0, 0).is_none());
        assert!(Shard::new(2, 2).is_none());
    }
}
