//! # mcm-gen
//!
//! Litmus-test generation, implementing §3 of the paper:
//!
//! * [`segment`] — local segments (type × connector × address relation)
//!   and their enumeration per predicate set;
//! * [`template`] — the seven templates of Theorem 1's proof (Figure 2),
//!   each materialising a two-thread, ≤ six-access litmus test from a
//!   critical segment;
//! * [`suite`] — the full comparison suite (§3.4);
//! * [`count`] — Corollary 1 (230 tests with dependencies, 124 without);
//! * [`naive`] — the bounded-enumeration baseline (≈ a million tests) the
//!   paper improves on by orders of magnitude;
//! * [`stream`] — streaming canonical-first enumeration: an iterator
//!   yielding only symmetry-orbit leaders, over bounds generalized past
//!   Theorem 1 (four accesses per thread, fences, dependency idioms),
//!   without ever materialising the raw space;
//! * [`local`] — the §3.3 bound on non-memory instructions and the special
//!   fence-chain family showing the bound is predicate-dependent;
//! * [`canon`] — canonical forms, fingerprints and suite deduplication
//!   under the §2.3 symmetries (thread permutation, location/register/
//!   value renaming).
//!
//! ## Example
//!
//! ```
//! use mcm_gen::{count, suite};
//!
//! assert_eq!(count::paper_bound(true), 230);
//! assert_eq!(count::paper_bound(false), 124);
//! let tests = suite::template_suite(false);
//! assert!(tests.len() <= 124);
//! assert!(tests.tests.iter().all(|t| t.program().access_count() <= 6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod count;
pub mod emit;
pub mod local;
pub mod naive;
pub mod segment;
pub mod stream;
pub mod suite;
pub mod template;

pub use canon::{canonicalize, fingerprint, CanonicalSuite};
pub use stream::{LeaderStream, Shard, StreamBounds};
pub use segment::{AccessKind, AddrRel, Connector, Segment, SegmentType};
pub use suite::{template_suite, template_suite_extended, TestSuite};
