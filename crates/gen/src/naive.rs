//! Naive bounded enumeration of litmus tests (the baseline §3.4 compares
//! against).
//!
//! Enumerates every two-thread program within the Theorem 1 bounds (up to
//! three memory accesses per thread) together with every value-shape
//! outcome. The paper reports "approximately a million tests even without
//! dependencies" for this strategy versus 124/230 template instantiations
//! — this module reproduces that comparison.
//!
//! The symmetry quotient is delegated to [`crate::stream`]: the canonical
//! counts and enumerations here are defined as **orbit leaders** of the
//! full §2.3 group (thread permutation, location/register renaming and
//! per-location value renaming), not the looser shape-level filter earlier
//! revisions used — that filter was blind to fences and value symmetry
//! and therefore under-deduplicated, disagreeing with
//! [`crate::canon::canonical`].

use mcm_core::{LitmusTest, Loc, Outcome, Program, Reg, ThreadId, Value};

use crate::stream::{self, StreamBounds};

/// Bounds for the naive enumeration.
#[derive(Clone, Copy, Debug)]
pub struct NaiveBounds {
    /// Maximum memory accesses per thread (Theorem 1: 3).
    pub max_accesses_per_thread: usize,
    /// Number of threads (Theorem 1: 2).
    pub threads: usize,
    /// Maximum distinct locations (4 suffices for six accesses).
    pub max_locs: u8,
    /// Whether to also enumerate an optional full fence between
    /// consecutive accesses.
    pub include_fences: bool,
}

impl Default for NaiveBounds {
    fn default() -> Self {
        NaiveBounds {
            max_accesses_per_thread: 3,
            threads: 2,
            max_locs: 4,
            include_fences: false,
        }
    }
}

/// One access in a naive program shape: `(is_write, location, fence_after)`.
type Shape = Vec<Vec<(bool, u8, bool)>>;

fn thread_shapes(bounds: &NaiveBounds) -> Vec<Vec<(bool, u8, bool)>> {
    let mut all = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        bounds: &NaiveBounds,
        current: &mut Vec<(bool, u8, bool)>,
        all: &mut Vec<Vec<(bool, u8, bool)>>,
    ) {
        if !current.is_empty() {
            all.push(current.clone());
        }
        if current.len() == bounds.max_accesses_per_thread {
            return;
        }
        for is_write in [false, true] {
            for loc in 0..bounds.max_locs {
                let fences = if bounds.include_fences && !current.is_empty() {
                    vec![false, true]
                } else {
                    vec![false]
                };
                for fence_before in fences {
                    if fence_before {
                        let last = current.len() - 1;
                        current[last].2 = true;
                    }
                    current.push((is_write, loc, false));
                    recurse(bounds, current, all);
                    current.pop();
                    if fence_before {
                        let last = current.len() - 1;
                        current[last].2 = false;
                    }
                }
            }
        }
    }
    recurse(bounds, &mut current, &mut all);
    all
}

/// Number of outcome choices: every read may expect the initial value or
/// the value of any write to its location.
fn outcome_count(shape: &Shape) -> u64 {
    let mut writes_per_loc = [0u64; 256];
    for thread in shape {
        for &(is_write, loc, _) in thread {
            if is_write {
                writes_per_loc[loc as usize] += 1;
            }
        }
    }
    let mut count = 1u64;
    for thread in shape {
        for &(is_write, loc, _) in thread {
            if !is_write {
                count *= writes_per_loc[loc as usize] + 1;
            }
        }
    }
    count
}

/// Counts the canonical naive tests within `bounds` without materialising
/// the raw space: one count per **orbit leader** of the full §2.3
/// symmetry group, exactly the tests [`enumerate_tests`] yields.
#[must_use]
pub fn count_tests(bounds: &NaiveBounds) -> u64 {
    stream::count_leaders(&StreamBounds::from(bounds))
}

/// Counts the naive tests *without* any symmetry reduction — the paper's
/// "approximately million tests even without dependencies" figure.
#[must_use]
pub fn count_tests_raw(bounds: &NaiveBounds) -> u64 {
    let threads = thread_shapes(bounds);
    let mut total = 0u64;
    let mut stack: Shape = Vec::new();
    fn recurse(threads: &[Vec<(bool, u8, bool)>], remaining: usize, stack: &mut Shape, total: &mut u64) {
        if remaining == 0 {
            *total += outcome_count(stack);
            return;
        }
        for t in threads {
            stack.push(t.clone());
            recurse(threads, remaining - 1, stack, total);
            stack.pop();
        }
    }
    recurse(&threads, bounds.threads, &mut stack, &mut total);
    total
}

/// Counts only the canonical program shapes (ignoring outcomes), i.e. one
/// per program orbit under the §2.3 symmetries.
#[must_use]
pub fn count_programs(bounds: &NaiveBounds) -> u64 {
    stream::count_leader_programs(&StreamBounds::from(bounds))
}

/// Materialises the canonical naive tests: the orbit leaders of the
/// bounded space, in the deterministic order of [`stream::leaders`]. Only
/// sensible for small bounds or small `limit`s.
#[must_use]
pub fn enumerate_tests(bounds: &NaiveBounds, limit: usize) -> Vec<LitmusTest> {
    stream::leaders(&StreamBounds::from(bounds)).take(limit).collect()
}

/// Like [`enumerate_tests`] but **without** any symmetry reduction: every
/// location labelling and thread ordering is materialised. This is the
/// truly naive baseline ([`count_tests_raw`]); `mcm_gen::canon::dedup`
/// recovers the reduction lazily performed by the leader stream, which the
/// `canonical_dedup` benchmark demonstrates.
#[must_use]
pub fn enumerate_tests_raw(bounds: &NaiveBounds, limit: usize) -> Vec<LitmusTest> {
    let threads = thread_shapes(bounds);
    let mut tests = Vec::new();
    let mut stack: Shape = Vec::new();
    enumerate_rec(&threads, bounds.threads, &mut stack, &mut tests, limit);
    tests
}

fn enumerate_rec(
    threads: &[Vec<(bool, u8, bool)>],
    remaining: usize,
    stack: &mut Shape,
    tests: &mut Vec<LitmusTest>,
    limit: usize,
) {
    if tests.len() >= limit {
        return;
    }
    if remaining == 0 {
        materialise(stack, tests, limit);
        return;
    }
    for t in threads {
        stack.push(t.clone());
        enumerate_rec(threads, remaining - 1, stack, tests, limit);
        stack.pop();
        if tests.len() >= limit {
            return;
        }
    }
}

fn materialise(shape: &Shape, tests: &mut Vec<LitmusTest>, limit: usize) {
    // Assign write values and collect read slots.
    let mut writes_per_loc: Vec<Vec<Value>> = vec![Vec::new(); 256];
    let mut next_value = 1i64;
    for thread in shape.iter() {
        for &(is_write, loc, _) in thread {
            if is_write {
                writes_per_loc[loc as usize].push(Value(next_value));
                next_value += 1;
            }
        }
    }
    // Candidate expectations per read, in (thread, access) order.
    let mut read_slots: Vec<(usize, usize, u8)> = Vec::new();
    for (t, thread) in shape.iter().enumerate() {
        for (i, &(is_write, loc, _)) in thread.iter().enumerate() {
            if !is_write {
                read_slots.push((t, i, loc));
            }
        }
    }
    let mut choice = vec![0usize; read_slots.len()];
    loop {
        if tests.len() >= limit {
            return;
        }
        build_test(shape, &writes_per_loc, &read_slots, &choice, tests);
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == read_slots.len() {
                return;
            }
            let radix = writes_per_loc[read_slots[pos].2 as usize].len() + 1;
            choice[pos] += 1;
            if choice[pos] < radix {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

fn build_test(
    shape: &Shape,
    writes_per_loc: &[Vec<Value>],
    read_slots: &[(usize, usize, u8)],
    choice: &[usize],
    tests: &mut Vec<LitmusTest>,
) {
    let mut builder = Program::builder();
    let mut outcome = Outcome::new();
    let mut next_value = 1i64;
    let mut next_reg = 1u8;
    let mut slot = 0usize;
    for (t, thread) in shape.iter().enumerate() {
        builder = builder.thread();
        for &(is_write, loc, fence_after) in thread {
            if is_write {
                builder = builder.write(Loc(loc), Value(next_value));
                next_value += 1;
            } else {
                let reg = Reg(next_reg);
                next_reg += 1;
                builder = builder.read(Loc(loc), reg);
                let candidates = &writes_per_loc[loc as usize];
                let expected = if choice[slot] == 0 {
                    Value::INIT
                } else {
                    candidates[choice[slot] - 1]
                };
                debug_assert_eq!(read_slots[slot].0, t);
                outcome = outcome.constrain(ThreadId(t as u8), reg, expected);
                slot += 1;
            }
            if fence_after {
                builder = builder.fence();
            }
        }
    }
    let program = builder.build().expect("naive shapes are valid programs");
    let name = format!("naive-{}", tests.len());
    tests.push(LitmusTest::new(name, program, outcome).expect("constrained all reads"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon;

    #[test]
    fn tiny_bounds_count_by_hand() {
        // 1 thread, 1 access, 1 location: orbits are R0 (read the initial
        // value) and W0.
        let bounds = NaiveBounds {
            max_accesses_per_thread: 1,
            threads: 1,
            max_locs: 1,
            include_fences: false,
        };
        assert_eq!(count_programs(&bounds), 2);
        // R0 has one outcome (init); W0 has one (no reads): 2 tests.
        assert_eq!(count_tests(&bounds), 2);
    }

    #[test]
    fn enumeration_matches_count_on_small_bounds() {
        let bounds = NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
        };
        let count = count_tests(&bounds);
        let tests = enumerate_tests(&bounds, usize::MAX);
        assert_eq!(tests.len() as u64, count);
        // Every materialised test is well-formed (constructor validated).
        for test in &tests {
            assert!(test.program().access_count() <= 4);
        }
    }

    #[test]
    fn enumerated_tests_are_orbit_leaders() {
        // The canonical enumeration is exactly the leader set: dedup finds
        // nothing left to collapse, and every test is a canon fixed point.
        let bounds = NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: true,
        };
        let tests = enumerate_tests(&bounds, usize::MAX);
        let orbits = canon::dedup(&tests);
        assert_eq!(orbits.len(), tests.len(), "leader set must be dedup-free");
        for test in &tests {
            assert!(canon::is_leader(test), "{}", test.name());
        }
    }

    #[test]
    fn leader_quotient_is_sharper_than_the_old_shape_filter() {
        // The retired shape-level filter (location renaming + fence-blind
        // thread sort) kept 41 tests on these bounds; the true §2.3
        // quotient — which also sees value symmetry and fences — keeps
        // fewer, and exactly matches dedup of the raw space.
        let bounds = NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
        };
        let raw = enumerate_tests_raw(&bounds, usize::MAX);
        let orbits = canon::dedup(&raw);
        assert_eq!(count_tests(&bounds), orbits.len() as u64);
    }

    #[test]
    fn default_bounds_are_order_of_magnitude_million() {
        // The paper: "approximately million tests even without
        // dependencies" — that is the raw, symmetry-unreduced count.
        let raw = count_tests_raw(&NaiveBounds::default());
        assert!(raw > 100_000, "got {raw}");
        assert!(raw < 100_000_000, "got {raw}");
    }

    #[test]
    fn fences_increase_the_count() {
        let bounds = NaiveBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
        };
        let without = count_tests(&bounds);
        let with = count_tests(&NaiveBounds {
            include_fences: true,
            ..bounds
        });
        assert!(with > without);
    }
}
