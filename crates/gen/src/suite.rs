//! Materialising the complete template suite (§3.4).

use std::collections::HashSet;

use mcm_core::LitmusTest;

use crate::count;
use crate::segment::{AddrRel, Segment, SegmentType};
use crate::template;

/// A generated comparison suite.
#[derive(Clone, Debug)]
pub struct TestSuite {
    /// The materialised tests (deduplicated).
    pub tests: Vec<LitmusTest>,
    /// Whether dependency connectors were enumerated.
    pub with_deps: bool,
    /// The Corollary 1 template-slot bound for this predicate set
    /// (230 with dependencies, 124 without) — an over-approximation of
    /// `tests.len()` because geometrically impossible slots and duplicate
    /// instantiations are dropped.
    pub corollary1_bound: u64,
}

impl TestSuite {
    /// Looks a test up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&LitmusTest> {
        self.tests.iter().find(|t| t.name() == name)
    }

    /// Number of tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the suite is empty (never, in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }
}

/// Instantiates all seven templates over all segment combinations for the
/// paper's predicate set (with or without `DataDep`), dropping
/// geometrically impossible slots and structurally duplicate tests.
///
/// §4.2 uses the `with_deps = true` suite to compare the 90 digit models;
/// the `false` suite suffices for the 36 dependency-free models of
/// Figure 4.
#[must_use]
pub fn template_suite(with_deps: bool) -> TestSuite {
    template_suite_extended(with_deps, false)
}

/// Like [`template_suite`] but optionally enumerating control-dependency
/// connectors as well — required to contrast models whose must-not-reorder
/// function mentions `ControlDep` (full RMO vs its data-dep projection
/// M1032, for instance). The paper's tool left this unimplemented.
#[must_use]
pub fn template_suite_extended(with_deps: bool, with_ctrl: bool) -> TestSuite {
    let rr = Segment::enumerate_extended(SegmentType::ReadRead, with_deps, with_ctrl);
    let rw = Segment::enumerate_extended(SegmentType::ReadWrite, with_deps, with_ctrl);
    let wr = Segment::enumerate_extended(SegmentType::WriteRead, with_deps, with_ctrl);
    let ww = Segment::enumerate_extended(SegmentType::WriteWrite, with_deps, with_ctrl);

    let mut tests: Vec<LitmusTest> = Vec::new();
    let mut seen: HashSet<(mcm_core::Program, String)> = HashSet::new();
    let mut push = |test: Option<LitmusTest>| {
        if let Some(test) = test {
            let key = (test.program().clone(), test.outcome().to_string());
            if seen.insert(key) {
                tests.push(test);
            }
        }
    };

    for &s in &rw {
        push(template::case1(s));
    }
    for &s in &ww {
        push(template::case2(s));
    }
    for &r in &rr {
        for &w in &ww {
            push(template::case3a(r, w));
        }
        for &a in &wr {
            for &b in &rw {
                push(template::case3b(r, a, b));
            }
        }
    }
    for &s in &wr {
        push(template::case4(s));
    }
    for &s in &wr {
        if s.addr_rel == AddrRel::Same {
            for &r in &rr {
                push(template::case5a(s, r));
            }
            for &w in &rw {
                push(template::case5b(s, w));
            }
        }
    }

    TestSuite {
        tests,
        with_deps,
        corollary1_bound: count::extended_bound(with_deps, with_ctrl),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_are_stable_and_bounded() {
        let with_deps = template_suite(true);
        let without = template_suite(false);
        assert!(with_deps.len() > without.len());
        assert!(
            (with_deps.len() as u64) <= with_deps.corollary1_bound,
            "materialised {} exceeds Corollary 1 bound {}",
            with_deps.len(),
            with_deps.corollary1_bound
        );
        assert!((without.len() as u64) <= without.corollary1_bound);
        assert_eq!(with_deps.corollary1_bound, 230);
        assert_eq!(without.corollary1_bound, 124);
        // Regenerating must be deterministic.
        assert_eq!(with_deps.len(), template_suite(true).len());
    }

    #[test]
    fn names_are_unique() {
        let suite = template_suite(true);
        let mut names: Vec<&str> = suite.tests.iter().map(LitmusTest::name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn every_test_obeys_theorem1() {
        for test in &template_suite(true).tests {
            assert!(test.program().access_count() <= 6, "{}", test.name());
            assert_eq!(test.program().threads.len(), 2, "{}", test.name());
            // Executions must derive cleanly.
            let _ = test.execution();
        }
    }

    #[test]
    fn no_dep_suite_has_no_dependency_idioms() {
        for test in &template_suite(false).tests {
            let exec = test.execution();
            let n = exec.events().len();
            for i in 0..n {
                for j in 0..n {
                    let (x, y) = (mcm_core::EventId(i as u32), mcm_core::EventId(j as u32));
                    assert!(
                        !exec.data_dep(x, y),
                        "{} contains a dependency",
                        test.name()
                    );
                }
            }
        }
    }

    #[test]
    fn find_locates_tests_by_name() {
        let suite = template_suite(false);
        let name = suite.tests[0].name().to_string();
        assert!(suite.find(&name).is_some());
        assert!(suite.find("no-such-test").is_none());
    }
}
