//! Local segments (paper §3.2–3.4).
//!
//! A *segment* is a sequence of instructions starting and ending with a
//! memory access and containing no other access; the instructions between
//! the two accesses (here: nothing, a dependency idiom, or a fence) are the
//! *local segment*. Segments are classified by their end-point kinds
//! (read-read, read-write, write-read, write-write), by the address
//! relation of the two accesses, and by the connector.
//!
//! For the paper's predicate set `{Read, Write, Fence, SameAddr, DataDep}`
//! the distinct segments per type are `N_RW = N_RR = 6` (three connectors ×
//! two address relations) and `N_WR = N_WW = 4` (writes produce no
//! dependencies, so the dependency connector only exists after a read);
//! dropping `DataDep` gives `6 → 4`.

use std::fmt;

/// Read or write — the end points of a segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessKind {
    /// A memory read.
    Read,
    /// A memory write.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// The four segment types.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SegmentType {
    /// Read then read.
    ReadRead,
    /// Read then write.
    ReadWrite,
    /// Write then read.
    WriteRead,
    /// Write then write.
    WriteWrite,
}

impl SegmentType {
    /// All four types.
    pub const ALL: [SegmentType; 4] = [
        SegmentType::ReadRead,
        SegmentType::ReadWrite,
        SegmentType::WriteRead,
        SegmentType::WriteWrite,
    ];

    /// The first access kind.
    #[must_use]
    pub fn first(self) -> AccessKind {
        match self {
            SegmentType::ReadRead | SegmentType::ReadWrite => AccessKind::Read,
            SegmentType::WriteRead | SegmentType::WriteWrite => AccessKind::Write,
        }
    }

    /// The second access kind.
    #[must_use]
    pub fn last(self) -> AccessKind {
        match self {
            SegmentType::ReadRead | SegmentType::WriteRead => AccessKind::Read,
            SegmentType::ReadWrite | SegmentType::WriteWrite => AccessKind::Write,
        }
    }
}

impl fmt::Display for SegmentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.first(), self.last())
    }
}

/// What sits between the two accesses of a segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Connector {
    /// Nothing: the accesses are adjacent.
    None,
    /// A syntactic dependency from the first access (a read) into the
    /// second access — an address dependency when the second access is a
    /// read, a value dependency when it is a write.
    DataDep,
    /// A full fence.
    Fence,
    /// A branch conditioned on the first access (a read), making the
    /// second access control-dependent on it. The paper's tool did not
    /// implement control dependencies ("supported by our framework" —
    /// §4.2); this workspace does, as an extension.
    CtrlDep,
}

impl fmt::Display for Connector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Connector::None => write!(f, "adjacent"),
            Connector::DataDep => write!(f, "dep"),
            Connector::Fence => write!(f, "fence"),
            Connector::CtrlDep => write!(f, "ctrl"),
        }
    }
}

/// Whether the segment's two accesses share an address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AddrRel {
    /// Both accesses touch the same location.
    Same,
    /// The accesses touch different locations.
    Diff,
}

impl fmt::Display for AddrRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrRel::Same => write!(f, "same"),
            AddrRel::Diff => write!(f, "diff"),
        }
    }
}

/// A local segment: end-point kinds, connector, address relation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Segment {
    /// The segment type (end-point access kinds).
    pub ty: SegmentType,
    /// The connector between the accesses.
    pub connector: Connector,
    /// The address relation of the accesses.
    pub addr_rel: AddrRel,
}

impl Segment {
    /// Creates a segment if the combination is well-formed (a dependency or
    /// control connector requires the first access to be a read — writes
    /// produce no values for later instructions to depend on).
    #[must_use]
    pub fn new(ty: SegmentType, connector: Connector, addr_rel: AddrRel) -> Option<Segment> {
        if matches!(connector, Connector::DataDep | Connector::CtrlDep)
            && ty.first() != AccessKind::Read
        {
            return None;
        }
        Some(Segment {
            ty,
            connector,
            addr_rel,
        })
    }

    /// Enumerates all distinct segments of `ty` for the paper's predicate
    /// set, with (`with_deps = true`) or without the `DataDep` predicate.
    #[must_use]
    pub fn enumerate(ty: SegmentType, with_deps: bool) -> Vec<Segment> {
        Segment::enumerate_extended(ty, with_deps, false)
    }

    /// Like [`Segment::enumerate`], optionally including the
    /// control-dependency connector (for predicate sets with `ControlDep`,
    /// which the paper's tool left unimplemented).
    #[must_use]
    pub fn enumerate_extended(ty: SegmentType, with_deps: bool, with_ctrl: bool) -> Vec<Segment> {
        let mut out = Vec::new();
        let connectors = [
            Connector::None,
            Connector::DataDep,
            Connector::CtrlDep,
            Connector::Fence,
        ];
        for connector in connectors {
            if connector == Connector::DataDep && !with_deps {
                continue;
            }
            if connector == Connector::CtrlDep && !with_ctrl {
                continue;
            }
            for addr_rel in [AddrRel::Same, AddrRel::Diff] {
                if let Some(segment) = Segment::new(ty, connector, addr_rel) {
                    out.push(segment);
                }
            }
        }
        out
    }

    /// The `(N_WW, N_WR, N_RW, N_RR)` counts of Corollary 1 for the paper's
    /// predicate set with or without `DataDep`.
    #[must_use]
    pub fn counts(with_deps: bool) -> (usize, usize, usize, usize) {
        Segment::counts_extended(with_deps, false)
    }

    /// Segment counts when the `ControlDep` predicate (and connector) is
    /// also enabled.
    #[must_use]
    pub fn counts_extended(with_deps: bool, with_ctrl: bool) -> (usize, usize, usize, usize) {
        (
            Segment::enumerate_extended(SegmentType::WriteWrite, with_deps, with_ctrl).len(),
            Segment::enumerate_extended(SegmentType::WriteRead, with_deps, with_ctrl).len(),
            Segment::enumerate_extended(SegmentType::ReadWrite, with_deps, with_ctrl).len(),
            Segment::enumerate_extended(SegmentType::ReadRead, with_deps, with_ctrl).len(),
        )
    }

    /// A short identifier used in generated test names, e.g. `rw-dep-diff`.
    #[must_use]
    pub fn tag(&self) -> String {
        let ty = match self.ty {
            SegmentType::ReadRead => "rr",
            SegmentType::ReadWrite => "rw",
            SegmentType::WriteRead => "wr",
            SegmentType::WriteWrite => "ww",
        };
        let conn = match self.connector {
            Connector::None => "adj",
            Connector::DataDep => "dep",
            Connector::Fence => "fen",
            Connector::CtrlDep => "ctl",
        };
        let rel = match self.addr_rel {
            AddrRel::Same => "same",
            AddrRel::Diff => "diff",
        };
        format!("{ty}-{conn}-{rel}")
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} segment ({}, {})", self.ty, self.connector, self.addr_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_corollary1_parameters() {
        assert_eq!(Segment::counts(true), (4, 4, 6, 6));
        assert_eq!(Segment::counts(false), (4, 4, 4, 4));
    }

    #[test]
    fn dep_connector_requires_leading_read() {
        assert!(Segment::new(SegmentType::WriteRead, Connector::DataDep, AddrRel::Diff).is_none());
        assert!(Segment::new(SegmentType::WriteWrite, Connector::DataDep, AddrRel::Same).is_none());
        assert!(Segment::new(SegmentType::ReadRead, Connector::DataDep, AddrRel::Diff).is_some());
        assert!(Segment::new(SegmentType::ReadWrite, Connector::DataDep, AddrRel::Same).is_some());
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        for ty in SegmentType::ALL {
            for with_deps in [false, true] {
                let segs = Segment::enumerate(ty, with_deps);
                let mut deduped = segs.clone();
                deduped.sort();
                deduped.dedup();
                assert_eq!(segs.len(), deduped.len());
                assert!(segs.iter().all(|s| s.ty == ty));
            }
        }
    }

    #[test]
    fn type_endpoints() {
        assert_eq!(SegmentType::ReadWrite.first(), AccessKind::Read);
        assert_eq!(SegmentType::ReadWrite.last(), AccessKind::Write);
        assert_eq!(SegmentType::WriteRead.to_string(), "WR");
    }

    #[test]
    fn tags_are_unique_across_all_segments() {
        let mut tags: Vec<String> = SegmentType::ALL
            .iter()
            .flat_map(|&ty| Segment::enumerate(ty, true))
            .map(|s| s.tag())
            .collect();
        let before = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), before);
    }
}
