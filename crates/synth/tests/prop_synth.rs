//! Cross-validation of the CEGIS synthesizer against the exhaustive
//! streaming sweep.
//!
//! The two engines answer the paper's central question by opposite means
//! — enumerate-then-check versus constraint synthesis — over the *same*
//! bounded space, so their per-pair minimal distinguishing lengths must
//! agree exactly. The deterministic test below checks every Figure-4
//! model pair; the property tests sample pairs under extended predicates
//! (data dependencies) and re-verify witness properties.

use mcm_axiomatic::{Checker, ExplicitChecker};
use mcm_core::MemoryModel;
use mcm_explore::{paper, Exploration};
use mcm_gen::{canon, stream, StreamBounds};
use mcm_synth::{SynthBounds, Synthesizer};
use proptest::prelude::*;

/// Exhaustive per-pair minimal lengths over the streamed orbit leaders of
/// `bounds`, restricted to tests of at most `max_total` accesses.
fn sweep_lengths(
    models: &[MemoryModel],
    bounds: &StreamBounds,
    max_total: usize,
) -> Vec<Vec<Option<usize>>> {
    let tests: Vec<_> = stream::leaders(bounds)
        .filter(|t| t.program().access_count() <= max_total)
        .collect();
    let exploration = Exploration::run_parallel(models.to_vec(), tests);
    mcm_explore::distinguish::minimal_length_matrix(&exploration)
}

fn synth_bounds(stream: &StreamBounds) -> SynthBounds {
    SynthBounds {
        max_accesses_per_thread: stream.max_accesses_per_thread,
        threads: stream.threads,
        max_locs: stream.max_locs,
        include_fences: stream.include_fences,
        include_deps: stream.include_deps,
    }
}

/// The satellite contract: for every Figure-4 model pair, the synthesized
/// minimal length at small sizes equals the exhaustive streaming sweep's,
/// and every synthesized witness is a canonical leader the allower admits
/// and the forbidder rejects.
#[test]
fn figure4_minimal_lengths_match_the_exhaustive_sweep() {
    let models = paper::digit_space_models(false);
    let stream_bounds = StreamBounds {
        max_accesses_per_thread: 2,
        threads: 2,
        max_locs: 4,
        include_fences: false,
        include_deps: false,
    };
    let max_total = 3;
    let expected = sweep_lengths(&models, &stream_bounds, max_total);

    let mut synth =
        Synthesizer::new(models.clone(), synth_bounds(&stream_bounds)).expect("valid bounds");
    let checker = ExplicitChecker::new();
    let mut distinguishable = 0usize;
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            let pair = synth.pair(i, j, max_total);
            assert_eq!(
                pair.length, expected[i][j],
                "minimal length mismatch for {} vs {}",
                models[i].name(),
                models[j].name()
            );
            if let Some(length) = pair.length {
                distinguishable += 1;
                let witness = pair.witness.expect("a length implies a witness");
                assert_eq!(witness.program().access_count(), length);
                assert!(
                    canon::is_leader(&witness),
                    "witness for {} vs {} is not a canonical leader:\n{witness}",
                    models[i].name(),
                    models[j].name()
                );
                let allowed = checker.is_allowed(&models[i], &witness);
                let other = checker.is_allowed(&models[j], &witness);
                assert_ne!(
                    allowed,
                    other,
                    "witness fails to distinguish {} from {}",
                    models[i].name(),
                    models[j].name()
                );
            }
        }
    }
    assert!(
        distinguishable > 0,
        "some Figure-4 pairs must distinguish at three accesses"
    );
    let stats = synth.stats();
    assert_eq!(
        stats.encoding_mismatches, 0,
        "the symbolic encoding and the axiomatic oracle must agree"
    );
    assert!(stats.shapes_exhausted > 0, "minimality certificates were produced");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random Figure-4 pairs, one size past the deterministic test: the
    /// synthesized minimal length at four total accesses still matches
    /// the sweep.
    #[test]
    fn sampled_pairs_agree_at_four_accesses(a in 0usize..36, offset in 1usize..36) {
        let b = (a + offset) % 36;
        let models = paper::digit_space_models(false);
        let stream_bounds = StreamBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 4,
            include_fences: false,
            include_deps: false,
        };
        let pair_models = vec![models[a].clone(), models[b].clone()];
        let expected = sweep_lengths(&pair_models, &stream_bounds, 4)[0][1];
        let mut synth = Synthesizer::new(pair_models, synth_bounds(&stream_bounds))
            .expect("valid bounds");
        let result = synth.pair(0, 1, 4);
        prop_assert_eq!(result.length, expected);
        prop_assert_eq!(synth.stats().encoding_mismatches, 0);
    }

    /// Dependency-discriminating models need the dep idiom in the space:
    /// sampled pairs from the full 90-model space, with dependencies
    /// enabled on both engines, agree at three total accesses.
    #[test]
    fn sampled_dependency_pairs_agree(a in 0usize..90, offset in 1usize..90) {
        let b = (a + offset) % 90;
        let models = paper::digit_space_models(true);
        let stream_bounds = StreamBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
            include_deps: true,
        };
        let pair_models = vec![models[a].clone(), models[b].clone()];
        let expected = sweep_lengths(&pair_models, &stream_bounds, 3)[0][1];
        let mut synth = Synthesizer::new(pair_models, synth_bounds(&stream_bounds))
            .expect("valid bounds");
        let result = synth.pair(0, 1, 3);
        prop_assert_eq!(result.length, expected);
        prop_assert_eq!(synth.stats().encoding_mismatches, 0);
    }

    /// Fenced spaces: witnesses synthesized with fences in bounds are
    /// still canonical leaders with oracle-confirmed verdicts.
    #[test]
    fn fenced_witnesses_are_canonical_and_confirmed(a in 0usize..36, offset in 1usize..36) {
        let b = (a + offset) % 36;
        let models = paper::digit_space_models(false);
        let bounds = SynthBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: true,
            include_deps: false,
        };
        let pair_models = vec![models[a].clone(), models[b].clone()];
        let mut synth = Synthesizer::new(pair_models.clone(), bounds).expect("valid bounds");
        let result = synth.pair(0, 1, 4);
        if let Some(witness) = result.witness {
            let checker = ExplicitChecker::new();
            prop_assert!(canon::is_leader(&witness));
            prop_assert!(
                checker.is_allowed(&pair_models[0], &witness)
                    != checker.is_allowed(&pair_models[1], &witness)
            );
        }
        prop_assert_eq!(synth.stats().encoding_mismatches, 0);
    }
}
