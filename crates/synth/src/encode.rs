//! The symbolic test-skeleton encoding.
//!
//! One incremental [`Solver`] holds a bounded skeleton — `threads ×
//! max_accesses_per_thread` slots — whose every structural choice is a
//! SAT variable:
//!
//! * `len_ge[t][k]` — thread `t` has at least `k + 1` active slots.
//!   Shapes are selected per query with `solve_with_assumptions`, so the
//!   same solver (and its learnt clauses) serves every size of a bounded
//!   search;
//! * per slot: `is_write`, a one-hot location vector, an optional
//!   `fence_after`, an optional `dep` (data-dependency) flag;
//! * per slot, read-from selectors: `src_init` or `src_write[w]` — which
//!   write the slot observes if it is a read;
//! * [`OrderVars`] over the slots: the symbolic happens-before partial
//!   order of the candidate execution.
//!
//! The clauses conjoin three layers:
//!
//! 1. **well-formedness + symmetry breaking** — inactive slots are all
//!    zero; locations appear in global first-use order (the canonical
//!    renaming always produces this, so every symmetry orbit keeps at
//!    least one representative and most lose all but one);
//! 2. **the allower's axioms** — for every program-ordered slot pair, a
//!    Tseitin encoding of the model's must-not-reorder formula (over
//!    symbolic kind/address/dependency atoms) implies the order variable;
//!    plus coherence, fence and read-from axioms mirroring
//!    [`mcm_axiomatic::MonolithicSatChecker`] clause for clause;
//! 3. **blocking clauses** — each enumerated candidate is excluded under
//!    its own shape guard ([`Solver::block_model_with`]), leaving other
//!    shapes untouched.
//!
//! A satisfying assignment therefore *is* a litmus test the allower
//! admits, read off the structural variables as a
//! [`mcm_core::TestSkeleton`].

use mcm_axiomatic::OrderVars;
use mcm_core::{ArgPos, Atom, Formula, Slot, SlotRf, TestSkeleton};
use mcm_sat::{Lit, SatResult, Solver, Var};

use crate::SynthBounds;

/// The per-slot variable bundle.
struct SlotVars {
    /// Alias of the thread's `len_ge` variable for this position.
    active: Var,
    is_write: Var,
    /// Auxiliary: `active ∧ ¬is_write`.
    is_read: Var,
    /// One-hot location selector over this slot's domain.
    loc: Vec<Var>,
    /// Full fence between this access and the next (when fences are in
    /// bounds and a next slot exists).
    fence_after: Option<Var>,
    /// Data-dependency flag (when deps are in bounds and a preceding slot
    /// exists).
    dep: Option<Var>,
    src_init: Var,
    /// `(source slot, selector)` pairs.
    src_write: Vec<(usize, Var)>,
}

impl SlotVars {
    /// The variables that, together with the shape, determine the decoded
    /// *program* (not its outcome) — the blocking-clause footprint of the
    /// slot. Read-from selectors are deliberately excluded: the CEGIS
    /// loop generalises each counterexample to its whole structure and
    /// sweeps the structure's (small) outcome space through the oracle
    /// directly, so blocking the structure is both sound and an
    /// order-of-magnitude fewer SAT queries.
    fn structural(&self) -> Vec<Var> {
        let mut vars = vec![self.is_write];
        vars.extend(&self.loc);
        vars.extend(self.fence_after);
        vars.extend(self.dep);
        vars
    }
}

/// The incremental symbolic skeleton for one allower model.
pub(crate) struct Encoding {
    pub(crate) solver: Solver,
    bounds: SynthBounds,
    slots: Vec<SlotVars>,
    /// Slot → (thread, position) and the inverse.
    thread_of: Vec<usize>,
    pos_of: Vec<usize>,
    thread_slots: Vec<Vec<usize>>,
    len_ge: Vec<Vec<Var>>,
}

impl Encoding {
    /// Builds the full encoding for `allower`'s must-not-reorder formula.
    pub(crate) fn new(bounds: &SynthBounds, allower: &Formula) -> Encoding {
        let mut solver = Solver::new();
        let true_var = solver.new_var();
        solver.add_clause(&[true_var.positive()]);
        let true_lit = true_var.positive();
        let false_lit = true_var.negative();

        // Slot layout: thread-major global order, matching the canonical
        // first-use scan order of the streaming enumeration.
        let per_thread = bounds.max_accesses_per_thread;
        let mut thread_of = Vec::new();
        let mut pos_of = Vec::new();
        let mut thread_slots = Vec::new();
        for t in 0..bounds.threads {
            let mut ids = Vec::new();
            for p in 0..per_thread {
                ids.push(thread_of.len());
                thread_of.push(t);
                pos_of.push(p);
            }
            thread_slots.push(ids);
        }
        let n = thread_of.len();

        // Activation ladder: len_ge[t][k] ⇒ len_ge[t][k-1].
        let len_ge: Vec<Vec<Var>> = (0..bounds.threads)
            .map(|_| (0..per_thread).map(|_| solver.new_var()).collect())
            .collect();
        for ladder in &len_ge {
            for k in 1..ladder.len() {
                solver.add_clause(&[ladder[k].negative(), ladder[k - 1].positive()]);
            }
        }

        // Per-slot structural variables and local constraints.
        let mut slots: Vec<SlotVars> = Vec::with_capacity(n);
        for s in 0..n {
            let t = thread_of[s];
            let p = pos_of[s];
            let active = len_ge[t][p];
            let is_write = solver.new_var();
            let is_read = solver.new_var();
            // Locations: first-use order bounds slot s (global index) to
            // locations 0..=s, further capped by the bounds.
            let domain = usize::from(bounds.max_locs).min(s + 1);
            let loc: Vec<Var> = (0..domain).map(|_| solver.new_var()).collect();
            let fence_after = (bounds.include_fences && p + 1 < per_thread)
                .then(|| solver.new_var());
            let dep = (bounds.include_deps && p > 0).then(|| solver.new_var());
            let src_init = solver.new_var();

            // is_read ≡ active ∧ ¬is_write; is_write ⇒ active.
            solver.add_clause(&[is_write.negative(), active.positive()]);
            solver.add_clause(&[
                is_read.positive(),
                active.negative(),
                is_write.positive(),
            ]);
            solver.add_clause(&[is_read.negative(), active.positive()]);
            solver.add_clause(&[is_read.negative(), is_write.negative()]);

            // One-hot location iff active.
            let mut at_least: Vec<Lit> = vec![active.negative()];
            at_least.extend(loc.iter().map(|v| v.positive()));
            solver.add_clause(&at_least);
            for (a, &va) in loc.iter().enumerate() {
                solver.add_clause(&[va.negative(), active.positive()]);
                for &vb in &loc[a + 1..] {
                    solver.add_clause(&[va.negative(), vb.negative()]);
                }
            }

            if let Some(f) = fence_after {
                // A fence separates two accesses: the next slot must exist.
                solver.add_clause(&[f.negative(), len_ge[t][p + 1].positive()]);
            }
            if let Some(d) = dep {
                solver.add_clause(&[d.negative(), is_write.positive()]);
            }
            slots.push(SlotVars {
                active,
                is_write,
                is_read,
                loc,
                fence_after,
                dep,
                src_init,
                src_write: Vec::new(),
            });
        }

        // Dependency flags need a preceding read in the same thread.
        for s in 0..n {
            if let Some(d) = slots[s].dep {
                let mut clause = vec![d.negative()];
                for &e in &thread_slots[thread_of[s]] {
                    if e < s {
                        clause.push(slots[e].is_read.positive());
                    }
                }
                solver.add_clause(&clause);
            }
        }

        // First-use location ordering: slot s may name location l > 0 only
        // if some earlier slot (global order) names l - 1. Inactive slots
        // name nothing, so this ranges over active slots exactly.
        for s in 0..n {
            for l in 1..slots[s].loc.len() {
                let mut clause = vec![slots[s].loc[l].negative()];
                for earlier in &slots[..s] {
                    if l - 1 < earlier.loc.len() {
                        clause.push(earlier.loc[l - 1].positive());
                    }
                }
                solver.add_clause(&clause);
            }
        }

        // Pairwise same-address literals.
        let mut same_addr = vec![false_lit; n * n];
        for x in 0..n {
            for y in (x + 1)..n {
                let sa = solver.new_var();
                let (short, long) = if slots[x].loc.len() <= slots[y].loc.len() {
                    (x, y)
                } else {
                    (y, x)
                };
                for l in 0..slots[long].loc.len() {
                    if l < slots[short].loc.len() {
                        solver.add_clause(&[
                            slots[x].loc[l].negative(),
                            slots[y].loc[l].negative(),
                            sa.positive(),
                        ]);
                        solver.add_clause(&[
                            sa.negative(),
                            slots[long].loc[l].negative(),
                            slots[short].loc[l].positive(),
                        ]);
                    } else {
                        // No matching location on the short side.
                        solver.add_clause(&[sa.negative(), slots[long].loc[l].negative()]);
                    }
                }
                same_addr[x * n + y] = sa.positive();
                same_addr[y * n + x] = sa.positive();
            }
        }
        let sa = |x: usize, y: usize| same_addr[x * n + y];

        // Data-dependency edges: dep_edge(x, y) ⇔ y is a dependent write
        // and x is the latest read before it in the thread.
        let mut dep_edge = vec![false_lit; n * n];
        if bounds.include_deps {
            for ids in &thread_slots {
                for (a, &x) in ids.iter().enumerate() {
                    for &y in &ids[a + 1..] {
                        let Some(d) = slots[y].dep else { continue };
                        let de = solver.new_var();
                        let between: Vec<usize> =
                            ids[a + 1..].iter().copied().take_while(|&z| z < y).collect();
                        solver.add_clause(&[de.negative(), slots[x].is_read.positive()]);
                        solver.add_clause(&[de.negative(), d.positive()]);
                        let mut back = vec![
                            slots[x].is_read.negative(),
                            d.negative(),
                            de.positive(),
                        ];
                        for &z in &between {
                            solver.add_clause(&[de.negative(), slots[z].is_read.negative()]);
                            back.push(slots[z].is_read.positive());
                        }
                        solver.add_clause(&back);
                        dep_edge[x * n + y] = de.positive();
                    }
                }
            }
        }
        let de = |x: usize, y: usize| dep_edge[x * n + y];

        // The symbolic happens-before partial order.
        let order = OrderVars::new(&mut solver, n);
        order.add_partial_order_clauses(&mut solver);

        // Layer 2a: the allower's program-order axiom. For every
        // program-ordered slot pair, F(x, y) ⇒ o(x, y).
        for ids in &thread_slots {
            for (a, &x) in ids.iter().enumerate() {
                for &y in &ids[a + 1..] {
                    let f = encode_formula(
                        &mut solver,
                        allower,
                        &FormulaCtx {
                            slots: &slots,
                            sa: &sa,
                            de: &de,
                            true_lit,
                            false_lit,
                            x,
                            y,
                        },
                    );
                    solver.add_clause(&[
                        slots[y].active.negative(),
                        !f,
                        order.before(x, y),
                    ]);
                }
            }
        }

        // Layer 2b: fences order everything across them (exact for models
        // whose formulas force fence ordering — checked by the caller).
        for ids in &thread_slots {
            for (a, &x) in ids.iter().enumerate() {
                for &y in &ids[a + 1..] {
                    for &z in &ids[a..] {
                        if z >= y {
                            break;
                        }
                        if let Some(f) = slots[z].fence_after {
                            solver.add_clause(&[
                                slots[y].active.negative(),
                                f.negative(),
                                order.before(x, y),
                            ]);
                        }
                    }
                }
            }
        }

        // Layer 2c: coherence — same-location writes are totally ordered,
        // respecting program order within a thread.
        for x in 0..n {
            for y in (x + 1)..n {
                let base = [
                    slots[x].is_write.negative(),
                    slots[y].is_write.negative(),
                    !sa(x, y),
                ];
                if thread_of[x] == thread_of[y] {
                    let mut clause = base.to_vec();
                    clause.push(order.before(x, y));
                    solver.add_clause(&clause);
                } else {
                    let mut clause = base.to_vec();
                    clause.push(order.before(x, y));
                    clause.push(order.before(y, x));
                    solver.add_clause(&clause);
                }
            }
        }

        // Layer 2d: read-from selectors and the monolithic checker's
        // write-read / read-write axioms, conditioned on the selectors.
        for r in 0..n {
            let candidates: Vec<usize> = (0..n)
                .filter(|&w| {
                    w != r
                        // A read cannot observe a program-later local write.
                        && !(thread_of[w] == thread_of[r] && pos_of[w] > pos_of[r])
                })
                .collect();
            let src_write: Vec<(usize, Var)> = candidates
                .iter()
                .map(|&w| (w, solver.new_var()))
                .collect();

            // Selector validity.
            let src_init = slots[r].src_init;
            solver.add_clause(&[src_init.negative(), slots[r].is_read.positive()]);
            for &(w, v) in &src_write {
                solver.add_clause(&[v.negative(), slots[r].is_read.positive()]);
                solver.add_clause(&[v.negative(), slots[w].is_write.positive()]);
                solver.add_clause(&[v.negative(), sa(r, w)]);
            }
            // Exactly one source per read.
            let mut at_least = vec![slots[r].is_read.negative(), src_init.positive()];
            at_least.extend(src_write.iter().map(|&(_, v)| v.positive()));
            solver.add_clause(&at_least);
            let all: Vec<Var> = std::iter::once(src_init)
                .chain(src_write.iter().map(|&(_, v)| v))
                .collect();
            for (a, &va) in all.iter().enumerate() {
                for &vb in &all[a + 1..] {
                    solver.add_clause(&[va.negative(), vb.negative()]);
                }
            }

            // Init source: the read precedes every same-location write; a
            // program-earlier local write rules the source out entirely
            // (ignore-local).
            for w in 0..n {
                if w == r {
                    continue;
                }
                let mut clause = vec![
                    src_init.negative(),
                    slots[w].is_write.negative(),
                    !sa(r, w),
                ];
                if !(thread_of[w] == thread_of[r] && pos_of[w] < pos_of[r]) {
                    clause.push(order.before(r, w));
                }
                solver.add_clause(&clause);
            }

            // Write source z: cross-thread sources happen before the read;
            // every other same-location write w is either coherence-before
            // z or (unless ignore-local forbids it) after the read.
            for &(z, v) in &src_write {
                if thread_of[z] != thread_of[r] {
                    solver.add_clause(&[v.negative(), order.before(z, r)]);
                }
                for w in 0..n {
                    if w == z || w == r {
                        continue;
                    }
                    let mut clause = vec![
                        v.negative(),
                        slots[w].is_write.negative(),
                        !sa(r, w),
                        order.before(w, z),
                    ];
                    if !(thread_of[w] == thread_of[r] && pos_of[w] < pos_of[r]) {
                        clause.push(order.before(r, w));
                    }
                    solver.add_clause(&clause);
                }
            }
            slots[r].src_write = src_write;
        }

        Encoding {
            solver,
            bounds: *bounds,
            slots,
            thread_of,
            pos_of,
            thread_slots,
            len_ge,
        }
    }

    /// The assumption literals selecting `shape` (accesses per thread).
    fn assumptions(&self, shape: &[usize]) -> Vec<Lit> {
        let mut lits = Vec::new();
        for (t, ladder) in self.len_ge.iter().enumerate() {
            let k = shape.get(t).copied().unwrap_or(0);
            for (i, &var) in ladder.iter().enumerate() {
                lits.push(var.lit(i < k));
            }
        }
        lits
    }

    /// Literals that make a blocking clause vacuous under any *other*
    /// shape: the negation of `shape`'s activation pattern boundary.
    fn shape_guard(&self, shape: &[usize]) -> Vec<Lit> {
        let mut lits = Vec::new();
        for (t, ladder) in self.len_ge.iter().enumerate() {
            let k = shape[t];
            lits.push(ladder[k - 1].negative());
            if k < ladder.len() {
                lits.push(ladder[k].positive());
            }
        }
        lits
    }

    /// Asks for the next candidate of `shape`: decodes the SAT model into
    /// a [`TestSkeleton`] and blocks it (under `shape`'s guard) so the
    /// following call yields a different candidate. `None` once the
    /// sub-space is exhausted.
    pub(crate) fn solve_shape(&mut self, shape: &[usize]) -> Option<TestSkeleton> {
        debug_assert_eq!(shape.len(), self.bounds.threads);
        let assumptions = self.assumptions(shape);
        if self.solver.solve_with_assumptions(&assumptions) != SatResult::Sat {
            return None;
        }
        let skeleton = self.decode(shape);
        let mut footprint = Vec::new();
        for (ids, &len) in self.thread_slots.iter().zip(shape) {
            for &s in &ids[..len] {
                footprint.extend(self.slots[s].structural());
            }
        }
        let guard = self.shape_guard(shape);
        self.solver.block_model_with(&footprint, &guard);
        Some(skeleton)
    }

    /// Reads the structural variables of the current model back into a
    /// concrete skeleton.
    fn decode(&self, shape: &[usize]) -> TestSkeleton {
        let value = |v: Var| self.solver.value(v).unwrap_or(false);
        let threads = (0..self.bounds.threads)
            .map(|t| {
                self.thread_slots[t][..shape[t]]
                    .iter()
                    .map(|&s| {
                        let vars = &self.slots[s];
                        let loc = vars
                            .loc
                            .iter()
                            .position(|&l| value(l))
                            .expect("active slots carry a location");
                        let rf = if value(vars.src_init) {
                            SlotRf::Init
                        } else {
                            vars.src_write
                                .iter()
                                .find(|&&(_, v)| value(v))
                                .map(|&(w, _)| {
                                    SlotRf::Write(self.thread_of[w], self.pos_of[w])
                                })
                                .unwrap_or(SlotRf::Init)
                        };
                        Slot {
                            is_write: value(vars.is_write),
                            loc: u8::try_from(loc).expect("location domains are tiny"),
                            fence_after: vars.fence_after.is_some_and(&value),
                            dep: vars.dep.is_some_and(&value),
                            rf,
                        }
                    })
                    .collect()
            })
            .collect();
        TestSkeleton { threads }
    }
}

/// Everything [`encode_formula`] needs to map atoms to literals.
struct FormulaCtx<'a> {
    slots: &'a [SlotVars],
    sa: &'a dyn Fn(usize, usize) -> Lit,
    de: &'a dyn Fn(usize, usize) -> Lit,
    true_lit: Lit,
    false_lit: Lit,
    x: usize,
    y: usize,
}

/// Tseitin-encodes `formula` evaluated on the slot pair `(x, y)`;
/// returns a literal equivalent to the formula's value.
fn encode_formula(solver: &mut Solver, formula: &Formula, ctx: &FormulaCtx<'_>) -> Lit {
    match formula {
        Formula::Const(true) => ctx.true_lit,
        Formula::Const(false) => ctx.false_lit,
        Formula::Atom(atom) => atom_lit(*atom, ctx),
        Formula::And(children) => {
            let lits: Vec<Lit> = children
                .iter()
                .map(|c| encode_formula(solver, c, ctx))
                .collect();
            let out = solver.new_var().positive();
            let mut back = vec![out];
            for &lit in &lits {
                solver.add_clause(&[!out, lit]);
                back.push(!lit);
            }
            solver.add_clause(&back);
            out
        }
        Formula::Or(children) => {
            let lits: Vec<Lit> = children
                .iter()
                .map(|c| encode_formula(solver, c, ctx))
                .collect();
            let out = solver.new_var().positive();
            let mut back = vec![!out];
            for &lit in &lits {
                solver.add_clause(&[!lit, out]);
                back.push(lit);
            }
            solver.add_clause(&back);
            out
        }
    }
}

fn atom_lit(atom: Atom, ctx: &FormulaCtx<'_>) -> Lit {
    let pick = |pos: ArgPos| match pos {
        ArgPos::First => ctx.x,
        ArgPos::Second => ctx.y,
    };
    match atom {
        Atom::IsRead(pos) => ctx.slots[pick(pos)].is_read.positive(),
        Atom::IsWrite(pos) => ctx.slots[pick(pos)].is_write.positive(),
        Atom::IsAccess(pos) => ctx.slots[pick(pos)].active.positive(),
        // Slots are always accesses: fence atoms never hold on them (the
        // fence rule handles fence ordering), and the skeleton space has
        // no branches or special fences.
        Atom::IsFence(_) | Atom::IsSpecialFence(..) | Atom::CtrlDep => ctx.false_lit,
        Atom::SameAddr => (ctx.sa)(ctx.x, ctx.y),
        Atom::DataDep => (ctx.de)(ctx.x, ctx.y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_candidates(bounds: &SynthBounds, formula: &Formula, shape: &[usize]) -> usize {
        let mut enc = Encoding::new(bounds, formula);
        let mut n = 0;
        while enc.solve_shape(shape).is_some() {
            n += 1;
            assert!(n < 100_000, "runaway enumeration");
        }
        n
    }

    fn tiny_bounds() -> SynthBounds {
        SynthBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
            include_deps: false,
        }
    }

    #[test]
    fn every_candidate_decodes_to_a_valid_test() {
        let bounds = tiny_bounds();
        let mut enc = Encoding::new(&bounds, &Formula::never());
        let mut seen = 0;
        while let Some(skeleton) = enc.solve_shape(&[2, 1]) {
            let test = skeleton.decode(format!("cand-{seen}")).expect("decodable");
            assert_eq!(test.program().access_count(), 3);
            assert_eq!(test.program().threads.len(), 2);
            seen += 1;
            assert!(seen < 10_000);
        }
        assert!(seen > 0, "the sub-space must not be empty");
    }

    #[test]
    fn shapes_are_independent_under_blocking() {
        // Exhausting shape (1,1) must not remove candidates from (2,1).
        let bounds = tiny_bounds();
        let formula = Formula::never();
        let fresh = count_candidates(&bounds, &formula, &[2, 1]);
        let mut enc = Encoding::new(&bounds, &formula);
        while enc.solve_shape(&[1, 1]).is_some() {}
        let mut after = 0;
        while enc.solve_shape(&[2, 1]).is_some() {
            after += 1;
        }
        assert_eq!(after, fresh);
    }

    #[test]
    fn structure_enumeration_is_model_independent() {
        // Every structure admits its sequential execution, so the set of
        // structures with at least one allowed execution is the same for
        // every model in the class — the model constrains *which*
        // executions (outcomes) the structure admits, which the CEGIS
        // layer sweeps per structure.
        let bounds = tiny_bounds();
        let weakest = count_candidates(&bounds, &Formula::never(), &[2, 2]);
        let sc = count_candidates(&bounds, &Formula::always(), &[2, 2]);
        assert_eq!(sc, weakest);
        assert!(sc > 0);
    }

    #[test]
    fn exhaustion_is_stable() {
        let bounds = tiny_bounds();
        let mut enc = Encoding::new(&bounds, &Formula::always());
        while enc.solve_shape(&[1, 1]).is_some() {}
        assert!(enc.solve_shape(&[1, 1]).is_none(), "stays exhausted");
    }
}
