//! # mcm-synth
//!
//! CEGIS-based symbolic synthesis of minimal distinguishing litmus tests.
//!
//! The rest of the workspace answers the paper's central question — *how
//! long must a litmus test be to distinguish two memory models?* — by
//! enumerate-then-check: stream every canonical orbit leader of a bounded
//! space through a checker and compare verdict vectors. This crate answers
//! it by **synthesis**: the unknown test itself becomes constraint
//! variables.
//!
//! A *symbolic test skeleton* of bounded shape is encoded into the
//! workspace SAT solver: per-slot selector variables for op kind, location,
//! fence and data dependency; read-from selector variables for each read's
//! observed source; and symmetry-breaking constraints (first-use location
//! ordering, descending thread sizes, canonical write values) so the
//! solver ranges over near-canonical candidates only. The skeleton is
//! conjoined with a symbolic execution — the [`mcm_axiomatic::OrderVars`]
//! partial-order scaffolding plus the happens-before axioms of model `A`,
//! conditioned on the skeleton selectors — so every SAT model *is* a test
//! that `A` allows, together with its witnessing execution.
//!
//! Each SAT model is decoded (via [`mcm_core::TestSkeleton`]) to a
//! concrete [`mcm_core::LitmusTest`] and verified against model `B` with the
//! existing axiomatic checker as oracle. If `B` also allows it, a blocking
//! clause removes the candidate and the loop refines; if `B` forbids it, a
//! distinguishing witness has been synthesized. Slot counts are selected
//! with `solve_with_assumptions` over size-indexed activation variables,
//! so one incremental solver serves every shape of a bounded search, and a
//! bottom-up search on test length — each size UNSAT-certified before the
//! next is tried — yields a per-pair **SAT-certified minimal
//! distinguishing length**, re-deriving the paper's Theorem 1 bounds by
//! synthesis. The results are cross-validated against the exhaustive
//! streaming sweep (`mcm_explore::distinguish`) on enumerable sizes.
//!
//! ## Example
//!
//! Store buffering is the shortest witness separating SC from TSO:
//!
//! ```
//! use mcm_core::{Formula, MemoryModel};
//! use mcm_synth::{SynthBounds, Synthesizer};
//!
//! let sc = MemoryModel::new("SC", Formula::always());
//! let weakest = MemoryModel::new("weakest", Formula::never());
//! let mut synth =
//!     Synthesizer::new(vec![sc, weakest], SynthBounds::default()).unwrap();
//! let pair = synth.pair(0, 1, 6);
//! assert_eq!(pair.length, Some(3));
//! let witness = pair.witness.unwrap();
//! assert_eq!(witness.program().access_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cegis;
mod encode;

use std::fmt;

use mcm_core::{ArgPos, Atom, Formula};
use mcm_sat::SolverStats;

pub use cegis::{MatrixSynthesis, PairSynthesis, Synthesizer};

/// Bounds of the synthesized space — the same box the streaming
/// enumeration (`mcm_gen::stream::StreamBounds`) sweeps, so synthesized
/// minimal lengths are directly comparable to exhaustive ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthBounds {
    /// Maximum memory accesses per thread (Theorem 1: 3).
    pub max_accesses_per_thread: usize,
    /// Number of threads; every thread of a synthesized test is non-empty.
    pub threads: usize,
    /// Maximum distinct locations (first-use ordering caps the effective
    /// count at the slot count anyway).
    pub max_locs: u8,
    /// Allow an optional full fence between consecutive accesses.
    pub include_fences: bool,
    /// Allow the paper's data-dependency idiom: a write may store
    /// `r - r + k` where `r` is the most recent preceding read.
    pub include_deps: bool,
}

impl Default for SynthBounds {
    fn default() -> Self {
        SynthBounds {
            max_accesses_per_thread: 3,
            threads: 2,
            max_locs: 4,
            include_fences: false,
            include_deps: false,
        }
    }
}

impl SynthBounds {
    /// Largest total test length representable in these bounds.
    #[must_use]
    pub fn max_total(&self) -> usize {
        self.threads * self.max_accesses_per_thread
    }

    /// Smallest total test length representable (one access per thread).
    #[must_use]
    pub fn min_total(&self) -> usize {
        self.threads
    }
}

/// Why a synthesis request cannot be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The bounds are outside the supported box.
    InvalidBounds(String),
    /// A model's must-not-reorder formula falls outside what the symbolic
    /// encoding can represent faithfully.
    UnsupportedModel {
        /// The model's name.
        model: String,
        /// What the encoding cannot express.
        reason: String,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidBounds(reason) => {
                write!(f, "invalid synthesis bounds: {reason}")
            }
            SynthError::UnsupportedModel { model, reason } => {
                write!(f, "model {model} is not synthesizable: {reason}")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// What the CEGIS engine actually did, layer by layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// SAT queries issued (one per synthesized structure plus one per
    /// exhaustion certificate).
    pub sat_queries: u64,
    /// Structures (programs) synthesized by the solver.
    pub structures: u64,
    /// Candidate tests decoded (structures × their outcome variants).
    pub candidates: u64,
    /// Distinguishing witnesses found.
    pub witnesses: u64,
    /// `(shape, allower)` sub-spaces proven exhausted (the UNSAT halves of
    /// the minimality certificates).
    pub shapes_exhausted: u64,
    /// Oracle verdicts answered by the cross-pair verdict cache.
    pub oracle_cache_hits: u64,
    /// Oracle verdicts computed by the axiomatic checker.
    pub oracle_calls: u64,
    /// Candidates the symbolic encoding admitted but the oracle rejected.
    /// Always zero unless the encoding and the checker disagree; the test
    /// suite asserts on it.
    pub encoding_mismatches: u64,
    /// SAT-solver work totals, summed over every per-model incremental
    /// solver.
    pub solver: SolverStats,
}

impl SynthStats {
    /// The CEGIS counters as stable `(name, value)` pairs — the
    /// structured view serializable reports render from (the nested
    /// [`SynthStats::solver`] group has a `counters()` view of its own).
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("sat_queries", self.sat_queries),
            ("structures", self.structures),
            ("candidates", self.candidates),
            ("witnesses", self.witnesses),
            ("shapes_exhausted", self.shapes_exhausted),
            ("oracle_cache_hits", self.oracle_cache_hits),
            ("oracle_calls", self.oracle_calls),
            ("encoding_mismatches", self.encoding_mismatches),
        ]
    }
}

/// Whether `formula` orders a full fence against every access in both
/// directions — the property that lets the encoding model fences as
/// "order everything across them" instead of materialising fence events.
///
/// Holds for every model in the paper's §4.2 space (their formulas all
/// contain the `Fence(x) ∨ Fence(y)` disjunct) and for SC (`True`).
#[must_use]
pub fn formula_forces_fences(formula: &Formula) -> bool {
    // Evaluate the formula on (fence, access) and (access, fence) pairs
    // for both access kinds. Atoms are decided exactly: a fence is neither
    // read nor write nor access, has no location and takes part in no
    // dependency; the skeleton space has no branches or special fences.
    let eval = |first_kind: SlotKindForCheck, second_kind: SlotKindForCheck| {
        eval_formula_on_kinds(formula, first_kind, second_kind)
    };
    use SlotKindForCheck::{Fence, Read, Write};
    [
        eval(Fence, Read),
        eval(Fence, Write),
        eval(Read, Fence),
        eval(Write, Fence),
    ]
    .iter()
    .all(|&ordered| ordered)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotKindForCheck {
    Read,
    Write,
    Fence,
}

fn eval_formula_on_kinds(
    formula: &Formula,
    first: SlotKindForCheck,
    second: SlotKindForCheck,
) -> bool {
    let kind_of = |pos: ArgPos| match pos {
        ArgPos::First => first,
        ArgPos::Second => second,
    };
    let atom = |a: &Atom| match a {
        Atom::IsRead(pos) => kind_of(*pos) == SlotKindForCheck::Read,
        Atom::IsWrite(pos) => kind_of(*pos) == SlotKindForCheck::Write,
        Atom::IsFence(pos) => kind_of(*pos) == SlotKindForCheck::Fence,
        Atom::IsAccess(pos) => kind_of(*pos) != SlotKindForCheck::Fence,
        // The synthesized space has no special fences or branches, and a
        // pair involving a fence shares no address and no dependency.
        Atom::IsSpecialFence(..) | Atom::SameAddr | Atom::DataDep | Atom::CtrlDep => false,
    };
    fn go(f: &Formula, atom: &dyn Fn(&Atom) -> bool) -> bool {
        match f {
            Formula::Const(b) => *b,
            Formula::Atom(a) => atom(a),
            Formula::And(children) => children.iter().all(|c| go(c, atom)),
            Formula::Or(children) => children.iter().any(|c| go(c, atom)),
        }
    }
    go(formula, &atom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_match_the_streaming_box() {
        let bounds = SynthBounds::default();
        assert_eq!(bounds.max_total(), 6);
        assert_eq!(bounds.min_total(), 2);
        assert_eq!(bounds.max_locs, 4);
        assert!(!bounds.include_fences);
    }

    #[test]
    fn digit_models_and_sc_force_fences() {
        use mcm_models::DigitModel;
        assert!(formula_forces_fences(&Formula::always()));
        for digit in DigitModel::all() {
            assert!(
                formula_forces_fences(&digit.formula()),
                "{} must order across fences",
                digit.name()
            );
        }
    }

    #[test]
    fn fence_blind_formulas_are_detected() {
        // The weakest model orders nothing, fences included.
        assert!(!formula_forces_fences(&Formula::never()));
        // Ordering only write pairs ignores fences too.
        let ww = Formula::and([
            Formula::atom(Atom::IsWrite(ArgPos::First)),
            Formula::atom(Atom::IsWrite(ArgPos::Second)),
        ]);
        assert!(!formula_forces_fences(&ww));
    }

    #[test]
    fn errors_render_readably() {
        let e = SynthError::InvalidBounds("threads must be 2..=4".to_string());
        assert!(e.to_string().contains("threads"));
        let e = SynthError::UnsupportedModel {
            model: "weird".to_string(),
            reason: "fence-blind".to_string(),
        };
        assert!(e.to_string().contains("weird"));
    }
}
