//! The CEGIS loop, per-pair minimal lengths and the pairwise matrix.
//!
//! For a model pair `(A, B)`, a distinguishing test is one the two models
//! judge differently. The engine searches both directions: "A allows it,
//! B forbids it" synthesizes against A's symbolic axioms with B as the
//! refuting oracle, and vice versa. Candidates come from the incremental
//! [`Encoding`] one shape at a time; every candidate is verified with the
//! axiomatic checker (the CEGIS oracle), cached cross-pair in a
//! [`VerdictCache`], and blocked in the solver so refinement progresses.
//!
//! Sub-space enumerations are memoized **per allower model**: once the
//! engine has exhausted "tests of shape `(2, 1)` that `M4044` allows",
//! every later pair with `M4044` on the allowing side reuses the
//! enumerated candidates (a cached scan) and the exhaustion certificate
//! (no SAT at all). This is what makes the full 36-model pairwise matrix
//! tractable on one core: across the whole matrix each `(allower, shape)`
//! sub-space is enumerated at most once.

use std::collections::HashMap;

use mcm_axiomatic::{BatchChecker, BatchExplicitChecker};
use mcm_core::{LitmusTest, MemoryModel, SlotRf, TestSkeleton};
use mcm_explore::VerdictCache;
use mcm_gen::canon;

use crate::encode::Encoding;
use crate::{formula_forces_fences, SynthBounds, SynthError, SynthStats};

/// Enumeration state of one `(allower, shape)` sub-space.
#[derive(Default)]
struct ShapeEnum {
    /// Tests the allower admits, with structural cache keys, in
    /// enumeration order.
    tests: Vec<(u64, LitmusTest)>,
    /// Set once the solver returned `Unsat` for this shape: `tests` then
    /// covers every orbit of the sub-space the allower allows.
    complete: bool,
}

/// A cheap structural cache key: candidates are near-canonical by
/// construction, so hashing the program and outcome directly (instead of
/// computing the full orbit fingerprint) keys the verdict cache almost as
/// well at a fraction of the cost. Identical candidates enumerated under
/// different allowers hash identically, which is what cross-pair caching
/// needs.
fn test_key(test: &LitmusTest) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut hasher = DefaultHasher::new();
    test.program().hash(&mut hasher);
    test.outcome().hash(&mut hasher);
    hasher.finish()
}

/// Per-allower incremental solver plus its memoized sub-spaces.
struct AllowerState {
    enc: Encoding,
    shapes: HashMap<Vec<usize>, ShapeEnum>,
}

/// The answer for one model pair.
#[derive(Clone, Debug)]
pub struct PairSynthesis {
    /// Minimal distinguishing length (total accesses), `None` when the
    /// pair is indistinguishable within the bounds (every shape exhausted
    /// — the SAT-certified equivalence-at-bound verdict).
    pub length: Option<usize>,
    /// A synthesized witness of that length: the canonical leader of its
    /// symmetry orbit, confirmed by the oracle on both sides.
    pub witness: Option<LitmusTest>,
    /// Name of the model that allows the witness.
    pub allowed_by: Option<String>,
    /// Name of the model that forbids the witness.
    pub forbidden_by: Option<String>,
}

/// The full pairwise answer over a model list.
#[derive(Clone, Debug)]
pub struct MatrixSynthesis {
    /// Model names, indexing the matrix.
    pub names: Vec<String>,
    /// `lengths[i][j]`: minimal distinguishing length for models `i`, `j`
    /// (symmetric; `None` on the diagonal and for pairs indistinguishable
    /// within bounds).
    pub lengths: Vec<Vec<Option<usize>>>,
    /// One example witness per distinguishable pair, keyed `(i, j)` with
    /// `i < j`.
    pub witnesses: HashMap<(usize, usize), LitmusTest>,
}

/// The CEGIS synthesis engine over a fixed model list.
pub struct Synthesizer {
    models: Vec<MemoryModel>,
    model_fps: Vec<u64>,
    bounds: SynthBounds,
    /// Model index → state slot; models with structurally identical
    /// formulas (TSO and x86) share one incremental solver and its
    /// memoized sub-spaces.
    state_of: Vec<usize>,
    states: Vec<Option<AllowerState>>,
    cache: VerdictCache,
    /// The refuting oracle: the batched explicit checker, so a candidate
    /// can be judged by both sides of a pair over one shared `(rf, co)`
    /// enumeration. Independent of the symbolic encoding by construction.
    oracle: BatchExplicitChecker,
    counters: SynthStats,
}

impl Synthesizer {
    /// Creates an engine for `models` within `bounds`.
    ///
    /// # Errors
    ///
    /// Rejects bounds outside the supported box (2–4 threads, 1–4
    /// accesses per thread, at least one location) and, when fences are
    /// enabled, models whose formulas do not force ordering across full
    /// fences (the encoding models fences as barriers, which is only
    /// faithful for fence-forcing formulas — every §4.2 model qualifies).
    pub fn new(models: Vec<MemoryModel>, bounds: SynthBounds) -> Result<Self, SynthError> {
        if !(2..=4).contains(&bounds.threads) {
            return Err(SynthError::InvalidBounds(
                "threads must be in 2..=4".to_string(),
            ));
        }
        if !(1..=4).contains(&bounds.max_accesses_per_thread) {
            return Err(SynthError::InvalidBounds(
                "max accesses per thread must be in 1..=4".to_string(),
            ));
        }
        if bounds.max_locs == 0 {
            return Err(SynthError::InvalidBounds(
                "at least one location is required".to_string(),
            ));
        }
        if bounds.include_fences {
            for model in &models {
                if !formula_forces_fences(model.formula()) {
                    return Err(SynthError::UnsupportedModel {
                        model: model.name().to_string(),
                        reason: "its formula does not order accesses across full \
                                 fences, so the barrier encoding of fences would \
                                 be unfaithful"
                            .to_string(),
                    });
                }
            }
        }
        let model_fps = models.iter().map(VerdictCache::model_fingerprint).collect();
        // Formula-level dedup: identical must-not-reorder formulas share
        // an allower state.
        let mut state_of: Vec<usize> = Vec::with_capacity(models.len());
        let mut firsts: Vec<usize> = Vec::new();
        for (m, model) in models.iter().enumerate() {
            match firsts
                .iter()
                .position(|&f| models[f].formula() == model.formula())
            {
                Some(slot) => state_of.push(slot),
                None => {
                    state_of.push(firsts.len());
                    firsts.push(m);
                }
            }
        }
        let states = firsts.iter().map(|_| None).collect();
        Ok(Synthesizer {
            models,
            model_fps,
            bounds,
            state_of,
            states,
            cache: VerdictCache::new(),
            oracle: BatchExplicitChecker::new(),
            counters: SynthStats::default(),
        })
    }

    /// The models, in index order.
    #[must_use]
    pub fn models(&self) -> &[MemoryModel] {
        &self.models
    }

    /// Work counters, including the summed SAT-solver totals of every
    /// per-model incremental encoding.
    #[must_use]
    pub fn stats(&self) -> SynthStats {
        let mut stats = self.counters;
        stats.oracle_cache_hits = self.cache.hits();
        for state in self.states.iter().flatten() {
            stats.solver.absorb(state.enc.solver.stats());
        }
        stats
    }

    /// The minimal distinguishing length for models `i` and `j`, with a
    /// synthesized witness: a search on test length over the monotone
    /// predicate *"some test of at most `n` total accesses distinguishes
    /// the pair"*, each size backed by memoized per-shape CEGIS.
    ///
    /// The predicate is evaluated bottom-up — a sub-space is only ever
    /// consulted after every smaller one holds an exhaustion certificate
    /// — so the first witness found is the SAT-certified minimum
    /// directly; a bisection over the same predicate would merely
    /// re-probe sizes whose certificates are already memoized.
    ///
    /// `max_total` caps the search (clamped to the bounds' own maximum).
    pub fn pair(&mut self, i: usize, j: usize, max_total: usize) -> PairSynthesis {
        let none = PairSynthesis {
            length: None,
            witness: None,
            allowed_by: None,
            forbidden_by: None,
        };
        if i == j {
            return none;
        }
        let _span = mcm_obs::trace::span_with(
            "cegis.pair",
            &[
                ("left", self.models[i].name()),
                ("right", self.models[j].name()),
            ],
        );
        let max_total = max_total.min(self.bounds.max_total());
        let Some((best_total, best)) = self.search_up_to(i, j, max_total) else {
            return none; // every shape ≤ max_total exhausted: equivalent at bound
        };
        let (witness, allower, forbidder) = best;
        // Candidates are near-canonical; normalise the reported witness to
        // the canonical leader of its orbit (verdict-preserving).
        PairSynthesis {
            length: Some(best_total),
            witness: Some(canon::canonicalize(&witness)),
            allowed_by: Some(self.models[allower].name().to_string()),
            forbidden_by: Some(self.models[forbidder].name().to_string()),
        }
    }

    /// The full pairwise minimal-length matrix, sharing enumerations
    /// across pairs.
    pub fn matrix(&mut self, max_total: usize) -> MatrixSynthesis {
        let _span = mcm_obs::trace::span("cegis.matrix");
        let n = self.models.len();
        let mut lengths = vec![vec![None; n]; n];
        let mut witnesses = HashMap::new();
        #[allow(clippy::needless_range_loop)] // symmetric (i, j) / (j, i) fill
        for i in 0..n {
            for j in (i + 1)..n {
                let pair = self.pair(i, j, max_total);
                lengths[i][j] = pair.length;
                lengths[j][i] = pair.length;
                if let Some(witness) = pair.witness {
                    witnesses.insert((i, j), witness);
                }
            }
        }
        MatrixSynthesis {
            names: self.models.iter().map(|m| m.name().to_string()).collect(),
            lengths,
            witnesses,
        }
    }

    /// Scans shapes in ascending total order up to `max_total`; the first
    /// witness found is minimal among totals ≤ `max_total` because every
    /// smaller sub-space was exhausted on the way. Returns the witness's
    /// total and `(test, allower, forbidder)`.
    #[allow(clippy::type_complexity)]
    fn search_up_to(
        &mut self,
        i: usize,
        j: usize,
        max_total: usize,
    ) -> Option<(usize, (LitmusTest, usize, usize))> {
        for total in self.bounds.min_total()..=max_total {
            for shape in shapes(total, self.bounds.threads, self.bounds.max_accesses_per_thread)
            {
                for (a, b) in [(i, j), (j, i)] {
                    if let Some(test) = self.search_shape(a, b, &shape) {
                        return Some((total, (test, a, b)));
                    }
                }
            }
        }
        None
    }

    /// One direction, one shape: a test of exactly `shape` that `allower`
    /// admits and `forbidder` rejects, or `None` with the sub-space
    /// memoized as exhausted.
    fn search_shape(
        &mut self,
        allower: usize,
        forbidder: usize,
        shape: &[usize],
    ) -> Option<LitmusTest> {
        let slot = self.state_of[allower];
        if self.states[slot].is_none() {
            self.states[slot] = Some(AllowerState {
                enc: Encoding::new(&self.bounds, self.models[allower].formula()),
                shapes: HashMap::new(),
            });
        }
        let forbidder_fp = self.model_fps[forbidder];
        let allower_fp = self.model_fps[allower];
        // Scan what earlier pairs already enumerated for this sub-space.
        // Entries were oracle-confirmed allower-allowed when they were
        // enumerated, so only the refuter is queried (borrowed in place —
        // the verdict helper touches disjoint fields).
        let scanned = {
            match self.states[slot]
                .as_ref()
                .expect("initialized above")
                .shapes
                .get(shape)
            {
                Some(entry) => {
                    for (key, test) in &entry.tests {
                        if !oracle_verdict(
                            &self.cache,
                            &self.oracle,
                            &mut self.counters,
                            &self.models[forbidder],
                            forbidder_fp,
                            *key,
                            test,
                        ) {
                            return Some(test.clone());
                        }
                    }
                    if entry.complete {
                        return None;
                    }
                    true
                }
                None => false,
            }
        };
        if !scanned {
            let state = self.states[slot].as_mut().expect("initialized above");
            state.shapes.insert(shape.to_vec(), ShapeEnum::default());
        }
        // Continue the enumeration where it left off. Each SAT model is a
        // whole *structure* (program) together with one execution the
        // allower admits; the CEGIS refinement generalises the
        // counterexample to the structure, whose complete outcome space is
        // swept through the oracle directly (it is tiny — the product of
        // per-read source choices), and blocks the structure.
        // The pair, as a slice, so both sides of a candidate are judged
        // over one shared (rf, co) enumeration of the batched oracle.
        let pair_models = [
            self.models[allower].clone(),
            self.models[forbidder].clone(),
        ];
        // One CEGIS iteration = one symbolic SAT query plus the oracle
        // sweep over the refuted structure's outcome space; its latency
        // distribution feeds the synth report's `timings` section.
        let iteration_hist = mcm_obs::enabled()
            .then(|| mcm_obs::metrics::histogram("mcm_synth_iteration_latency_us", &[]));
        loop {
            let iteration = mcm_obs::Stopwatch::start();
            self.counters.sat_queries += 1;
            let state = self.states[slot].as_mut().expect("initialized above");
            let Some(skeleton) = state.enc.solve_shape(shape) else {
                self.counters.shapes_exhausted += 1;
                let entry = state.shapes.get_mut(shape).expect("inserted above");
                entry.complete = true;
                if let Some(hist) = &iteration_hist {
                    iteration.record(hist);
                }
                return None;
            };
            self.counters.structures += 1;
            let mut any_allowed = false;
            let mut witness: Option<LitmusTest> = None;
            for variant in outcome_variants(&skeleton) {
                self.counters.candidates += 1;
                let name = format!("synth-{}", self.counters.candidates);
                let test = variant
                    .decode(name)
                    .expect("symbolic skeletons decode to well-formed tests");
                let key = test_key(&test);
                let (allower_allows, forbidder_allows) = pair_oracle_verdicts(
                    &self.cache,
                    &self.oracle,
                    &mut self.counters,
                    &pair_models,
                    (allower_fp, forbidder_fp),
                    key,
                    &test,
                );
                if !allower_allows {
                    continue;
                }
                any_allowed = true;
                let distinguishes = !forbidder_allows;
                let state = self.states[slot].as_mut().expect("initialized above");
                let entry = state.shapes.get_mut(shape).expect("inserted above");
                entry.tests.push((key, test.clone()));
                if distinguishes && witness.is_none() {
                    witness = Some(test);
                    // Keep sweeping: the remaining allowed outcomes must
                    // land in `tests` for the completeness memo to hold.
                }
            }
            if !any_allowed {
                // The solver claimed an execution the oracle rejects for
                // every outcome of the structure.
                self.counters.encoding_mismatches += 1;
                debug_assert!(false, "encoding admitted a structure the oracle forbids");
            }
            if let Some(hist) = &iteration_hist {
                iteration.record(hist);
            }
            if let Some(test) = witness {
                self.counters.witnesses += 1;
                return Some(test);
            }
        }
    }

}

/// The memoized oracle, as a free function so callers holding borrows
/// into the synthesizer's enumeration state can still consult it.
fn oracle_verdict(
    cache: &VerdictCache,
    oracle: &BatchExplicitChecker,
    counters: &mut SynthStats,
    model: &MemoryModel,
    model_fp: u64,
    test_key: u64,
    test: &LitmusTest,
) -> bool {
    let key = (model_fp, test_key);
    if let Some(memoized) = cache.get(key) {
        return memoized;
    }
    counters.oracle_calls += 1;
    let allowed = oracle.check_all(test, std::slice::from_ref(model))[0].allowed;
    cache.insert(key, allowed);
    allowed
}

/// Both sides of a pair on one candidate. When neither verdict is cached
/// — the common cold case — a single batched oracle call shares the
/// candidate's `(rf, co)` enumeration between allower and forbidder;
/// mixed cases fall back to single checks, and the forbidder is never
/// computed for a candidate the allower already forbids (its slot of the
/// return value is then meaningless to the caller anyway).
fn pair_oracle_verdicts(
    cache: &VerdictCache,
    oracle: &BatchExplicitChecker,
    counters: &mut SynthStats,
    pair_models: &[MemoryModel; 2],
    pair_fps: (u64, u64),
    test_key: u64,
    test: &LitmusTest,
) -> (bool, bool) {
    let a_key = (pair_fps.0, test_key);
    let b_key = (pair_fps.1, test_key);
    match (cache.get(a_key), cache.get(b_key)) {
        (Some(a), Some(b)) => (a, b),
        (None, None) => {
            counters.oracle_calls += 2;
            let verdicts = oracle.check_all(test, pair_models);
            cache.insert(a_key, verdicts[0].allowed);
            cache.insert(b_key, verdicts[1].allowed);
            (verdicts[0].allowed, verdicts[1].allowed)
        }
        (a_cached, b_cached) => {
            let a = a_cached.unwrap_or_else(|| {
                oracle_verdict(
                    cache, oracle, counters, &pair_models[0], pair_fps.0, test_key, test,
                )
            });
            if !a {
                return (false, true);
            }
            let b = b_cached.unwrap_or_else(|| {
                oracle_verdict(
                    cache, oracle, counters, &pair_models[1], pair_fps.1, test_key, test,
                )
            });
            (a, b)
        }
    }
}

/// Expands a structure (program skeleton) into its complete outcome
/// space: the cross product of every read's legal sources — the initial
/// value (unless a program-earlier local write to the same location makes
/// it unobservable) and every same-location write that is not a
/// program-later write of the read's own thread. This mirrors exactly the
/// outcome space the symbolic read-from selectors range over.
fn outcome_variants(skeleton: &TestSkeleton) -> Vec<TestSkeleton> {
    // Collect the write slots per location.
    let mut writes: Vec<(u8, usize, usize)> = Vec::new();
    for (t, thread) in skeleton.threads.iter().enumerate() {
        for (p, slot) in thread.iter().enumerate() {
            if slot.is_write {
                writes.push((slot.loc, t, p));
            }
        }
    }
    // Per-read choice lists, in (thread, position) order.
    let mut reads: Vec<(usize, usize, Vec<SlotRf>)> = Vec::new();
    for (t, thread) in skeleton.threads.iter().enumerate() {
        for (p, slot) in thread.iter().enumerate() {
            if slot.is_write {
                continue;
            }
            let mut choices = Vec::new();
            let local_earlier_write = thread[..p]
                .iter()
                .any(|earlier| earlier.is_write && earlier.loc == slot.loc);
            if !local_earlier_write {
                choices.push(SlotRf::Init);
            }
            for &(loc, wt, wp) in &writes {
                if loc == slot.loc && !(wt == t && wp > p) {
                    choices.push(SlotRf::Write(wt, wp));
                }
            }
            reads.push((t, p, choices));
        }
    }
    // Odometer over the choices.
    let mut out = Vec::new();
    let mut counter = vec![0usize; reads.len()];
    'emit: loop {
        let mut variant = skeleton.clone();
        for (slot_choice, &(t, p, ref choices)) in counter.iter().zip(&reads) {
            if choices.is_empty() {
                // A read with no observable source (every candidate source
                // is a forbidden future write): no outcome exists.
                return out;
            }
            variant.threads[t][p].rf = choices[*slot_choice];
        }
        out.push(variant);
        for pos in 0..counter.len() {
            counter[pos] += 1;
            if counter[pos] < reads[pos].2.len() {
                continue 'emit;
            }
            counter[pos] = 0;
        }
        break;
    }
    out
}

/// All descending compositions of `total` into exactly `threads` parts
/// within `1..=max_per_thread` — the thread shapes of one test length.
/// (Descending order is a symmetry break: thread permutation makes any
/// other arrangement equivalent.)
fn shapes(total: usize, threads: usize, max_per_thread: usize) -> Vec<Vec<usize>> {
    fn go(
        remaining: usize,
        parts_left: usize,
        cap: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if parts_left == 0 {
            if remaining == 0 {
                out.push(current.clone());
            }
            return;
        }
        // Each remaining part needs at least one access.
        let low = remaining.saturating_sub(cap * (parts_left - 1)).max(1);
        let high = cap.min(remaining.saturating_sub(parts_left - 1));
        for k in (low..=high).rev() {
            current.push(k);
            go(remaining - k, parts_left - 1, k, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    go(total, threads, max_per_thread, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_axiomatic::{Checker, ExplicitChecker};
    use mcm_models::named;

    fn tiny_bounds() -> SynthBounds {
        SynthBounds {
            max_accesses_per_thread: 2,
            threads: 2,
            max_locs: 2,
            include_fences: false,
            include_deps: false,
        }
    }

    #[test]
    fn shape_compositions_are_descending_and_complete() {
        assert_eq!(shapes(4, 2, 3), vec![vec![3, 1], vec![2, 2]]);
        assert_eq!(shapes(2, 2, 3), vec![vec![1, 1]]);
        assert_eq!(shapes(7, 2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(shapes(3, 3, 2), vec![vec![1, 1, 1]]);
        assert_eq!(shapes(5, 3, 2), vec![vec![2, 2, 1]]);
    }

    #[test]
    fn sc_vs_tso_needs_four_accesses() {
        let mut synth =
            Synthesizer::new(vec![named::sc(), named::tso()], SynthBounds::default()).unwrap();
        let pair = synth.pair(0, 1, 6);
        assert_eq!(pair.length, Some(4), "store buffering is the shortest witness");
        let witness = pair.witness.expect("witness");
        assert_eq!(witness.program().access_count(), 4);
        assert!(canon::is_leader(&witness), "witnesses are canonical leaders");
        assert_eq!(pair.allowed_by.as_deref(), Some("TSO"));
        assert_eq!(pair.forbidden_by.as_deref(), Some("SC"));
        // The oracle confirms both sides.
        let checker = ExplicitChecker::new();
        assert!(checker.is_allowed(&named::tso(), &witness));
        assert!(!checker.is_allowed(&named::sc(), &witness));
        let stats = synth.stats();
        assert_eq!(stats.encoding_mismatches, 0);
        assert!(stats.sat_queries > 0);
        assert!(stats.solver.propagations > 0);
    }

    #[test]
    fn equivalent_models_are_certified_unsat() {
        let mut synth = Synthesizer::new(
            vec![named::tso(), named::x86()],
            tiny_bounds(),
        )
        .unwrap();
        let pair = synth.pair(0, 1, 4);
        assert_eq!(pair.length, None);
        assert!(pair.witness.is_none());
        let stats = synth.stats();
        assert!(stats.shapes_exhausted > 0, "UNSAT certificates were produced");
        assert_eq!(stats.witnesses, 0);
    }

    #[test]
    fn pair_is_symmetric_and_diagonal_is_empty() {
        let mut synth = Synthesizer::new(
            vec![named::sc(), named::tso()],
            tiny_bounds(),
        )
        .unwrap();
        assert_eq!(synth.pair(0, 0, 4).length, None);
        let forward = synth.pair(0, 1, 4).length;
        let backward = synth.pair(1, 0, 4).length;
        assert_eq!(forward, backward);
        assert_eq!(forward, Some(4));
    }

    #[test]
    fn matrix_reuses_enumerations_across_pairs() {
        let models = vec![named::sc(), named::tso(), named::pso()];
        let mut synth = Synthesizer::new(models, tiny_bounds()).unwrap();
        let matrix = synth.matrix(4);
        assert_eq!(matrix.lengths[0][1], Some(4)); // SC vs TSO
        assert_eq!(matrix.lengths[0][2], Some(4)); // SC vs PSO
        assert_eq!(matrix.lengths[1][2], Some(4)); // TSO vs PSO (W-W reordering)
        assert_eq!(matrix.lengths[1][2], matrix.lengths[2][1]);
        assert!(matrix.witnesses.contains_key(&(0, 1)));
        let stats = synth.stats();
        assert_eq!(stats.encoding_mismatches, 0);
        assert!(
            stats.oracle_cache_hits > 0,
            "cross-pair verdict caching must fire"
        );
    }

    #[test]
    fn fence_bounds_reject_fence_blind_models() {
        let weakest = MemoryModel::new("weakest", mcm_core::Formula::never());
        let bounds = SynthBounds {
            include_fences: true,
            ..tiny_bounds()
        };
        let err = Synthesizer::new(vec![named::sc(), weakest], bounds)
            .err()
            .expect("fence-blind model must be rejected");
        assert!(matches!(err, SynthError::UnsupportedModel { .. }));
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let models = vec![named::sc(), named::tso()];
        for bad in [
            SynthBounds {
                threads: 1,
                ..SynthBounds::default()
            },
            SynthBounds {
                threads: 9,
                ..SynthBounds::default()
            },
            SynthBounds {
                max_accesses_per_thread: 0,
                ..SynthBounds::default()
            },
            SynthBounds {
                max_locs: 0,
                ..SynthBounds::default()
            },
        ] {
            assert!(matches!(
                Synthesizer::new(models.clone(), bad),
                Err(SynthError::InvalidBounds(_))
            ));
        }
    }
}
