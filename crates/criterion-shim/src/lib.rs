//! # criterion-shim
//!
//! A minimal, dependency-free stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API the `mcm-bench`
//! crate uses. The build environment has no network access, so the real
//! crate cannot be fetched; bench files written against `criterion` compile
//! and run unchanged against this shim (mapped to the `criterion` name via
//! a Cargo dependency rename).
//!
//! Each `bench_function` runs a short warm-up, then collects `sample_size`
//! timed samples (each amortised over enough iterations to exceed a minimum
//! measurable window) and prints `min / mean / max` per-iteration times in
//! a criterion-like one-line format:
//!
//! ```text
//! group/name            time: [1.2345 ms 1.2501 ms 1.2702 ms]  (20 samples)
//! ```
//!
//! There is no statistical analysis, no plotting and no baseline
//! comparison — just honest wall-clock numbers suitable for before/after
//! comparisons in CI logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `f` (the measured region).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iterations: u64) -> Duration {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

/// Whether the bench binary was invoked in test mode (`--test`, as the
/// real criterion accepts and `cargo bench -- --test` forwards): each
/// benchmark then runs exactly once, untimed, so CI can assert benches
/// still *work* without paying for samples.
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    if is_test_mode() {
        let elapsed = time_once(&mut f, 1);
        println!("{label:<48} ran once in {} (test mode)", format_seconds(elapsed.as_secs_f64()));
        return;
    }
    // Calibrate: grow the iteration count until one sample takes >= 2 ms,
    // so fast benchmarks are amortised over many iterations.
    let mut iterations: u64 = 1;
    let mut once = time_once(&mut f, iterations);
    while once < Duration::from_millis(2) && iterations < 1 << 20 {
        iterations = iterations.saturating_mul(4).max(iterations + 1);
        once = time_once(&mut f, iterations);
    }

    let samples: Vec<Duration> = (0..sample_size)
        .map(|_| time_once(&mut f, iterations))
        .collect();
    let per_iter = |d: Duration| d.as_secs_f64() / iterations as f64;
    let min = samples.iter().copied().map(per_iter).fold(f64::MAX, f64::min);
    let max = samples.iter().copied().map(per_iter).fold(0.0, f64::max);
    let mean = samples.iter().copied().map(per_iter).sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<48} time: [{} {} {}]  ({sample_size} samples x {iterations} iters)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_formats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut counter = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        group.finish();
        assert!(counter > 0);
        assert_eq!(format_seconds(0.5), "500.0000 ms");
        assert_eq!(format_seconds(2.0), "2.0000 s");
    }
}
